"""Ablation studies for the design choices DESIGN.md calls out.

- **Max warp size sweep** (§6.1's closing observation: "detect cases
  when diverging branches are so frequent that scalar execution is
  optimal"): divergence-heavy apps prefer narrower maxima; uniform
  compute-bound apps prefer the machine width.
- **Reconvergence yields**: disabling the scalar specialization's
  branch yields removes warp re-formation after divergence.
- **Cross-CTA warp formation** (Fig. 2 draws from several CTAs):
  widens warps for tiny CTAs.
- **Cleanup pipeline**: the traditional optimizations (§5.1) earn
  their place by shrinking the vectorized kernels.
"""

import pytest

from repro import Device, ExecutionConfig
from repro.workloads import get_workload

from conftest import publish

SCALE = 0.5


def cycles_for(workload_name, config, scale=SCALE):
    workload = get_workload(workload_name)
    return workload.run_on(config, scale=scale).elapsed_cycles


@pytest.fixture(scope="module")
def warp_size_sweep():
    apps = ("MersenneTwister", "cp", "BlackScholes")
    sweep = {}
    for app in apps:
        for max_ws in (1, 2, 4):
            sizes = tuple(s for s in (1, 2, 4) if s <= max_ws)
            config = ExecutionConfig(
                warp_sizes=sizes,
                scalar_yields_at_branches=(
                    False if max_ws == 1 else None
                ),
            )
            sweep[(app, max_ws)] = cycles_for(app, config)
    return sweep


def test_ablation_max_warp_size(benchmark, warp_size_sweep,
                                results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = ["Ablation: max warp size sweep (cycles)", "-" * 60]
    for (app, max_ws), cycles in sorted(warp_size_sweep.items()):
        lines.append(f"  {app:<20} max_ws={max_ws}  {cycles:>12,}")
    publish(results_dir, "ablation_warpsize", "\n".join(lines))

    # Divergence-heavy: scalar execution is optimal (§6.1).
    mt = {
        ws: warp_size_sweep[("MersenneTwister", ws)] for ws in (1, 2, 4)
    }
    assert mt[1] < mt[4]

    # Compute-bound uniform: wider is strictly better.
    for app in ("cp", "BlackScholes"):
        series = {ws: warp_size_sweep[(app, ws)] for ws in (1, 2, 4)}
        assert series[4] < series[2] < series[1], app


def test_ablation_reconvergence_yields(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    with_yields = ExecutionConfig(
        warp_sizes=(1, 2, 4), scalar_yields_at_branches=True
    )
    without_yields = ExecutionConfig(
        warp_sizes=(1, 2, 4), scalar_yields_at_branches=False
    )
    workload = get_workload("MersenneTwister")
    run_with = workload.run_on(with_yields, scale=SCALE)
    run_without = workload.run_on(without_yields, scale=SCALE)
    text = (
        "Ablation: scalar-specialization branch yields "
        "(MersenneTwister)\n" + "-" * 60 + "\n"
        f"  with re-formation    avg warp "
        f"{run_with.statistics.average_warp_size:.2f}, "
        f"{run_with.elapsed_cycles:,} cycles\n"
        f"  without re-formation avg warp "
        f"{run_without.statistics.average_warp_size:.2f}, "
        f"{run_without.elapsed_cycles:,} cycles"
    )
    publish(results_dir, "ablation_reconvergence", text)

    # Re-formation costs extra yields: every scalar branch returns to
    # the execution manager looking for partners...
    assert (
        run_with.statistics.divergent_yields
        > run_without.statistics.divergent_yields
    )
    # ...and therefore more warp executions overall.
    assert (
        run_with.statistics.warp_executions
        > run_without.statistics.warp_executions
    )


def test_ablation_cross_cta_formation(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    same = ExecutionConfig(warp_sizes=(1, 2, 4))
    cross = ExecutionConfig(
        warp_sizes=(1, 2, 4), allow_cross_cta_warps=True
    )
    # SimpleVoteIntrinsics uses 2-thread CTAs: the formation scope is
    # exactly what limits its warp width.
    # scale=4 gives 16 two-thread CTAs: four per execution manager,
    # so cross-CTA formation has partners to find.
    workload = get_workload("SimpleVoteIntrinsics")
    run_same = workload.run_on(same, scale=4.0)
    run_cross = workload.run_on(cross, scale=4.0, check=False)
    text = (
        "Ablation: cross-CTA warp formation "
        "(SimpleVoteIntrinsics, 2-thread CTAs)\n" + "-" * 60 + "\n"
        f"  same-CTA  avg warp "
        f"{run_same.statistics.average_warp_size:.2f}\n"
        f"  cross-CTA avg warp "
        f"{run_cross.statistics.average_warp_size:.2f}"
    )
    publish(results_dir, "ablation_cross_cta", text)
    assert (
        run_cross.statistics.average_warp_size
        > run_same.statistics.average_warp_size
    )


def test_ablation_cleanup_pipeline(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    rows = []
    for app in ("BlackScholes", "Nbody", "Reduction"):
        workload = get_workload(app)
        counts = {}
        for label, optimize in (("raw", False), ("optimized", True)):
            device = Device(
                config=ExecutionConfig(
                    warp_sizes=(1, 2, 4), optimize=optimize
                )
            )
            workload.prepare(device)
            kernel_name = next(
                iter(device.modules[0].kernels)
            )
            counts[label] = device.cache.instruction_count(
                kernel_name, 4
            )
        rows.append((app, counts["raw"], counts["optimized"]))
    lines = [
        "Ablation: cleanup pipeline static instruction counts (ws=4)",
        "-" * 60,
    ]
    for app, raw, optimized in rows:
        lines.append(
            f"  {app:<16} raw={raw:>5}  optimized={optimized:>5}  "
            f"({1 - optimized / raw:.1%} removed)"
        )
    publish(results_dir, "ablation_cleanups", "\n".join(lines))
    for app, raw, optimized in rows:
        assert optimized <= raw, app


def test_ablation_vector_memory(benchmark, results_dir):
    """The paper's §4 future work, evaluated: affine analysis promotes
    contiguous replicated loads/stores to single vector accesses."""
    from repro import static_tie_config

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plain = static_tie_config(4)
    vmem = static_tie_config(4, vector_memory=True)
    rows = []
    for app in ("Template", "BlackScholes", "DwtHaar1D", "Nbody",
                "MersenneTwister"):
        workload = get_workload(app)
        base = workload.run_on(plain, scale=SCALE)
        optimized = workload.run_on(vmem, scale=SCALE)
        assert optimized.correct
        rows.append(
            (app, base.elapsed_cycles / optimized.elapsed_cycles)
        )
    lines = [
        "Ablation: affine vector memory (static+TIE baseline)",
        "-" * 60,
    ]
    for app, gain in rows:
        lines.append(f"  {app:<20} x{gain:.2f}")
    publish(results_dir, "ablation_vector_memory", "\n".join(lines))

    gains = dict(rows)
    # Streaming kernels with contiguous gid-indexed accesses benefit.
    assert gains["Template"] > 1.1
    assert gains["BlackScholes"] > 1.1
    # Nothing regresses meaningfully.
    for app, gain in rows:
        assert gain > 0.95, app


def test_ablation_if_conversion(benchmark, results_dir):
    """Yield-on-diverge vs predication-style conditional data flow
    (the §7 contrast with Karrenberg/Shin): if-converting short pure
    diamonds removes divergence sites at the price of executing both
    arms on every lane."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    plain = ExecutionConfig(warp_sizes=(1, 2, 4))
    converted = ExecutionConfig(
        warp_sizes=(1, 2, 4), if_conversion=True
    )
    rows = []
    for app in ("MersenneTwister", "Eigenvalues", "BlackScholes",
                "mri-q"):
        workload = get_workload(app)
        base = workload.run_on(plain, scale=SCALE)
        ifcvt = workload.run_on(converted, scale=SCALE)
        assert ifcvt.correct
        rows.append(
            (
                app,
                base.elapsed_cycles / ifcvt.elapsed_cycles,
                base.statistics.divergent_yields,
                ifcvt.statistics.divergent_yields,
            )
        )
    lines = [
        "Ablation: if-conversion (conditional data flow) vs "
        "yield-on-diverge",
        "-" * 68,
    ]
    for app, gain, before, after in rows:
        lines.append(
            f"  {app:<18} x{gain:5.2f}  divergent yields "
            f"{before:>6} -> {after:>6}"
        )
    publish(results_dir, "ablation_if_conversion", "\n".join(lines))

    gains = {app: gain for app, gain, _, _ in rows}
    # Kernels whose divergence comes from pure diamonds benefit.
    assert gains["Eigenvalues"] >= 0.95
    # Convergent kernels are unaffected (nothing to convert or the
    # selects are equivalent work).
    assert gains["BlackScholes"] == pytest.approx(1.0, abs=0.1)
