"""Figure 9 reproduction: fraction of cycles spent in the execution
manager (EM), in yields to/from the EM (spill/restore/scheduler), and
executing the vectorized subkernel.

Paper shape: "Applications such as MersenneTwister, Nbody, and CP
achieve ... nearly all execution time is spent within the vectorized
subkernel" (for Nbody/CP); "Synchronization-intensive applications
such as BinomialOptions and MatrixMul spend more time within the
execution manager"; yield save/restore is a small overhead relative to
subkernel cycles for convergent apps.
"""

import pytest

from repro.bench import run_figure9
from repro.bench.reporting import format_figure9

from conftest import publish


@pytest.fixture(scope="module")
def figure9(runner):
    return run_figure9(runner)


def test_figure9_overheads(benchmark, figure9, runner, results_dir):
    benchmark.pedantic(
        lambda: runner.cycle_fractions(), rounds=1, iterations=1
    )
    publish(results_dir, "figure9", format_figure9(figure9))

    fractions = figure9.fractions

    # Compute-bound convergent apps live in the subkernel.
    for name in ("Nbody", "cp", "MonteCarlo", "ImageDenoising"):
        assert figure9.kernel_fraction(name) > 0.80, name

    # Synchronization-intensive apps are EM/yield dominated.
    for name in ("BinomialOptions", "MatrixMul", "Reduction", "Scan"):
        overhead = 1.0 - figure9.kernel_fraction(name)
        assert overhead > 0.4, name

    # Fractions are well-formed.
    for name, parts in fractions.items():
        assert sum(parts.values()) == pytest.approx(1.0), name

    # EM time exceeds yield time for barrier-free memory apps (little
    # state to save), while divergent apps pay heavy yield costs.
    assert fractions["MersenneTwister"]["yield"] > 0.2
