"""Figure 8 reproduction: average number of values restored per thread
at entry points from the execution manager.

Paper shape: average 4.54 values/thread; "most applications with
barriers have live state at yield points and require some context to
be reloaded"; fewer values than architectural registers are restored.
"""

import pytest

from repro.bench import run_figure8
from repro.bench.reporting import format_figure8
from repro.workloads import get_workload

from conftest import publish


@pytest.fixture(scope="module")
def figure8(runner):
    return run_figure8(runner)


def test_figure8_liveness(benchmark, figure8, runner, results_dir):
    benchmark.pedantic(
        lambda: runner.values_restored(), rounds=1, iterations=1
    )
    publish(results_dir, "figure8", format_figure8(figure8))

    restored = figure8.restored

    # Barrier applications reload live context.
    for name in ("Reduction", "Scan", "MatrixMul", "BinomialOptions"):
        assert restored[name] > 1.0, name

    # Fully convergent, barrier-free kernels never resume mid-kernel.
    for name in ("BlackScholes", "Template", "cp"):
        assert restored[name] == 0.0, name

    # "On average, fewer values than architectural registers need to
    # be restored" — the x86-64 GPR+XMM budget is 16+16.
    assert 0.0 < figure8.average < 16.0

    # Same order of magnitude as the paper's 4.54 for the apps that
    # restore at all.
    active = [value for value in restored.values() if value > 0]
    average_active = sum(active) / len(active)
    assert 1.0 < average_active < 10.0
