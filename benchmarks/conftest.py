"""Shared fixtures for the reproduction benchmarks.

The SuiteRunner (workload sweeps under baseline / vectorized /
static+TIE) is session-scoped: Figures 6-10 all reuse its cached runs.
Each benchmark prints its formatted table (run pytest with ``-s`` to
see them) and also writes it to ``benchmarks/results/``.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.bench import SuiteRunner

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: Workload size multiplier for the benchmark sweeps.
SCALE = 0.5


@pytest.fixture(scope="session")
def runner() -> SuiteRunner:
    return SuiteRunner(scale=SCALE)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def publish(results_dir: pathlib.Path, name: str, text: str) -> None:
    """Print a section and persist it for EXPERIMENTS.md."""
    print("\n" + text)
    (results_dir / f"{name}.txt").write_text(text + "\n")
