"""Figure 6 reproduction: per-application speedup of vectorized
execution (dynamic warp formation, max warp size 4) over the scalar
baseline.

Paper shape: average 1.45x; ~1.0x for the memory-bound sync-heavy apps
(BoxFilter, ScalarProd, SobolQRNG); 2.25x BinomialOptions; 3.9x cp;
slowdowns for MersenneTwister, mri-q and mri-fhd.
"""

import pytest

from repro.bench import run_figure6
from repro.bench.paper_reference import (
    FIGURE6_AVERAGE,
    FIGURE6_SLOWDOWNS,
)
from repro.bench.reporting import format_figure6

from conftest import publish


@pytest.fixture(scope="module")
def figure6(runner):
    return run_figure6(runner)


def test_figure6_speedups(benchmark, figure6, runner, results_dir):
    from repro.workloads import get_workload
    from repro.bench.harness import VECTORIZED

    benchmark.pedantic(
        lambda: get_workload("Template").run_on(
            runner.config(VECTORIZED), scale=0.25
        ),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "figure6", format_figure6(figure6))

    speedups = figure6.speedups

    # Average lands in the paper's band (paper: 1.45x).
    assert figure6.average == pytest.approx(FIGURE6_AVERAGE, abs=0.35)

    # The paper's slowdown applications slow down here too.
    for name in FIGURE6_SLOWDOWNS:
        assert speedups[name] < 1.0, name

    # cp is the best real application (paper: 3.9x).
    best_app, best_speed = figure6.best
    assert best_speed > 2.5

    # Compute-bound uniform apps beat the memory-bound class.
    assert speedups["BlackScholes"] > speedups["ScalarProd"]
    assert speedups["MonteCarlo"] > speedups["BoxFilter"]

    # Nothing degenerates: every app within [0.3x, 5x].
    for name, speed in speedups.items():
        assert 0.3 < speed < 5.0, name
