"""Table 1 reproduction: peak floating-point throughput per warp size.

Paper (i7-2600, SSE, peak ~108 GFLOP/s):

    warp size    1      2      4      8
    GFLOP/s    25.0   47.9   97.1   37.0

The shape to reproduce: near-linear scaling up to the machine width
(ws=4 above 80% of peak) and a register-pressure cliff at ws=8 that
lands *below* the ws=2 point.
"""

import pytest

from repro.bench import run_table1
from repro.bench.paper_reference import TABLE1_GFLOPS
from repro.bench.reporting import format_table1

from conftest import publish


@pytest.fixture(scope="module")
def table1():
    return run_table1(scale=0.5)


def test_table1_throughput(benchmark, table1, results_dir):
    benchmark.pedantic(
        lambda: run_table1(scale=0.1, warp_sizes=(4,)),
        rounds=1,
        iterations=1,
    )
    publish(results_dir, "table1", format_table1(table1))

    measured = table1.gflops
    # Monotone scaling up to the machine width.
    assert measured[1] < measured[2] < measured[4]
    # ws=4 sustains most of machine peak (paper: 90%).
    assert measured[4] / table1.peak > 0.75
    # Scalar run sits near the scalar-issue bound (paper: 25 of 27.2).
    assert 15.0 < measured[1] < 28.0
    # The ws=8 register-pressure cliff: worse than ws=2 (paper: 37 vs
    # 47.9).
    assert measured[8] < measured[2]
    # Every point within a factor-of-2 band of the paper's value.
    for warp_size, expected in TABLE1_GFLOPS.items():
        assert measured[warp_size] == pytest.approx(expected, rel=0.5)
