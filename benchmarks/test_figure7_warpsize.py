"""Figure 7 reproduction: average warp size of executed kernels with
maximum warp size 4.

Paper shape: "most kernel entries from the execution manager have warp
size of 4 for every application except SimpleVoteIntrinsics which is
only ever able to form warps of 2 threads at most", and divergent apps
show a visible ws=1/ws=2 tail (the motivation for dynamic formation).
"""

import pytest

from repro.bench import run_figure7
from repro.bench.reporting import format_figure7

from conftest import publish


@pytest.fixture(scope="module")
def figure7(runner):
    return run_figure7(runner)


def test_figure7_warp_sizes(benchmark, figure7, runner, results_dir):
    benchmark.pedantic(
        lambda: runner.average_warp_sizes(), rounds=1, iterations=1
    )
    publish(results_dir, "figure7", format_figure7(figure7))

    fractions = figure7.fractions
    averages = figure7.averages

    # Most applications enter predominantly at full width.
    dominated_by_4 = [
        name
        for name in fractions
        if name != "SimpleVoteIntrinsics"
        and figure7.dominant_warp_size(name) == 4
    ]
    assert len(dominated_by_4) >= 0.8 * (len(fractions) - 1)

    # SimpleVoteIntrinsics caps at warp size 2.
    assert max(fractions["SimpleVoteIntrinsics"]) == 2
    assert averages["SimpleVoteIntrinsics"] == pytest.approx(2.0)

    # Divergent apps are "not entirely convergent": they carry a
    # sub-maximal tail, which justifies dynamic re-formation (§6.1).
    for name in ("MersenneTwister", "mri-q"):
        tail = sum(
            fraction
            for size, fraction in fractions[name].items()
            if size < 4
        )
        assert tail > 0.05, name

    # Convergent apps stay at exactly 4.
    assert averages["BlackScholes"] == pytest.approx(4.0)
    assert averages["cp"] == pytest.approx(4.0)
