"""Figure 10 + §6.2 reproduction: static warp formation with
thread-invariant expression elimination, relative to dynamic warp
formation; and the static instruction-count reduction of TIE.

Paper shape: average gain 11.3%; MersenneTwister recovers dramatically
(the paper quotes a 6.4x relative improvement: a 4.9x slowdown under
dynamic formation becomes a 1.3x speedup); instruction counts shrink
9.5% at ws=2 and 11.5% at ws=4; Collange et al.'s ~15% thread-invariant
operand fraction is the upper bound the analysis chases.
"""

import pytest

from repro.bench import (
    run_figure10,
    run_instruction_reduction,
)
from repro.bench.paper_reference import (
    FIGURE10_AVERAGE_GAIN,
    TIE_INSTRUCTION_REDUCTION,
)
from repro.bench.reporting import (
    format_figure10,
    format_instruction_reduction,
)

from conftest import publish


@pytest.fixture(scope="module")
def figure10(runner):
    return run_figure10(runner)


@pytest.fixture(scope="module")
def instruction_reduction():
    return run_instruction_reduction()


def test_figure10_static_tie(benchmark, figure10, runner, results_dir):
    benchmark.pedantic(
        lambda: runner.speedups(), rounds=1, iterations=1
    )
    publish(results_dir, "figure10", format_figure10(figure10))

    relative = figure10.relative

    # Average relative gain matches the paper's 1.113x band.
    assert figure10.average_relative == pytest.approx(
        FIGURE10_AVERAGE_GAIN, abs=0.15
    )

    # The irregular-control-flow apps recover under static formation
    # (the paper's MersenneTwister story) — every one gains, and the
    # MRI kernels gain strongly.
    for name in ("MersenneTwister", "mri-q", "mri-fhd"):
        assert relative[name] > 1.02, name
    assert relative["mri-q"] > 1.3

    # With static formation the MRI kernels beat scalar execution
    # again (paper: MersenneTwister 1.30x over scalar).
    assert figure10.absolute["mri-q"] > 1.0
    assert figure10.absolute["mri-fhd"] > 1.0

    # Not all applications benefit — the paper's figure shows several
    # below 1.0 (constrained formation loses re-formation chances).
    assert any(value < 1.0 for value in relative.values())


def test_instruction_reduction(
    benchmark, instruction_reduction, results_dir
):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    publish(
        results_dir,
        "instruction_reduction",
        format_instruction_reduction(instruction_reduction),
    )

    # §6.2: 9.5% fewer instructions at ws=2, 11.5% at ws=4 — and
    # "larger warps imply a larger fraction of thread-invariant
    # instructions".
    reduction2 = instruction_reduction.average_reduction(2)
    reduction4 = instruction_reduction.average_reduction(4)
    assert reduction2 == pytest.approx(
        TIE_INSTRUCTION_REDUCTION[2], abs=0.06
    )
    assert reduction4 == pytest.approx(
        TIE_INSTRUCTION_REDUCTION[4], abs=0.08
    )
    assert reduction4 > reduction2

    # A meaningful fraction of registers is provably thread-invariant
    # (Collange et al. report ~15% of operands).
    assert (
        0.05 < instruction_reduction.average_invariant_fraction < 0.5
    )
