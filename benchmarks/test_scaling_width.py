"""Vector-width scalability: the paper's abstract claims "performance
scalability is expected from 2-wide to arbitrary-width vector units"
and §2/§6 name AVX (8-wide) and Knights Ferry (16-wide) as targets.

This benchmark runs the Table 1 microbenchmark and a compute-bound
application across the three machine models and checks that sustained
throughput scales with the machine's vector width when the kernel is
specialized to match — the scalability the paper could not measure for
lack of an AVX code generator and Knights Ferry silicon.
"""

import pytest

from repro import ExecutionConfig, avx_machine, knights_ferry, sandybridge
from repro.bench import run_table1
from repro.workloads import get_workload

from conftest import publish


def _config_for(width):
    sizes = [1]
    while sizes[-1] * 2 <= width:
        sizes.append(sizes[-1] * 2)
    return ExecutionConfig(warp_sizes=tuple(sizes))


@pytest.fixture(scope="module")
def width_sweep():
    machines = [
        ("sse-4wide", sandybridge(), 4),
        ("avx-8wide", avx_machine(), 8),
        ("knf-16wide", knights_ferry(), 16),
    ]
    results = {}
    workload = get_workload("throughput")
    for label, machine, width in machines:
        run = workload.run_on(
            _config_for(width), scale=0.5, machine=machine
        )
        gflops = run.statistics.gflops(machine.clock_hz)
        results[label] = {
            "gflops": gflops,
            "peak": machine.peak_vector_gflops,
            "fraction": gflops / machine.peak_vector_gflops,
        }
    return results


def test_scaling_across_machine_widths(
    benchmark, width_sweep, results_dir
):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    lines = [
        "Scaling: throughput microbenchmark across machine widths",
        "-" * 64,
    ]
    for label, row in width_sweep.items():
        lines.append(
            f"  {label:<12} {row['gflops']:>7.1f} GFLOP/s "
            f"of {row['peak']:>7.1f} peak "
            f"({row['fraction']:.0%})"
        )
    publish(results_dir, "scaling_width", "\n".join(lines))

    # Wider machines deliver more absolute throughput when the kernel
    # is specialized to their width.
    assert (
        width_sweep["avx-8wide"]["gflops"]
        > width_sweep["sse-4wide"]["gflops"]
    )
    assert (
        width_sweep["knf-16wide"]["gflops"]
        > width_sweep["avx-8wide"]["gflops"]
    )
    # Utilization stays high at every width (the "agnostic to specific
    # features of ISAs" claim).
    for label, row in width_sweep.items():
        assert row["fraction"] > 0.6, label


def test_application_scales_with_width(benchmark, results_dir):
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    workload = get_workload("MonteCarlo")
    rows = []
    for label, machine, width in (
        ("sse-4wide", sandybridge(), 4),
        ("avx-8wide", avx_machine(), 8),
    ):
        run = workload.run_on(
            _config_for(width), scale=0.5, machine=machine
        )
        rows.append((label, run.elapsed_cycles))
    lines = [
        "Scaling: MonteCarlo cycles across machine widths",
        "-" * 64,
    ]
    for label, cycles in rows:
        lines.append(f"  {label:<12} {cycles:>12,} cycles")
    publish(results_dir, "scaling_app", "\n".join(lines))
    # Same clock, twice the lanes: the compute-bound app gets faster.
    assert rows[1][1] < rows[0][1]
