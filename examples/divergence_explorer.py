#!/usr/bin/env python
"""Divergence explorer: watch yield-on-diverge and dynamic warp
formation at work.

A Collatz step-count kernel has per-thread loop trip counts that
depend on the input data. The script runs it with three data
distributions (uniform, mildly divergent, pathological) under the
scalar baseline, dynamic warp formation and static warp formation, and
prints the execution-manager statistics the paper's Figures 7-9 are
built from.

Run:  python examples/divergence_explorer.py
"""

import numpy as np

from repro import (
    Device,
    baseline_config,
    static_tie_config,
    vectorized_config,
)

COLLATZ = r"""
.version 2.3
.target sim
.entry collatz (.param .u64 src, .param .u64 dst, .param .u32 n)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<8>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [src];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r6, [%rd3];
  mov.u32 %r7, 0;
LOOP:
  setp.le.u32 %p2, %r6, 1;
  @%p2 bra EXITLOOP;
  and.b32 %r8, %r6, 1;
  setp.eq.u32 %p3, %r8, 0;
  @%p3 bra EVEN;
  mul.lo.u32 %r6, %r6, 3;
  add.u32 %r6, %r6, 1;
  bra NEXT;
EVEN:
  shr.u32 %r6, %r6, 1;
NEXT:
  add.u32 %r7, %r7, 1;
  bra LOOP;
EXITLOOP:
  ld.param.u64 %rd4, [dst];
  add.u64 %rd5, %rd4, %rd1;
  st.global.u32 [%rd5], %r7;
DONE:
  exit;
}
"""

N = 512
CONFIGS = [
    ("scalar baseline", baseline_config()),
    ("dynamic warp formation", vectorized_config(4)),
    ("static formation + TIE", static_tie_config(4)),
]


def datasets():
    rng = np.random.default_rng(7)
    uniform = np.full(N, 27, dtype=np.uint32)  # identical trip counts
    mild = (27 + rng.integers(0, 4, N)).astype(np.uint32)
    pathological = rng.integers(1, 10_000, N).astype(np.uint32)
    return [
        ("uniform data", uniform),
        ("mildly divergent", mild),
        ("pathological", pathological),
    ]


def run(config, data):
    device = Device(config=config)
    device.register_module(COLLATZ)
    src = device.upload(data)
    dst = device.malloc(N * 4)
    result = device.launch(
        "collatz", grid=(8, 1, 1), block=(64, 1, 1),
        args=[src, dst, N],
    )
    return result.statistics


def main():
    for data_label, data in datasets():
        print(f"\n=== {data_label} ===")
        baseline_cycles = None
        for config_label, config in CONFIGS:
            stats = run(config, data)
            cycles = stats.elapsed_cycles
            if baseline_cycles is None:
                baseline_cycles = cycles
            fractions = stats.cycle_fractions()
            print(
                f"  {config_label:<24} "
                f"speedup {baseline_cycles / cycles:5.2f}x | "
                f"avg warp {stats.average_warp_size:4.2f} | "
                f"divergent yields {stats.divergent_yields:6d} | "
                f"restored/thread {stats.average_values_restored:5.2f} | "
                f"EM {fractions['em']:5.1%} "
                f"yield {fractions['yield']:5.1%} "
                f"kernel {fractions['kernel']:5.1%}"
            )
    print(
        "\nReading the output: with uniform data the 4-wide kernel "
        "never leaves the vectorized region; as control flow "
        "decorrelates, dynamic formation yields at more branches "
        "(Fig. 4b context switches) until the scalar baseline wins — "
        "the paper's MersenneTwister effect."
    )


if __name__ == "__main__":
    main()
