#!/usr/bin/env python
"""Authoring kernels programmatically with the KernelBuilder API.

Instead of writing PTX dialect assembly, kernels can be constructed in
Python. This example builds a fused multiply-add kernel (saxpy) and a
strided-sum kernel, registers them as one module, and runs both.

Run:  python examples/kernel_builder_api.py
"""

import numpy as np

from repro import Device
from repro.ptx import (
    AddressSpace,
    CompareOp,
    DataType,
    KernelBuilder,
    Module,
)


def build_saxpy() -> KernelBuilder:
    b = KernelBuilder("saxpy")
    b.param("x", DataType.u64)
    b.param("y", DataType.u64)
    b.param("a", DataType.f32)
    b.param("n", DataType.u32)

    tid = b.special(DataType.u32, "tid", "x")
    ntid = b.special(DataType.u32, "ntid", "x")
    ctaid = b.special(DataType.u32, "ctaid", "x")
    gid = b.mad(DataType.u32, ctaid, ntid, tid)
    bound = b.load_param(DataType.u32, "n")
    out_of_range = b.setp(CompareOp.ge, DataType.u32, gid, bound)
    b.branch("DONE", predicate=out_of_range)

    offset = b.cvt(DataType.u64, DataType.u32, gid)
    offset = b.mul(DataType.u64, offset, 4)
    x_address = b.add(
        DataType.u64, b.load_param(DataType.u64, "x"), offset
    )
    y_address = b.add(
        DataType.u64, b.load_param(DataType.u64, "y"), offset
    )
    x = b.load(AddressSpace.global_, DataType.f32, x_address)
    y = b.load(AddressSpace.global_, DataType.f32, y_address)
    a = b.load_param(DataType.f32, "a")
    b.store(
        AddressSpace.global_, DataType.f32, y_address,
        b.fma(DataType.f32, a, x, y),
    )
    b.label("DONE")
    b.exit()
    return b


def build_strided_sum() -> KernelBuilder:
    """One thread sums elements i, i+stride, i+2*stride, ..."""
    b = KernelBuilder("stridedSum")
    b.param("src", DataType.u64)
    b.param("dst", DataType.u64)
    b.param("count", DataType.u32)
    b.param("stride", DataType.u32)

    tid = b.special(DataType.u32, "tid", "x")
    total = b.mov(DataType.f32, 0.0)
    index = b.mov(DataType.u32, tid)
    count = b.load_param(DataType.u32, "count")
    stride = b.load_param(DataType.u32, "stride")
    source = b.load_param(DataType.u64, "src")

    b.label("LOOP")
    done = b.setp(CompareOp.ge, DataType.u32, index, count)
    b.branch("STORE", predicate=done)
    offset = b.cvt(DataType.u64, DataType.u32, index)
    offset = b.mul(DataType.u64, offset, 4)
    address = b.add(DataType.u64, source, offset)
    value = b.load(AddressSpace.global_, DataType.f32, address)
    # accumulate in-place: re-emit into the same register
    from repro.ptx import Opcode, PTXInstruction

    b.emit(
        PTXInstruction(
            opcode=Opcode.add,
            dtype=DataType.f32,
            operands=[total, total, value],
        )
    )
    b.emit(
        PTXInstruction(
            opcode=Opcode.add,
            dtype=DataType.u32,
            operands=[index, index, stride],
        )
    )
    b.branch("LOOP")

    b.label("STORE")
    destination = b.load_param(DataType.u64, "dst")
    slot = b.cvt(DataType.u64, DataType.u32, tid)
    slot = b.mul(DataType.u64, slot, 4)
    out_address = b.add(DataType.u64, destination, slot)
    b.store(AddressSpace.global_, DataType.f32, out_address, total)
    b.exit()
    return b


def main():
    module = Module("built_kernels")
    module.add_kernel(build_saxpy().kernel)
    module.add_kernel(build_strided_sum().kernel)
    print("generated module:\n")
    print("\n".join(str(module).splitlines()[:12]), "\n  ...\n")

    device = Device()
    device.register_module(module)
    rng = np.random.default_rng(3)

    # saxpy
    n = 500
    x_host = rng.standard_normal(n).astype(np.float32)
    y_host = rng.standard_normal(n).astype(np.float32)
    x = device.upload(x_host)
    y = device.upload(y_host)
    device.launch(
        "saxpy", grid=(-(-n // 128), 1, 1), block=(128, 1, 1),
        args=[x, y, 3.0, n],
    )
    assert np.allclose(
        y.read(np.float32, n), np.float32(3.0) * x_host + y_host,
        rtol=1e-5,
    )
    print("saxpy verified over", n, "elements")

    # strided sum: 16 threads over 256 values
    threads, count = 16, 256
    data = rng.standard_normal(count).astype(np.float32)
    src = device.upload(data)
    dst = device.malloc(threads * 4)
    device.launch(
        "stridedSum", grid=(1, 1, 1), block=(threads, 1, 1),
        args=[src, dst, count, threads],
    )
    got = dst.read(np.float32, threads)
    expected = data.reshape(-1, threads).sum(axis=0)
    assert np.allclose(got, expected, rtol=1e-4)
    print("stridedSum verified:", threads, "partials over", count,
          "values")


if __name__ == "__main__":
    main()
