#!/usr/bin/env python
"""Quickstart: compile and run a data-parallel kernel on the simulated
vector processor.

The kernel is written in the PTX dialect (the virtual ISA of §2), the
Device front-end mirrors the CUDA Runtime API (§3), and the launch is
executed by the dynamic compiler: kernels are lazily translated,
vectorized for warp sizes 1/2/4, and run under the dynamic execution
manager with warp formation and yield-on-diverge.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Device

VECADD = r"""
.version 2.3
.target sim
.entry vecAdd (.param .u64 a, .param .u64 b, .param .u64 c, .param .u32 n)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;              // thread coordinates ...
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;    // ... give the global index
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;        // bounds guard: a potential
  @%p1 bra DONE;                    // divergence site
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [a];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  ld.param.u64 %rd4, [b];
  add.u64 %rd5, %rd4, %rd1;
  ld.global.f32 %f2, [%rd5];
  add.f32 %f3, %f1, %f2;
  ld.param.u64 %rd6, [c];
  add.u64 %rd7, %rd6, %rd1;
  st.global.f32 [%rd7], %f3;
DONE:
  exit;
}
"""


def main():
    device = Device()  # Sandybridge-like machine, warp sizes (1, 2, 4)
    device.register_module(VECADD)

    n = 1000  # deliberately not a multiple of the block size
    rng = np.random.default_rng(0)
    a_host = rng.standard_normal(n).astype(np.float32)
    b_host = rng.standard_normal(n).astype(np.float32)

    a = device.upload(a_host)
    b = device.upload(b_host)
    c = device.malloc(n * 4)

    result = device.launch(
        "vecAdd", grid=(8, 1, 1), block=(128, 1, 1), args=[a, b, c, n]
    )

    c_host = c.read(np.float32, n)
    assert np.allclose(c_host, a_host + b_host)
    print("vecAdd over", n, "elements: results verified")

    stats = result.statistics
    print(f"modeled time      : {result.elapsed_seconds * 1e6:.1f} us")
    print(f"warp executions   : {stats.warp_executions}")
    print(f"average warp size : {stats.average_warp_size:.2f}")
    print(f"warp-size mix     : {stats.warp_size_fractions()}")
    print(f"instructions      : {stats.instructions}")
    print(device.statistics_report())


if __name__ == "__main__":
    main()
