#!/usr/bin/env python
"""Option pricing on the simulated vector processor.

Prices a portfolio of European options with the BlackScholes workload
kernel (the paper's compute-bound, control-uniform class) under every
execution configuration and reports modeled speedups plus machine
throughput — the Figure 6 experiment for a single application,
end-to-end through the public API.

Run:  python examples/blackscholes_pricing.py
"""

import numpy as np

from repro import (
    Device,
    baseline_config,
    static_tie_config,
    vectorized_config,
)
from repro.workloads import get_workload


def main():
    workload = get_workload("BlackScholes")
    print(f"workload : {workload.name} — {workload.description}")

    configurations = [
        ("scalar baseline", baseline_config()),
        ("vectorized (ws<=4)", vectorized_config(4)),
        ("static + TIE", static_tie_config(4)),
    ]

    baseline_cycles = None
    for label, config in configurations:
        device = Device(config=config)
        workload.prepare(device)
        run = workload.execute(device, scale=2.0, check=True)
        stats = run.statistics
        cycles = run.elapsed_cycles
        if baseline_cycles is None:
            baseline_cycles = cycles
        seconds = run.elapsed_seconds(device.machine.clock_hz)
        print(
            f"  {label:<20} verified={run.correct} "
            f"modeled {seconds * 1e6:8.1f} us "
            f"speedup {baseline_cycles / cycles:5.2f}x "
            f"({stats.gflops(device.machine.clock_hz):5.1f} GFLOP/s, "
            f"avg warp {stats.average_warp_size:.2f})"
        )

    print(
        "\nBlackScholes has no data-dependent control flow, so every "
        "warp stays at the maximum width and vectorization pays off "
        "directly — the behaviour the paper reports for the "
        "compute-bound SDK applications."
    )


if __name__ == "__main__":
    main()
