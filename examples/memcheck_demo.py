#!/usr/bin/env python
"""Kernel sanitizer demo: catching guest-memory bugs and shared-memory
races that unchecked execution silently absorbs.

The sanitizer is an opt-in checked execution mode
(``ExecutionConfig(sanitize=True)`` or ``REPRO_SANITIZE=1``). It shadows
every arena byte, fences allocations with redzones, quarantines freed
memory, and logs shared-memory accesses per barrier interval. Faults
surface as structured kernel traps naming the exact kernel, CTA/thread,
block label, scalar op, and offending allocation.

Four acts:
  1. an off-by-one store past the end of a buffer (memcheck),
  2. a store through a dangling pointer (use-after-free),
  3. a read of memory the host never wrote (initcheck),
  4. a shared-memory write-write race missing a bar.sync (racecheck),
then a non-fatal run that accumulates findings instead of trapping.

Run:  python examples/memcheck_demo.py
"""

import numpy as np

from repro import (
    Device,
    ExecutionConfig,
    KernelTrap,
    format_sanitizer_reports,
    format_trap,
)

#: Stores tid to out[tid] with no bounds guard.
FILL = r"""
.version 2.3
.target sim
.entry fill (.param .u64 out)
{
  .reg .u32 %r<4>;
  .reg .u64 %rd<4>;
  mov.u32 %r1, %tid.x;
  mul.wide.u32 %rd1, %r1, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.u32 [%rd3], %r1;
  exit;
}
"""

#: Sums src[0..n) — reads every element, written or not.
SUM = r"""
.version 2.3
.target sim
.entry sumAll (.param .u64 src, .param .u64 dst, .param .u32 n)
{
  .reg .u32 %r<6>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
  mov.u32 %r1, 0;
  mov.f32 %f1, 0f00000000;
  ld.param.u32 %r2, [n];
  ld.param.u64 %rd1, [src];
LOOP:
  mul.wide.u32 %rd2, %r1, 4;
  add.u64 %rd3, %rd1, %rd2;
  ld.global.f32 %f2, [%rd3];
  add.f32 %f1, %f1, %f2;
  add.u32 %r1, %r1, 1;
  setp.lt.u32 %p1, %r1, %r2;
  @%p1 bra LOOP;
  ld.param.u64 %rd5, [dst];
  st.global.f32 [%rd5], %f1;
  exit;
}
"""

#: Every thread writes shared slot 0 before the barrier: a W-W race.
RACY = r"""
.version 2.3
.target sim
.entry racy (.param .u64 out)
{
  .reg .u32 %r<6>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;
  .shared .u32 sdata[16];
  mov.u32 %r1, %tid.x;
  mov.u32 %r2, sdata;
  st.shared.u32 [%r2], %r1;         // <- missing per-thread offset
  bar.sync 0;
  setp.ne.u32 %p1, %r1, 0;
  @%p1 bra DONE;
  ld.shared.u32 %r3, [%r2];
  ld.param.u64 %rd1, [out];
  st.global.u32 [%rd1], %r3;
DONE:
  exit;
}
"""


def act(title):
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def show_trap(device, kernel, **launch):
    try:
        device.launch(kernel, **launch)
        print("(no trap?)")
    except KernelTrap as trap:
        print(format_trap(trap))


def main():
    config = ExecutionConfig(sanitize=True)
    device = Device(config=config)
    device.register_module(FILL)
    device.register_module(SUM)
    device.register_module(RACY)

    act("Act 1: off-by-one store (memcheck)")
    out = device.malloc(16 * 4, label="out")  # 16 elements ...
    # ... but 17 threads: tid 16 stores 4 bytes past the end, straight
    # into the redzone. Unchecked execution would clobber whatever the
    # arena placed there.
    show_trap(device, "fill", grid=1, block=17, args=[out])
    device.reset()

    act("Act 2: store through a dangling pointer (use-after-free)")
    stale = device.malloc(16 * 4, label="stale")
    device.free(stale)  # quarantined, not recycled
    show_trap(device, "fill", grid=1, block=8, args=[stale])
    device.reset()

    act("Act 3: read of never-written memory (initcheck)")
    src = device.malloc(16 * 4, label="uninitialized input")
    dst = device.malloc(4, label="sum")
    show_trap(device, "sumAll", grid=1, block=1, args=[src, dst, 16])
    device.reset()

    act("Act 4: shared-memory write-write race (racecheck)")
    slot = device.malloc(4, label="slot")
    show_trap(device, "racy", grid=1, block=8, args=[slot])
    device.reset()

    act("Act 5: non-fatal mode — collect findings, finish the launch")
    device = Device(
        config=ExecutionConfig(sanitize=True, sanitize_fatal=False)
    )
    device.register_module(FILL)
    out = device.malloc(16 * 4, label="out")
    result = device.launch("fill", grid=1, block=20, args=[out])
    values = out.read(np.uint32, 16)
    print(f"launch completed; out[:4] = {values[:4]}")
    print(format_sanitizer_reports(result.statistics.sanitizer))
    print()
    print(result.statistics.report())


if __name__ == "__main__":
    main()
