#!/usr/bin/env python
"""Vector-width scaling sweep across machine models.

The paper's abstract promises "performance scalability ... from 2-wide
to arbitrary-width vector units" but could only measure SSE (no AVX
backend in LLVM at the time, no Knights Ferry silicon). This example
runs the peak-throughput microbenchmark on the SSE-like, AVX-like and
Knights-Ferry-like machine models with matching specializations and
prints the sustained fraction of each machine's peak.

Run:  python examples/machine_sweep.py
"""

from repro import (
    Device,
    ExecutionConfig,
    avx_machine,
    knights_ferry,
    sandybridge,
)
from repro.workloads import get_workload


def config_for(width: int) -> ExecutionConfig:
    sizes = [1]
    while sizes[-1] * 2 <= width:
        sizes.append(sizes[-1] * 2)
    return ExecutionConfig(warp_sizes=tuple(sizes))


def main():
    machines = [
        ("Sandybridge / SSE (paper's testbed)", sandybridge(), 4),
        ("Sandybridge / AVX (paper's near-term target)",
         avx_machine(), 8),
        ("Knights-Ferry-like many-core", knights_ferry(), 16),
    ]
    workload = get_workload("throughput")
    print("peak-throughput microbenchmark, specialized per machine\n")
    for label, machine, width in machines:
        run = workload.run_on(
            config_for(width), scale=0.5, machine=machine
        )
        gflops = run.statistics.gflops(machine.clock_hz)
        peak = machine.peak_vector_gflops
        print(
            f"  {label:<46} {machine.cores:>2} cores x "
            f"{machine.vector_width:>2} lanes | "
            f"{gflops:7.1f} / {peak:7.1f} GFLOP/s "
            f"({gflops / peak:4.0%} of peak)"
        )
    print(
        "\nThe same PTX kernel and the same transformation serve every "
        "machine — only the translation cache's specialization widths "
        "change, which is the paper's ISA-agnosticism claim."
    )


if __name__ == "__main__":
    main()
