"""CUDA-Runtime-style front-end (§3: "The proposed compilation model is
wrapped by an API front-end for heterogeneous computing").

A :class:`Device` bundles the simulated machine, its memory, the
translation cache and the launcher:

>>> device = Device()
>>> device.register_module(ptx_source)
>>> a = device.malloc(1024)
>>> device.memcpy_htod(a, host_array)
>>> result = device.launch("vecAdd", grid=(4, 1, 1),
...                        block=(64, 1, 1), args=[a, b, c, 256])
>>> device.memcpy_dtoh(out, c)
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import (
    BarrierDeadlock,
    KernelTrap,
    LaunchError,
    LaunchTimeout,
    ReproError,
)
from ..machine.backend import create_backend
from ..machine.descriptor import MachineDescription, sandybridge
from ..machine.memory import Allocation, MemorySystem
from ..ptx.module import Module
from ..ptx.parser import parse
from ..ptx.types import DataType
from ..ptx.validator import validate_module
from ..runtime.cache_store import CacheStore
from ..runtime.config import ExecutionConfig, apply_backend_env
from ..sanitizer.core import KernelSanitizer, apply_sanitize_env
from ..runtime.launcher import KernelLauncher, LaunchResult
from ..runtime.translation_cache import TranslationCache

_PACK_FORMATS = {
    DataType.u8: "<B",
    DataType.s8: "<b",
    DataType.u16: "<H",
    DataType.s16: "<h",
    DataType.u32: "<I",
    DataType.s32: "<i",
    DataType.u64: "<Q",
    DataType.s64: "<q",
    DataType.f32: "<f",
    DataType.f64: "<d",
    DataType.b8: "<B",
    DataType.b16: "<H",
    DataType.b32: "<I",
    DataType.b64: "<Q",
}

Dim = Union[int, Tuple[int, ...]]


def _normalize_dim(value: Dim) -> Tuple[int, int, int]:
    if isinstance(value, int):
        return (value, 1, 1)
    padded = tuple(value) + (1, 1, 1)
    return padded[:3]


class Device:
    """A simulated vector-processor device with a CUDA-like runtime."""

    def __init__(
        self,
        machine: Optional[MachineDescription] = None,
        config: Optional[ExecutionConfig] = None,
        memory_size: int = 1 << 26,
        cache_store: Optional[CacheStore] = None,
    ):
        self.machine = machine or sandybridge()
        self.config = apply_backend_env(
            apply_sanitize_env(config or ExecutionConfig())
        )
        self.memory = MemorySystem(size=memory_size)
        #: Checked-execution services (``config.sanitize``); None when
        #: running the unchecked fast path. Must attach to the memory
        #: system before anything allocates, so every allocation is in
        #: the registry.
        self.sanitizer = None
        if self.config.sanitize_checks:
            self.sanitizer = KernelSanitizer(
                self.memory,
                checks=self.config.sanitize_checks,
                fatal=self.config.sanitize_fatal,
            )
            self.memory.sanitizer = self.sanitizer
        self.interpreter = create_backend(
            self.config.backend,
            self.machine,
            self.memory,
            mode=self.config.interpreter_mode,
            sanitizer=self.sanitizer,
        )
        self.cache = TranslationCache(
            self.machine, self.interpreter, self.config, store=cache_store
        )
        self.launcher = KernelLauncher(
            self.machine,
            self.memory,
            self.interpreter,
            self.cache,
            self.config,
        )
        self.modules: List[Module] = []
        self._allocations: List[Allocation] = []
        #: CUDA-style sticky error: a contained runtime fault
        #: (KernelTrap / LaunchTimeout / BarrierDeadlock) is recorded
        #: here and blocks further launches until :meth:`reset` —
        #: mirroring how a CUDA context becomes unusable after a
        #: sticky error until the device is reset.
        self.last_error: Optional[ReproError] = None

    # -- module management ---------------------------------------------------

    def register_module(self, source: Union[str, Module]) -> Module:
        """Register a PTX module (text or already-parsed). Parsing and
        validation are eager (§3); translation is lazy."""
        if isinstance(source, str):
            module = parse(source)
        else:
            module = source
        validate_module(module)
        global_symbols = self._materialize_module_variables(module)
        self.cache.register_module(module, global_symbols)
        self.modules.append(module)
        return module

    def _materialize_module_variables(
        self, module: Module
    ) -> Dict[str, int]:
        """Allocate module-scope .global/.const variables in the arena
        and apply initializers."""
        addresses: Dict[str, int] = {}
        for variable in module.variables:
            if variable.space.value not in ("global", "const"):
                continue
            address = self.memory.allocate(
                max(variable.size, 1),
                align=max(variable.alignment, 1),
                kind=variable.space.value,
                label=variable.name,
            )
            addresses[variable.name] = address
            if variable.initializer:
                array = np.array(
                    variable.initializer,
                    dtype=variable.dtype.numpy_dtype,
                )
                self.memory.write_array(address, array)
        return addresses

    # -- memory management (the cudaMalloc / cudaMemcpy analogues) ---------

    def malloc(self, size: int, label: str = None) -> Allocation:
        address = self.memory.allocate(size, align=16, label=label)
        allocation = Allocation(self.memory, address, size, label=label)
        self._allocations.append(allocation)
        return allocation

    def upload(self, array: np.ndarray, label: str = None) -> Allocation:
        """malloc + memcpy_htod in one step."""
        allocation = self.malloc(array.nbytes, label=label)
        allocation.write(array)
        return allocation

    def memcpy_htod(self, allocation: Allocation, array) -> None:
        allocation.write(np.asarray(array))

    def memcpy_dtoh(
        self, allocation: Allocation, dtype, count: int
    ) -> np.ndarray:
        return allocation.read(dtype, count)

    def memset(self, allocation: Allocation, byte: int = 0) -> None:
        self.memory.fill(allocation.address, allocation.size, byte)

    def free(self, allocation: Allocation) -> None:
        """Return a buffer's arena region for reuse (cudaFree)."""
        allocation.free()
        try:
            self._allocations.remove(allocation)
        except ValueError:
            pass

    # -- launches --------------------------------------------------------

    def launch(
        self,
        kernel_name: str,
        grid: Dim,
        block: Dim,
        args: Sequence[object] = (),
    ) -> LaunchResult:
        """Launch ``kernel_name`` over ``grid`` x ``block`` threads.

        ``args`` entries are matched positionally against the kernel's
        ``.param`` declarations: :class:`Allocation` / int for pointer
        parameters, Python numbers for scalars, and sequences for array
        parameters.

        A previous launch's contained fault is sticky: launching again
        before :meth:`reset` re-raises a LaunchError naming it.
        """
        if self.last_error is not None:
            raise LaunchError(
                f"device is in a failed state from a previous launch "
                f"({type(self.last_error).__name__}: {self.last_error}); "
                f"call Device.reset() to clear it"
            )
        kernel = self.cache.kernel(kernel_name)
        parameters = kernel.parameters
        if len(args) != len(parameters):
            raise LaunchError(
                f"{kernel_name} expects {len(parameters)} arguments "
                f"({[p.name for p in parameters]}), got {len(args)}"
            )
        param_size = max(kernel.param_size, 1)
        param_base = self.memory.allocate(
            param_size, kind="param", label=f"{kernel_name} params"
        )
        for parameter, value in zip(parameters, args):
            self._write_parameter(param_base, parameter, value)
        try:
            return self.launcher.launch(
                kernel_name,
                _normalize_dim(grid),
                _normalize_dim(block),
                param_base,
            )
        except (KernelTrap, LaunchTimeout, BarrierDeadlock) as fault:
            self.last_error = fault
            raise
        finally:
            # Launches are synchronous; the parameter segment can be
            # reclaimed immediately so repeated launches don't leak —
            # including when the launch trapped.
            self.memory.free(param_base, param_size)

    def _write_parameter(self, base: int, parameter, value) -> None:
        fmt = _PACK_FORMATS.get(parameter.dtype)
        if fmt is None:
            raise LaunchError(
                f"cannot pass parameter of type {parameter.dtype}"
            )
        if parameter.count > 1:
            values = list(value)
            if len(values) != parameter.count:
                raise LaunchError(
                    f"parameter {parameter.name} expects "
                    f"{parameter.count} elements, got {len(values)}"
                )
        else:
            values = [value]
        offset = base + parameter.offset
        size = parameter.dtype.size
        for index, element in enumerate(values):
            if isinstance(element, Allocation):
                element = element.address
            raw = struct.pack(fmt, element)
            self.memory.write_array(
                offset + index * size,
                np.frombuffer(raw, dtype=np.uint8),
            )

    # -- warm-up ---------------------------------------------------------

    def warm(
        self,
        kernel_name: Optional[str] = None,
        warp_sizes: Optional[Sequence[int]] = None,
    ) -> Dict[Tuple[str, int], float]:
        """Compile-ahead (§5.1 without the laziness): materialize
        specializations of ``kernel_name`` (default: every registered
        kernel) for ``warp_sizes`` (default: all configured widths)
        before the first launch. With the persistent cache enabled this
        also populates the disk tier. Returns per-specialization
        compile seconds (0.0 for already-cached entries)."""
        return self.cache.warm(kernel_name, warp_sizes)

    # -- fault recovery --------------------------------------------------

    def reset(self) -> None:
        """Clear a sticky launch fault (the cudaDeviceReset analogue,
        minus deallocation: buffers survive so a trapped workload can
        re-launch against the same data).

        The launcher already restored every execution manager's pooled
        state when the fault was contained; reset re-runs that recovery
        defensively and clears :attr:`last_error`. Under checked
        execution the sanitizer's leak check runs here, recording
        device buffers that were never freed on
        ``device.sanitizer.leak_reports``."""
        for manager in self.launcher.managers:
            manager.recover()
        self.last_error = None
        if self.sanitizer is not None:
            self.sanitizer.leak_check()

    # -- introspection -------------------------------------------------------

    def statistics_report(self) -> str:
        cache = self.cache.statistics
        return (
            f"modules={len(self.modules)} "
            f"translations={cache.translations} "
            f"cache hits={cache.hits} misses={cache.misses} "
            f"invalidations={cache.invalidations} "
            f"degradations={cache.degradations} "
            f"disk hits={cache.disk_hits} misses={cache.disk_misses} "
            f"errors={cache.disk_errors} evictions={cache.evictions} "
            f"translation time={cache.translation_seconds:.3f}s"
        )
