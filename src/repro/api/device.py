"""CUDA-Runtime-style front-end (§3: "The proposed compilation model is
wrapped by an API front-end for heterogeneous computing").

A :class:`Device` bundles the simulated machine, its memory, the
translation cache and the launcher:

>>> device = Device()
>>> device.register_module(ptx_source)
>>> a = device.malloc(1024)
>>> device.memcpy_htod(a, host_array)
>>> result = device.launch("vecAdd", grid=(4, 1, 1),
...                        block=(64, 1, 1), args=[a, b, c, 256])
>>> out = device.memcpy_dtoh(c, np.float32, 256)

Asynchronous launches go through CUDA-style streams
(:mod:`repro.api.stream`): ``device.launch_async(...)`` returns a
:class:`~repro.api.stream.LaunchFuture` ordered FIFO within its
stream, and :class:`~repro.api.stream.Event` objects order work
across streams.
"""

from __future__ import annotations

import struct
import threading
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import (
    BarrierDeadlock,
    KernelTrap,
    LaunchError,
    LaunchTimeout,
    ReproError,
)
from ..machine.backend import create_backend
from ..machine.descriptor import MachineDescription, sandybridge
from ..machine.memory import Allocation, MemorySystem
from ..ptx.module import Module
from ..ptx.parser import parse
from ..ptx.types import DataType
from ..ptx.validator import validate_module
from ..runtime.cache_store import CacheStore
from ..runtime.config import (
    ExecutionConfig,
    apply_backend_env,
    apply_meld_env,
)
from ..sanitizer.core import KernelSanitizer, apply_sanitize_env
from ..runtime.launcher import KernelLauncher, LaunchResult
from ..runtime.translation_cache import TranslationCache
from .stream import LaunchFuture, Stream

_PACK_FORMATS = {
    DataType.u8: "<B",
    DataType.s8: "<b",
    DataType.u16: "<H",
    DataType.s16: "<h",
    DataType.u32: "<I",
    DataType.s32: "<i",
    DataType.u64: "<Q",
    DataType.s64: "<q",
    DataType.f32: "<f",
    DataType.f64: "<d",
    DataType.b8: "<B",
    DataType.b16: "<H",
    DataType.b32: "<I",
    DataType.b64: "<Q",
}

Dim = Union[int, Tuple[int, ...]]


def _normalize_dim(value: Dim, which: str = "dim") -> Tuple[int, int, int]:
    """Normalize a launch dimension to exactly three components.

    Accepts an int (``n`` -> ``(n, 1, 1)``) or a tuple of up to three
    components, which is padded with 1s. More than three dimensions or
    any non-positive component is a :class:`LaunchError` naming the
    offending axis — silent truncation would launch a different grid
    than the caller asked for."""
    if isinstance(value, (int, np.integer)):
        dims: Tuple[int, ...] = (int(value),)
    else:
        try:
            dims = tuple(int(component) for component in value)
        except (TypeError, ValueError) as error:
            raise LaunchError(
                f"{which} must be an int or a tuple of ints, "
                f"got {value!r}"
            ) from error
    if len(dims) > 3:
        raise LaunchError(
            f"{which} has {len(dims)} dimensions {dims}; "
            f"launch dimensions are at most 3-D (x, y, z)"
        )
    dims = dims + (1,) * (3 - len(dims))
    for axis, component in zip("xyz", dims):
        if component < 1:
            raise LaunchError(
                f"{which}.{axis} must be >= 1, got {component} "
                f"(in {which}={value!r})"
            )
    return dims


class Device:
    """A simulated vector-processor device with a CUDA-like runtime."""

    def __init__(
        self,
        machine: Optional[MachineDescription] = None,
        config: Optional[ExecutionConfig] = None,
        memory_size: int = 1 << 26,
        cache_store: Optional[CacheStore] = None,
    ):
        self.machine = machine or sandybridge()
        self.config = apply_backend_env(
            apply_meld_env(apply_sanitize_env(config or ExecutionConfig()))
        )
        self.memory = MemorySystem(size=memory_size)
        #: Checked-execution services (``config.sanitize``); None when
        #: running the unchecked fast path. Must attach to the memory
        #: system before anything allocates, so every allocation is in
        #: the registry.
        self.sanitizer = None
        if self.config.sanitize_checks:
            self.sanitizer = KernelSanitizer(
                self.memory,
                checks=self.config.sanitize_checks,
                fatal=self.config.sanitize_fatal,
            )
            self.memory.sanitizer = self.sanitizer
        self.interpreter = create_backend(
            self.config.backend,
            self.machine,
            self.memory,
            mode=self.config.interpreter_mode,
            sanitizer=self.sanitizer,
        )
        self.cache = TranslationCache(
            self.machine, self.interpreter, self.config, store=cache_store
        )
        self.launcher = KernelLauncher(
            self.machine,
            self.memory,
            self.interpreter,
            self.cache,
            self.config,
        )
        self.modules: List[Module] = []
        self._allocations: List[Allocation] = []
        #: Serializes kernel execution: synchronous launches and every
        #: stream's worker thread funnel through this lock, so the
        #: single simulated machine never runs two kernels at once.
        self._launch_lock = threading.Lock()
        self._streams: List[Stream] = []
        self._default_stream: Optional[Stream] = None
        #: CUDA-style sticky error: a contained runtime fault
        #: (KernelTrap / LaunchTimeout / BarrierDeadlock) is recorded
        #: here and blocks further launches until :meth:`reset` —
        #: mirroring how a CUDA context becomes unusable after a
        #: sticky error until the device is reset.
        self.last_error: Optional[ReproError] = None

    # -- module management ---------------------------------------------------

    def register_module(self, source: Union[str, Module]) -> Module:
        """Register a PTX module (text or already-parsed). Parsing and
        validation are eager (§3); translation is lazy."""
        if isinstance(source, str):
            module = parse(source)
        else:
            module = source
        validate_module(module)
        global_symbols = self._materialize_module_variables(module)
        self.cache.register_module(module, global_symbols)
        self.modules.append(module)
        return module

    def _materialize_module_variables(
        self, module: Module
    ) -> Dict[str, int]:
        """Allocate module-scope .global/.const variables in the arena
        and apply initializers."""
        addresses: Dict[str, int] = {}
        for variable in module.variables:
            if variable.space.value not in ("global", "const"):
                continue
            address = self.memory.allocate(
                max(variable.size, 1),
                align=max(variable.alignment, 1),
                kind=variable.space.value,
                label=variable.name,
            )
            addresses[variable.name] = address
            if variable.initializer:
                array = np.array(
                    variable.initializer,
                    dtype=variable.dtype.numpy_dtype,
                )
                self.memory.write_array(address, array)
        return addresses

    # -- memory management (the cudaMalloc / cudaMemcpy analogues) ---------

    def malloc(self, size: int, label: str = None) -> Allocation:
        address = self.memory.allocate(size, align=16, label=label)
        allocation = Allocation(self.memory, address, size, label=label)
        self._allocations.append(allocation)
        return allocation

    def upload(self, array: np.ndarray, label: str = None) -> Allocation:
        """malloc + memcpy_htod in one step."""
        allocation = self.malloc(array.nbytes, label=label)
        allocation.write(array)
        return allocation

    def memcpy_htod(self, allocation: Allocation, array) -> None:
        allocation.write(np.asarray(array))

    def memcpy_dtoh(
        self, allocation: Allocation, dtype, count: int
    ) -> np.ndarray:
        return allocation.read(dtype, count)

    def memset(self, allocation: Allocation, byte: int = 0) -> None:
        self.memory.fill(allocation.address, allocation.size, byte)

    def free(self, allocation: Allocation) -> None:
        """Return a buffer's arena region for reuse (cudaFree)."""
        allocation.free()
        try:
            self._allocations.remove(allocation)
        except ValueError:
            pass

    # -- launches --------------------------------------------------------

    def launch(
        self,
        kernel_name: str,
        grid: Dim,
        block: Dim,
        args: Sequence[object] = (),
    ) -> LaunchResult:
        """Launch ``kernel_name`` over ``grid`` x ``block`` threads.

        ``args`` entries are matched positionally against the kernel's
        ``.param`` declarations: :class:`Allocation` / int for pointer
        parameters, Python numbers for scalars, and sequences for array
        parameters.

        A previous launch's contained fault is sticky: launching again
        before :meth:`reset` re-raises a LaunchError naming it.

        If streams have pending asynchronous work the launch first
        drains them (legacy-default-stream semantics), so a
        synchronous launch always observes prior async results.
        """
        grid = _normalize_dim(grid, "grid")
        block = _normalize_dim(block, "block")
        self._drain_streams()
        with self._launch_lock:
            return self._launch_impl(kernel_name, grid, block, args)

    def _launch_impl(
        self,
        kernel_name: str,
        grid: Tuple[int, int, int],
        block: Tuple[int, int, int],
        args: Sequence[object],
    ) -> LaunchResult:
        """The locked launch body (shared by the synchronous path and
        every stream's worker thread). ``grid``/``block`` are already
        normalized."""
        if self.last_error is not None:
            raise LaunchError(
                f"device is in a failed state from a previous launch "
                f"({type(self.last_error).__name__}: {self.last_error}); "
                f"call Device.reset() to clear it"
            )
        kernel = self.cache.kernel(kernel_name)
        parameters = kernel.parameters
        if len(args) != len(parameters):
            raise LaunchError(
                f"{kernel_name} expects {len(parameters)} arguments "
                f"({[p.name for p in parameters]}), got {len(args)}"
            )
        param_size = max(kernel.param_size, 1)
        param_base = self.memory.allocate(
            param_size, kind="param", label=f"{kernel_name} params"
        )
        try:
            # Marshalling runs inside the reclaim scope: a bad argument
            # value must not leak the parameter segment (the arena
            # break has to stay stable across repeated failed
            # launches).
            for parameter, value in zip(parameters, args):
                self._write_parameter(param_base, parameter, value)
            return self.launcher.launch(
                kernel_name, grid, block, param_base
            )
        except (KernelTrap, LaunchTimeout, BarrierDeadlock) as fault:
            self.last_error = fault
            raise
        finally:
            # Launches are synchronous; the parameter segment can be
            # reclaimed immediately so repeated launches don't leak —
            # including when marshalling failed or the launch trapped.
            self.memory.free(param_base, param_size)

    def _write_parameter(self, base: int, parameter, value) -> None:
        fmt = _PACK_FORMATS.get(parameter.dtype)
        if fmt is None:
            raise LaunchError(
                f"cannot pass parameter of type {parameter.dtype}"
            )
        if parameter.count > 1:
            try:
                values = list(value)
            except TypeError as error:
                raise LaunchError(
                    f"parameter {parameter.name!r} expects a sequence "
                    f"of {parameter.count} {parameter.dtype.value} "
                    f"elements, got {value!r}"
                ) from error
            if len(values) != parameter.count:
                raise LaunchError(
                    f"parameter {parameter.name} expects "
                    f"{parameter.count} elements, got {len(values)}"
                )
        else:
            values = [value]
        offset = base + parameter.offset
        size = parameter.dtype.size
        for index, element in enumerate(values):
            if isinstance(element, Allocation):
                element = element.address
            try:
                raw = struct.pack(fmt, element)
            except (struct.error, TypeError, ValueError,
                    OverflowError) as error:
                position = (
                    f" (element {index})" if parameter.count > 1 else ""
                )
                raise LaunchError(
                    f"cannot marshal argument for parameter "
                    f"{parameter.name!r}{position}: "
                    f"{element!r} is not a valid "
                    f"{parameter.dtype.value} value ({error})"
                ) from error
            self.memory.write_array(
                offset + index * size,
                np.frombuffer(raw, dtype=np.uint8),
            )

    # -- streams & asynchronous launches ---------------------------------

    @property
    def default_stream(self) -> Stream:
        """The stream :meth:`launch_async` uses when none is given
        (created on first use)."""
        if self._default_stream is None:
            self._default_stream = self.create_stream(name="default")
        return self._default_stream

    def create_stream(self, name: Optional[str] = None) -> Stream:
        """Create an independent FIFO work queue (cudaStreamCreate).
        Work on different streams may interleave; work within one
        stream executes in submission order."""
        stream = Stream(self, name=name)
        self._streams.append(stream)
        return stream

    def launch_async(
        self,
        kernel_name: str,
        grid: Dim,
        block: Dim,
        args: Sequence[object] = (),
        stream: Optional[Stream] = None,
    ) -> LaunchFuture:
        """Enqueue a launch on ``stream`` (default: the default
        stream) and return a :class:`~repro.api.stream.LaunchFuture`.

        Dimension validation happens at submit time; everything else
        (including a contained fault) is delivered through the future
        with the same sticky-error semantics as :meth:`launch` —
        except a device already in a failed state, which rejects the
        submission immediately (fail fast)."""
        grid = _normalize_dim(grid, "grid")
        block = _normalize_dim(block, "block")
        if self.last_error is not None:
            raise LaunchError(
                f"device is in a failed state from a previous launch "
                f"({type(self.last_error).__name__}: {self.last_error}); "
                f"call Device.reset() to clear it"
            )
        target = stream if stream is not None else self.default_stream
        return target.launch_async(kernel_name, grid, block, args)

    def synchronize(self) -> None:
        """Block until every stream's queued work has completed
        (cudaDeviceSynchronize). Launch failures stay on their
        futures; synchronize itself never raises for them."""
        self._drain_streams()

    def _drain_streams(self) -> None:
        for stream in self._streams:
            if stream.pending:
                stream.synchronize()

    # -- warm-up ---------------------------------------------------------

    def warm(
        self,
        kernel_name: Optional[str] = None,
        warp_sizes: Optional[Sequence[int]] = None,
    ) -> Dict[Tuple[str, int], float]:
        """Compile-ahead (§5.1 without the laziness): materialize
        specializations of ``kernel_name`` (default: every registered
        kernel) for ``warp_sizes`` (default: all configured widths)
        before the first launch. With the persistent cache enabled this
        also populates the disk tier. Returns per-specialization
        compile seconds (0.0 for already-cached entries)."""
        return self.cache.warm(kernel_name, warp_sizes)

    # -- fault recovery --------------------------------------------------

    def reset(self) -> None:
        """Clear a sticky launch fault (the cudaDeviceReset analogue,
        minus deallocation: buffers survive so a trapped workload can
        re-launch against the same data).

        The launcher already restored every execution manager's pooled
        state when the fault was contained; reset re-runs that recovery
        defensively and clears :attr:`last_error`. Streams carry no
        sticky state of their own, so after reset every existing
        stream is launch-ready again (queued launches that arrived
        while the device was failed have already failed fast through
        their futures). Under checked
        execution the sanitizer's leak check runs here, recording
        device buffers that were never freed on
        ``device.sanitizer.leak_reports``."""
        for manager in self.launcher.managers:
            manager.recover()
        self.last_error = None
        if self.sanitizer is not None:
            self.sanitizer.leak_check()

    # -- introspection -------------------------------------------------------

    def statistics_report(self) -> str:
        cache = self.cache.statistics
        return (
            f"modules={len(self.modules)} "
            f"translations={cache.translations} "
            f"cache hits={cache.hits} misses={cache.misses} "
            f"invalidations={cache.invalidations} "
            f"degradations={cache.degradations} "
            f"disk hits={cache.disk_hits} misses={cache.disk_misses} "
            f"errors={cache.disk_errors} evictions={cache.evictions} "
            f"translation time={cache.translation_seconds:.3f}s"
        )
