"""CUDA-style streams, events, and launch futures.

A :class:`Stream` is a FIFO work queue attached to one
:class:`~repro.api.device.Device`. Work items (kernel launches, event
records, cross-stream waits) execute in submission order on the
stream's own worker thread; different streams interleave freely, but
actual kernel execution is serialized through the device's launch
lock — exactly one simulated kernel runs at a time, mirroring a
single-device hardware queue.

Delivery semantics match the synchronous launch path: a contained
fault (:class:`~repro.errors.KernelTrap`, LaunchTimeout,
BarrierDeadlock) sets the device's sticky error and arrives through
the :class:`LaunchFuture` with its full structured payload (trap
coordinates, partial statistics). Later launches queued behind it
fail fast with a :class:`~repro.errors.LaunchError` until
``Device.reset()``.

:class:`Event` provides record/synchronize ordering: recording
enqueues a marker that fires when every earlier item of the stream
has completed; ``stream.wait_event(event)`` parks another stream
until the marker fires (cudaStreamWaitEvent).
"""

from __future__ import annotations

import itertools
import queue
import threading
from typing import TYPE_CHECKING, Optional, Sequence, Tuple

from ..errors import LaunchError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.launcher import LaunchResult
    from .device import Device

_STREAM_IDS = itertools.count(1)


class LaunchFuture:
    """The pending result of one asynchronous launch.

    Resolves to the launch's :class:`~repro.runtime.launcher.
    LaunchResult`, or to the exception the synchronous path would have
    raised (sticky-error and trap-attribution semantics are
    preserved: a KernelTrap future carries ``info`` for
    :func:`repro.format_trap` and partial ``statistics``)."""

    def __init__(self, kernel_name: str):
        self.kernel_name = kernel_name
        self._completed = threading.Event()
        self._result: Optional["LaunchResult"] = None
        self._error: Optional[BaseException] = None

    # -- producer side (stream / pool dispatcher) ------------------------

    def _resolve(self, result: "LaunchResult") -> None:
        self._result = result
        self._completed.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        self._completed.set()

    # -- consumer side ----------------------------------------------------

    def done(self) -> bool:
        """True once the launch has completed (successfully or not)."""
        return self._completed.is_set()

    def _wait(self, timeout: Optional[float]) -> None:
        if not self._completed.wait(timeout):
            raise LaunchError(
                f"timed out after {timeout}s waiting for async launch "
                f"of {self.kernel_name!r}"
            )

    def result(self, timeout: Optional[float] = None) -> "LaunchResult":
        """Block until the launch completes; return its LaunchResult
        or re-raise the launch's exception."""
        self._wait(timeout)
        if self._error is not None:
            raise self._error
        return self._result

    def exception(
        self, timeout: Optional[float] = None
    ) -> Optional[BaseException]:
        """Block until the launch completes; return its exception (or
        None on success) without raising."""
        self._wait(timeout)
        return self._error

    def __repr__(self):
        if not self.done():
            state = "pending"
        elif self._error is not None:
            state = f"failed: {type(self._error).__name__}"
        else:
            state = "completed"
        return f"<LaunchFuture {self.kernel_name} {state}>"


class Event:
    """A stream marker (cudaEvent): records a point in a stream's
    FIFO; :meth:`synchronize` blocks until every item queued before
    the record has completed."""

    def __init__(self):
        self._fired = threading.Event()

    def query(self) -> bool:
        """True once the recording stream has reached the marker."""
        return self._fired.is_set()

    def synchronize(self, timeout: Optional[float] = None) -> None:
        """Block until the marker fires."""
        if not self._fired.wait(timeout):
            raise LaunchError(
                f"timed out after {timeout}s waiting for event"
            )

    def _fire(self) -> None:
        self._fired.set()


class _LaunchItem:
    __slots__ = ("future", "kernel_name", "grid", "block", "args")

    def __init__(self, future, kernel_name, grid, block, args):
        self.future = future
        self.kernel_name = kernel_name
        self.grid = grid
        self.block = block
        self.args = args

    def run(self, stream: "Stream") -> None:
        device = stream.device
        try:
            with device._launch_lock:
                result = device._launch_impl(
                    self.kernel_name, self.grid, self.block, self.args
                )
        except Exception as error:
            self.future._fail(error)
        else:
            self.future._resolve(result)


class _EventItem:
    __slots__ = ("event",)

    def __init__(self, event: Event):
        self.event = event

    def run(self, stream: "Stream") -> None:
        self.event._fire()


class _WaitItem:
    __slots__ = ("event",)

    def __init__(self, event: Event):
        self.event = event

    def run(self, stream: "Stream") -> None:
        self.event._fired.wait()


class Stream:
    """One FIFO work queue of a device. Create through
    :meth:`Device.create_stream`; the worker thread starts lazily on
    the first submission and idles between items."""

    def __init__(self, device: "Device", name: Optional[str] = None):
        self.device = device
        self.name = name or f"stream-{next(_STREAM_IDS)}"
        self._queue: "queue.Queue" = queue.Queue()
        self._thread: Optional[threading.Thread] = None
        self._start_lock = threading.Lock()
        self._pending = 0
        self._pending_lock = threading.Lock()
        self._closed = False

    # -- submission --------------------------------------------------------

    def launch_async(
        self,
        kernel_name: str,
        grid: Tuple[int, int, int],
        block: Tuple[int, int, int],
        args: Sequence[object] = (),
    ) -> LaunchFuture:
        """Enqueue one launch; FIFO within this stream. Dimensions are
        validated at submission; prefer :meth:`Device.launch_async`,
        which additionally fails fast on a faulted device."""
        from .device import _normalize_dim

        grid = _normalize_dim(grid, which="grid")
        block = _normalize_dim(block, which="block")
        future = LaunchFuture(kernel_name)
        self._put(_LaunchItem(future, kernel_name, grid, block, args))
        return future

    def record(self, event: Optional[Event] = None) -> Event:
        """Record an event marker at the current tail of the stream."""
        event = event or Event()
        self._put(_EventItem(event))
        return event

    def wait_event(self, event: Event) -> None:
        """Make every later item of this stream wait until ``event``
        fires (in its recording stream)."""
        self._put(_WaitItem(event))

    # -- completion --------------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of submitted items not yet completed."""
        with self._pending_lock:
            return self._pending

    def synchronize(self) -> None:
        """Block until every item submitted so far has completed
        (cudaStreamSynchronize). Launch failures stay on their
        futures; synchronize never raises for them."""
        self._queue.join()

    def close(self) -> None:
        """Stop the worker thread after draining the queue. Further
        submissions raise LaunchError. Optional hygiene — idle stream
        threads are daemons and die with the process."""
        with self._start_lock:
            if self._closed:
                return
            self._closed = True
            thread = self._thread
        if thread is not None:
            self._queue.put(None)
            thread.join()

    # -- worker ------------------------------------------------------------

    def _put(self, item) -> None:
        with self._start_lock:
            if self._closed:
                raise LaunchError(
                    f"stream {self.name!r} is closed"
                )
            if self._thread is None:
                self._thread = threading.Thread(
                    target=self._drain,
                    name=f"repro-{self.name}",
                    daemon=True,
                )
                self._thread.start()
        with self._pending_lock:
            self._pending += 1
        self._queue.put(item)

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is None:
                self._queue.task_done()
                return
            try:
                item.run(self)
            finally:
                with self._pending_lock:
                    self._pending -= 1
                self._queue.task_done()

    def __repr__(self):
        return f"<Stream {self.name} pending={self.pending}>"
