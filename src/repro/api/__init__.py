"""Public heterogeneous-computing API front-end (CUDA-Runtime-like)."""

from .device import Device
from .stream import Event, LaunchFuture, Stream

__all__ = ["Device", "Event", "LaunchFuture", "Stream"]
