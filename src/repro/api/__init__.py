"""Public heterogeneous-computing API front-end (CUDA-Runtime-like)."""

from .device import Device

__all__ = ["Device"]
