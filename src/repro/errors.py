"""Exception hierarchy for the repro dynamic compilation framework."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class PTXSyntaxError(ReproError):
    """Raised by the PTX parser on malformed source.

    Carries the line/column of the offending token when available.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PTXValidationError(ReproError):
    """Raised when a parsed PTX module violates a structural invariant."""


class TranslationError(ReproError):
    """Raised when PTX cannot be translated to the scalar IR."""


class IRVerificationError(ReproError):
    """Raised by the IR verifier when a function is malformed."""


class VectorizationError(ReproError):
    """Raised when the vectorization transform encounters an
    instruction it cannot replicate or promote."""


class ExecutionError(ReproError):
    """Raised by the vector machine interpreter on a runtime fault
    (bad address, type mismatch, unsupported opcode)."""


class MemoryFault(ExecutionError):
    """Out-of-bounds or misaligned access in the simulated memory."""

    def __init__(self, address, size, reason="out-of-bounds access"):
        super().__init__(f"{reason}: address=0x{address:x} size={size}")
        self.address = address
        self.size = size
        self.reason = reason


class SanitizerError(ExecutionError):
    """A checked-mode violation detected by the kernel sanitizer
    (out-of-bounds access into a redzone, use-after-free, read of
    uninitialized memory, or an unsynchronized shared-memory race).

    Raised inside the checked memory closures when
    ``ExecutionConfig(sanitize=..., sanitize_fatal=True)``, so it is
    contained at the warp-execution boundary like any other
    :class:`ExecutionError` and surfaces as a :class:`KernelTrap`. The
    structured finding (kind, coordinates, offending allocation,
    conflicting access) rides on ``report`` (a
    :class:`repro.sanitizer.SanitizerReport`).
    """

    def __init__(self, message, report=None):
        super().__init__(message)
        self.report = report


class InstructionLimitExceeded(ExecutionError):
    """The per-warp-execution instruction budget ran out (either the
    interpreter's hard backstop or a watchdog budget installed by the
    execution manager)."""


class DeadlineExceeded(ExecutionError):
    """Internal watchdog signal: the wall-clock deadline passed while a
    warp was executing. Converted to :class:`LaunchTimeout` (with the
    full live-thread report) at the warp-execution boundary."""


class KernelTrap(ExecutionError):
    """A runtime fault contained at the warp-execution boundary.

    Wraps the underlying :class:`ExecutionError` (memory fault, bad
    opcode, type mismatch, ...) with full execution context: kernel
    name, grid/CTA/thread coordinates of the faulting lanes, the block
    label and instruction index at the fault, warp composition, and a
    bounded register snapshot. The structured payload lives on
    ``info`` (a :class:`repro.runtime.traps.TrapInfo`); render it with
    :func:`repro.runtime.traps.format_trap`.
    """

    def __init__(self, message, info=None):
        super().__init__(message)
        self.info = info


class LaunchTimeout(ReproError):
    """A launch exceeded its watchdog budget (``max_kernel_cycles`` or
    ``launch_timeout_s``). ``program_points`` lists every live thread's
    CTA/thread coordinates, scheduling state, and program point, so
    barrier livelock and runaway loops are diagnosable instead of
    hanging the host."""

    def __init__(self, message, kernel=None, program_points=()):
        super().__init__(message)
        self.kernel = kernel
        self.program_points = list(program_points)


class LaunchError(ReproError):
    """Raised by the runtime API for invalid launch configurations."""


class BarrierDeadlock(LaunchError):
    """Threads are parked at a barrier that can never be released.
    ``waiting`` lists a :class:`repro.runtime.traps.ProgramPoint` (CTA
    and thread coordinates + entry point) for every stranded thread."""

    def __init__(self, message, waiting=()):
        super().__init__(message)
        self.waiting = list(waiting)


class QuotaExceeded(LaunchError):
    """A tenant exceeded one of its :class:`repro.runtime.pool.DevicePool`
    quotas (outstanding launches or lifetime launch budget). The launch
    was rejected before it was queued; the tenant's other work is
    unaffected."""


class DeviceLost(LaunchError):
    """A pool worker *process* was lost: it crashed (segfault/OOM/
    nonzero exit), hung past the supervision deadline, or its pipe
    broke. Unlike a contained :class:`KernelTrap` — which is the
    *tenant's* failure — a lost device is an infrastructure failure:
    the supervisor terminates and respawns the worker warm, every
    in-flight launch on it resolves to this error, and the worker's
    allocations are invalidated (their epoch no longer matches).

    ``worker``
        Index of the lost worker in the pool.
    ``cause``
        Human-readable loss cause (``"exit code -11"``,
        ``"hung: ..."``, ``"pipe dropped: ..."``).
    ``epoch``
        The device epoch that died. The respawned worker runs at
        ``epoch + 1``; a :class:`repro.runtime.pool.RemoteAllocation`
        stamped with an older epoch fails fast when used.
    ``delivered``
        True when the request had already been handed to the worker
        (it may have started mutating guest memory — never retried
        automatically); False when the loss was detected before the
        request left the parent (safe for :class:`RetryPolicy
        <repro.runtime.pool.RetryPolicy>` re-dispatch).

    Sessions opened with ``durability="journal"`` or ``"checkpoint"``
    usually absorb this error instead of surfacing it: the pool
    restores the tenant's guest state onto the respawned worker
    (checkpoint load + deterministic journal replay) and re-dispatches
    the casualties, so callers keep their handles and never observe
    the loss. Durable sessions can still surface it with restore-
    specific causes: ``"restore pending"`` (internal — a dispatch
    raced the restore and was parked/re-queued), ``"restore timeout"``
    (the worker did not come back within the session's
    ``restore_timeout``), and ``"restore failed"`` (replay hit a
    non-deterministic error; the session's durable state was reset).
    """

    def __init__(
        self, message, worker=None, cause=None, epoch=None,
        delivered=True,
    ):
        super().__init__(message)
        self.worker = worker
        self.cause = cause
        self.epoch = epoch
        self.delivered = delivered


class DeadlineExpired(LaunchError):
    """A queued launch aged past its request deadline before it was
    dispatched to a worker. The launch never ran; guest memory is
    untouched. Deadlines bound *queue wait* — a launch that has
    already been handed to a worker is governed by the device watchdog
    (``max_kernel_cycles`` / ``launch_timeout_s``) instead."""


class ServiceUnavailable(LaunchError):
    """The serving layer shed this request: the global or per-tenant
    queue depth limit was reached, or the server is draining for
    shutdown. Maps to HTTP 503 with a ``Retry-After`` header;
    ``retry_after`` carries the suggested backoff in seconds."""

    def __init__(self, message, retry_after=None):
        super().__init__(message)
        self.retry_after = retry_after


class TranslationCacheError(ReproError):
    """Raised when the translation cache cannot satisfy a query."""
