"""Exception hierarchy for the repro dynamic compilation framework."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class PTXSyntaxError(ReproError):
    """Raised by the PTX parser on malformed source.

    Carries the line/column of the offending token when available.
    """

    def __init__(self, message, line=None, column=None):
        location = ""
        if line is not None:
            location = f" at line {line}"
            if column is not None:
                location += f", column {column}"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class PTXValidationError(ReproError):
    """Raised when a parsed PTX module violates a structural invariant."""


class TranslationError(ReproError):
    """Raised when PTX cannot be translated to the scalar IR."""


class IRVerificationError(ReproError):
    """Raised by the IR verifier when a function is malformed."""


class VectorizationError(ReproError):
    """Raised when the vectorization transform encounters an
    instruction it cannot replicate or promote."""


class ExecutionError(ReproError):
    """Raised by the vector machine interpreter on a runtime fault
    (bad address, type mismatch, unsupported opcode)."""


class MemoryFault(ExecutionError):
    """Out-of-bounds or misaligned access in the simulated memory."""

    def __init__(self, address, size, reason="out-of-bounds access"):
        super().__init__(f"{reason}: address=0x{address:x} size={size}")
        self.address = address
        self.size = size


class LaunchError(ReproError):
    """Raised by the runtime API for invalid launch configurations."""


class TranslationCacheError(ReproError):
    """Raised when the translation cache cannot satisfy a query."""
