"""Operand kinds of the PTX dialect.

Operands appear as sources/destinations of :class:`repro.ptx.instructions.
PTXInstruction`. They are plain immutable value objects; the parser and
the :class:`~repro.ptx.builder.KernelBuilder` both construct them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from .types import DataType


@dataclass(frozen=True)
class RegisterOperand:
    """A virtual register reference, e.g. ``%r4`` or ``%p1``.

    ``negated`` is only meaningful for predicate guards (``@!%p1``).
    """

    name: str
    dtype: DataType
    negated: bool = False

    def __str__(self):
        prefix = "!" if self.negated else ""
        return f"{prefix}%{self.name}"


@dataclass(frozen=True)
class ImmediateOperand:
    """A literal constant, e.g. ``0f3F800000`` parsed to a Python number."""

    value: object  # int or float
    dtype: DataType

    def __str__(self):
        return repr(self.value)


@dataclass(frozen=True)
class SpecialRegisterOperand:
    """A PTX special register such as ``%tid.x`` or ``%nctaid.y``."""

    register: str  # tid | ntid | ctaid | nctaid | laneid | warpid
    dimension: Optional[str] = None  # x | y | z or None

    VALID = ("tid", "ntid", "ctaid", "nctaid", "laneid", "warpid", "clock")

    def __str__(self):
        if self.dimension:
            return f"%{self.register}.{self.dimension}"
        return f"%{self.register}"


@dataclass(frozen=True)
class SymbolOperand:
    """A reference to a named symbol: a kernel parameter or a module /
    kernel scoped ``.shared``/``.const``/``.local`` variable."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class AddressOperand:
    """A memory address expression ``[base (+ offset)]``.

    ``base`` is a register or symbol; ``offset`` is a byte displacement.
    """

    base: object  # RegisterOperand | SymbolOperand
    offset: int = 0

    def __str__(self):
        if self.offset:
            return f"[{self.base}+{self.offset}]"
        return f"[{self.base}]"


@dataclass(frozen=True)
class LabelOperand:
    """A branch target label."""

    name: str

    def __str__(self):
        return self.name


@dataclass(frozen=True)
class VectorOperand:
    """A brace-enclosed operand tuple used by vector loads/stores,
    e.g. ``{%f1, %f2}`` for ``ld.global.v2.f32``."""

    elements: Tuple[RegisterOperand, ...]

    def __str__(self):
        inner = ", ".join(str(element) for element in self.elements)
        return "{" + inner + "}"


Operand = object  # Union of the dataclasses above; kept loose for speed.
