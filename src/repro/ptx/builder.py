"""Programmatic construction of PTX dialect kernels.

The :class:`KernelBuilder` offers a thin, typed layer over the raw
instruction objects so workloads can be written in Python instead of
assembly text. Both paths produce identical :class:`~repro.ptx.module.
Kernel` objects and go through the same frontend.

Example::

    b = KernelBuilder("saxpy")
    a_ptr = b.param("a", DataType.u64)
    ...
    tid = b.special(DataType.u32, "tid", "x")
"""

from __future__ import annotations

from typing import Optional

from .instructions import (
    AtomicOp,
    CompareOp,
    Label,
    MulMode,
    Opcode,
    PTXInstruction,
    VoteMode,
)
from .module import Kernel, Parameter, RegisterDeclaration, Variable
from .operands import (
    AddressOperand,
    ImmediateOperand,
    LabelOperand,
    RegisterOperand,
    SpecialRegisterOperand,
    SymbolOperand,
)
from .types import AddressSpace, DataType


class KernelBuilder:
    """Builds a :class:`Kernel` one instruction at a time.

    Register allocation is automatic: :meth:`reg` mints a fresh virtual
    register of the requested type. Emission helpers return the
    destination register so expressions compose naturally.
    """

    def __init__(self, name: str):
        self.kernel = Kernel(name)
        self._counter = 0
        self._guard: Optional[RegisterOperand] = None

    # -- declarations --------------------------------------------------------

    def param(self, name: str, dtype: DataType, count: int = 1) -> str:
        self.kernel.add_parameter(
            Parameter(name=name, dtype=dtype, count=count)
        )
        return name

    def shared(self, name: str, dtype: DataType, count: int = 1) -> str:
        self.kernel.add_variable(
            Variable(
                name=name,
                space=AddressSpace.shared,
                dtype=dtype,
                count=count,
            )
        )
        return name

    def local(self, name: str, dtype: DataType, count: int = 1) -> str:
        self.kernel.add_variable(
            Variable(
                name=name, space=AddressSpace.local, dtype=dtype, count=count
            )
        )
        return name

    def reg(self, dtype: DataType, hint: str = "t") -> RegisterOperand:
        name = f"{hint}{self._counter}"
        self._counter += 1
        self.kernel.declare_registers(
            RegisterDeclaration(prefix=name, dtype=dtype)
        )
        return RegisterOperand(name=name, dtype=dtype)

    # -- emission core -------------------------------------------------------

    def emit(self, instruction: PTXInstruction) -> PTXInstruction:
        if instruction.guard is None and self._guard is not None:
            instruction.guard = self._guard
        self.kernel.append(instruction)
        return instruction

    def label(self, name: str) -> str:
        self.kernel.append(Label(name))
        return name

    def guarded(self, predicate: Optional[RegisterOperand]):
        """Context manager applying a guard to emitted instructions."""
        builder = self

        class _Guard:
            def __enter__(self):
                self._previous = builder._guard
                builder._guard = predicate
                return builder

            def __exit__(self, *exc):
                builder._guard = self._previous
                return False

        return _Guard()

    # -- typed value helpers ---------------------------------------------

    def imm(self, value, dtype: DataType) -> ImmediateOperand:
        return ImmediateOperand(value=value, dtype=dtype)

    def _coerce(self, operand, dtype: DataType):
        if isinstance(operand, (int, float)):
            return ImmediateOperand(value=operand, dtype=dtype)
        return operand

    # -- instruction helpers -----------------------------------------------

    def special(
        self, dtype: DataType, register: str, dimension: str = "x"
    ) -> RegisterOperand:
        dst = self.reg(dtype)
        self.emit(
            PTXInstruction(
                opcode=Opcode.mov,
                dtype=dtype,
                operands=[
                    dst,
                    SpecialRegisterOperand(
                        register=register, dimension=dimension
                    ),
                ],
            )
        )
        return dst

    def mov(self, dtype: DataType, source) -> RegisterOperand:
        dst = self.reg(dtype)
        self.emit(
            PTXInstruction(
                opcode=Opcode.mov,
                dtype=dtype,
                operands=[dst, self._coerce(source, dtype)],
            )
        )
        return dst

    def address_of(self, symbol: str, dtype=DataType.u32) -> RegisterOperand:
        """``mov`` the segment-relative address of a declared variable."""
        dst = self.reg(dtype)
        self.emit(
            PTXInstruction(
                opcode=Opcode.mov,
                dtype=dtype,
                operands=[dst, SymbolOperand(symbol)],
            )
        )
        return dst

    def _binary(
        self, opcode: Opcode, dtype: DataType, a, b, mul_mode=None, **kw
    ) -> RegisterOperand:
        result_type = dtype
        if mul_mode is MulMode.wide:
            result_type = _widen(dtype)
        dst = self.reg(result_type)
        self.emit(
            PTXInstruction(
                opcode=opcode,
                dtype=dtype,
                mul_mode=mul_mode,
                operands=[
                    dst,
                    self._coerce(a, dtype),
                    self._coerce(b, dtype),
                ],
                **kw,
            )
        )
        return dst

    def add(self, dtype, a, b):
        return self._binary(Opcode.add, dtype, a, b)

    def sub(self, dtype, a, b):
        return self._binary(Opcode.sub, dtype, a, b)

    def mul(self, dtype, a, b, mode: MulMode = None):
        if mode is None and dtype.is_integer:
            mode = MulMode.lo
        return self._binary(Opcode.mul, dtype, a, b, mul_mode=mode)

    def div(self, dtype, a, b, full=True):
        return self._binary(Opcode.div, dtype, a, b, full=dtype.is_float)

    def rem(self, dtype, a, b):
        return self._binary(Opcode.rem, dtype, a, b)

    def min(self, dtype, a, b):
        return self._binary(Opcode.min, dtype, a, b)

    def max(self, dtype, a, b):
        return self._binary(Opcode.max, dtype, a, b)

    def and_(self, dtype, a, b):
        return self._binary(Opcode.and_, dtype, a, b)

    def or_(self, dtype, a, b):
        return self._binary(Opcode.or_, dtype, a, b)

    def xor(self, dtype, a, b):
        return self._binary(Opcode.xor, dtype, a, b)

    def shl(self, dtype, a, b):
        return self._binary(Opcode.shl, dtype, a, b)

    def shr(self, dtype, a, b):
        return self._binary(Opcode.shr, dtype, a, b)

    def mad(self, dtype, a, b, c, mode: MulMode = None) -> RegisterOperand:
        if mode is None and dtype.is_integer:
            mode = MulMode.lo
        result_type = _widen(dtype) if mode is MulMode.wide else dtype
        dst = self.reg(result_type)
        self.emit(
            PTXInstruction(
                opcode=Opcode.mad,
                dtype=dtype,
                mul_mode=mode,
                operands=[
                    dst,
                    self._coerce(a, dtype),
                    self._coerce(b, dtype),
                    self._coerce(c, result_type),
                ],
            )
        )
        return dst

    def fma(self, dtype, a, b, c) -> RegisterOperand:
        dst = self.reg(dtype)
        self.emit(
            PTXInstruction(
                opcode=Opcode.fma,
                dtype=dtype,
                rounding="rn",
                operands=[
                    dst,
                    self._coerce(a, dtype),
                    self._coerce(b, dtype),
                    self._coerce(c, dtype),
                ],
            )
        )
        return dst

    def _unary(self, opcode: Opcode, dtype, a, **kw) -> RegisterOperand:
        dst = self.reg(dtype)
        self.emit(
            PTXInstruction(
                opcode=opcode,
                dtype=dtype,
                operands=[dst, self._coerce(a, dtype)],
                **kw,
            )
        )
        return dst

    def neg(self, dtype, a):
        return self._unary(Opcode.neg, dtype, a)

    def abs(self, dtype, a):
        return self._unary(Opcode.abs, dtype, a)

    def not_(self, dtype, a):
        return self._unary(Opcode.not_, dtype, a)

    def sqrt(self, dtype, a):
        return self._unary(Opcode.sqrt, dtype, a, approx=True)

    def rsqrt(self, dtype, a):
        return self._unary(Opcode.rsqrt, dtype, a, approx=True)

    def rcp(self, dtype, a):
        return self._unary(Opcode.rcp, dtype, a, approx=True)

    def sin(self, a):
        return self._unary(Opcode.sin, DataType.f32, a, approx=True)

    def cos(self, a):
        return self._unary(Opcode.cos, DataType.f32, a, approx=True)

    def ex2(self, a):
        return self._unary(Opcode.ex2, DataType.f32, a, approx=True)

    def lg2(self, a):
        return self._unary(Opcode.lg2, DataType.f32, a, approx=True)

    def cvt(
        self,
        dst_type: DataType,
        src_type: DataType,
        source,
        rounding: str = None,
    ) -> RegisterOperand:
        dst = self.reg(dst_type)
        if rounding is None:
            if dst_type.is_float and src_type.is_integer:
                rounding = "rn"
            elif dst_type.is_integer and src_type.is_float:
                rounding = "rzi"
        self.emit(
            PTXInstruction(
                opcode=Opcode.cvt,
                dtype=dst_type,
                source_type=src_type,
                rounding=rounding,
                operands=[dst, self._coerce(source, src_type)],
            )
        )
        return dst

    def setp(self, compare: CompareOp, dtype, a, b) -> RegisterOperand:
        dst = self.reg(DataType.pred)
        self.emit(
            PTXInstruction(
                opcode=Opcode.setp,
                dtype=dtype,
                compare=compare,
                operands=[
                    dst,
                    self._coerce(a, dtype),
                    self._coerce(b, dtype),
                ],
            )
        )
        return dst

    def selp(self, dtype, a, b, predicate) -> RegisterOperand:
        dst = self.reg(dtype)
        self.emit(
            PTXInstruction(
                opcode=Opcode.selp,
                dtype=dtype,
                operands=[
                    dst,
                    self._coerce(a, dtype),
                    self._coerce(b, dtype),
                    predicate,
                ],
            )
        )
        return dst

    # -- memory ----------------------------------------------------------

    def _address(self, base, offset=0) -> AddressOperand:
        if isinstance(base, str):
            base = SymbolOperand(base)
        return AddressOperand(base=base, offset=offset)

    def load(
        self, space: AddressSpace, dtype: DataType, base, offset: int = 0
    ) -> RegisterOperand:
        dst = self.reg(dtype)
        self.emit(
            PTXInstruction(
                opcode=Opcode.ld,
                dtype=dtype,
                space=space,
                operands=[dst, self._address(base, offset)],
            )
        )
        return dst

    def load_param(self, dtype: DataType, name: str) -> RegisterOperand:
        return self.load(AddressSpace.param, dtype, name)

    def store(
        self,
        space: AddressSpace,
        dtype: DataType,
        base,
        value,
        offset: int = 0,
    ) -> None:
        self.emit(
            PTXInstruction(
                opcode=Opcode.st,
                dtype=dtype,
                space=space,
                operands=[
                    self._address(base, offset),
                    self._coerce(value, dtype),
                ],
            )
        )

    def atom(
        self,
        space: AddressSpace,
        op: AtomicOp,
        dtype: DataType,
        base,
        value,
        offset: int = 0,
    ) -> RegisterOperand:
        dst = self.reg(dtype)
        self.emit(
            PTXInstruction(
                opcode=Opcode.atom,
                dtype=dtype,
                space=space,
                atomic_op=op,
                operands=[
                    dst,
                    self._address(base, offset),
                    self._coerce(value, dtype),
                ],
            )
        )
        return dst

    # -- control flow ------------------------------------------------------

    def branch(self, target: str, predicate=None) -> None:
        self.emit(
            PTXInstruction(
                opcode=Opcode.bra,
                guard=predicate,
                operands=[LabelOperand(target)],
            )
        )

    def branch_if_not(self, predicate: RegisterOperand, target: str) -> None:
        negated = RegisterOperand(
            name=predicate.name, dtype=predicate.dtype, negated=True
        )
        self.branch(target, predicate=negated)

    def barrier(self) -> None:
        self.emit(
            PTXInstruction(
                opcode=Opcode.bar,
                operands=[ImmediateOperand(value=0, dtype=DataType.u32)],
            )
        )

    def vote(self, mode: VoteMode, predicate) -> RegisterOperand:
        dst = self.reg(
            DataType.b32 if mode is VoteMode.ballot else DataType.pred
        )
        self.emit(
            PTXInstruction(
                opcode=Opcode.vote,
                vote_mode=mode,
                dtype=dst.dtype,
                operands=[dst, predicate],
            )
        )
        return dst

    def exit(self) -> None:
        self.emit(PTXInstruction(opcode=Opcode.exit))


def _widen(dtype: DataType) -> DataType:
    widening = {
        DataType.u8: DataType.u16,
        DataType.s8: DataType.s16,
        DataType.u16: DataType.u32,
        DataType.s16: DataType.s32,
        DataType.u32: DataType.u64,
        DataType.s32: DataType.s64,
    }
    return widening.get(dtype, dtype)
