"""PTX module and kernel containers.

A :class:`Module` is the unit of registration with the runtime (mirrors
``cudaModuleLoad``): it owns global variable declarations and kernels.
A :class:`Kernel` is a flat statement list (labels + instructions) plus
parameter and register declarations; the frontend turns it into a CFG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import PTXValidationError
from .instructions import Label, PTXInstruction
from .types import AddressSpace, DataType


@dataclass
class Parameter:
    """A kernel ``.param`` declaration, laid out in declaration order in
    the parameter segment."""

    name: str
    dtype: DataType
    #: Array element count; 1 for scalars. Arrays are passed by value.
    count: int = 1
    #: Byte offset in the parameter segment, assigned by the kernel.
    offset: int = 0

    @property
    def size(self) -> int:
        return self.dtype.size * self.count


@dataclass
class Variable:
    """A module- or kernel-scoped state-space variable declaration,
    e.g. ``.shared .f32 tile[256];`` or ``.const .u32 lut[64];``."""

    name: str
    space: AddressSpace
    dtype: DataType
    count: int = 1
    #: Byte offset within the owning segment, assigned during layout.
    offset: int = 0
    #: Optional initializer for .const / .global variables.
    initializer: Optional[List[object]] = None
    align: int = 0

    @property
    def size(self) -> int:
        return self.dtype.size * self.count

    @property
    def alignment(self) -> int:
        return self.align if self.align else self.dtype.size


@dataclass
class RegisterDeclaration:
    """A ``.reg`` declaration, either a single name or a ranged family
    (``.reg .u32 %r<10>;`` declares r0..r9)."""

    prefix: str
    dtype: DataType
    count: Optional[int] = None  # None = single register named `prefix`

    def names(self) -> List[str]:
        if self.count is None:
            return [self.prefix]
        return [f"{self.prefix}{i}" for i in range(self.count)]


def _align_up(value: int, alignment: int) -> int:
    remainder = value % alignment
    if remainder:
        return value + alignment - remainder
    return value


class Kernel:
    """A PTX ``.entry`` function."""

    def __init__(self, name: str):
        self.name = name
        self.parameters: List[Parameter] = []
        self.registers: Dict[str, DataType] = {}
        #: Kernel-scoped .shared/.local variables.
        self.variables: List[Variable] = []
        #: Flat body: Label and PTXInstruction objects in program order.
        self.statements: List[object] = []
        self.module: Optional["Module"] = None

    # -- declaration helpers -------------------------------------------------

    def add_parameter(self, parameter: Parameter) -> Parameter:
        if any(p.name == parameter.name for p in self.parameters):
            raise PTXValidationError(
                f"duplicate parameter {parameter.name!r} in kernel {self.name}"
            )
        self.parameters.append(parameter)
        self._layout_parameters()
        return parameter

    def declare_registers(self, declaration: RegisterDeclaration) -> None:
        for name in declaration.names():
            if name in self.registers:
                raise PTXValidationError(
                    f"duplicate register %{name} in kernel {self.name}"
                )
            self.registers[name] = declaration.dtype

    def add_variable(self, variable: Variable) -> Variable:
        if any(v.name == variable.name for v in self.variables):
            raise PTXValidationError(
                f"duplicate variable {variable.name!r} in kernel {self.name}"
            )
        self.variables.append(variable)
        return variable

    # -- layout --------------------------------------------------------------

    def _layout_parameters(self) -> None:
        offset = 0
        for parameter in self.parameters:
            offset = _align_up(offset, parameter.dtype.size)
            parameter.offset = offset
            offset += parameter.size

    @property
    def param_size(self) -> int:
        if not self.parameters:
            return 0
        last = self.parameters[-1]
        return last.offset + last.size

    def layout_segment(self, space: AddressSpace) -> int:
        """Assign offsets to this kernel's variables in ``space`` (plus,
        for shared/const, the module's) and return the segment size."""
        offset = 0
        variables = []
        if self.module is not None:
            variables.extend(
                v for v in self.module.variables if v.space is space
            )
        variables.extend(v for v in self.variables if v.space is space)
        for variable in variables:
            offset = _align_up(offset, variable.alignment)
            variable.offset = offset
            offset += variable.size
        return offset

    @property
    def shared_size(self) -> int:
        return self.layout_segment(AddressSpace.shared)

    @property
    def local_size(self) -> int:
        return self.layout_segment(AddressSpace.local)

    # -- lookup --------------------------------------------------------------

    def find_parameter(self, name: str) -> Optional[Parameter]:
        for parameter in self.parameters:
            if parameter.name == name:
                return parameter
        return None

    def find_variable(self, name: str) -> Optional[Variable]:
        for variable in self.variables:
            if variable.name == name:
                return variable
        if self.module is not None:
            return self.module.find_variable(name)
        return None

    def register_type(self, name: str) -> DataType:
        try:
            return self.registers[name]
        except KeyError:
            raise PTXValidationError(
                f"undeclared register %{name} in kernel {self.name}"
            ) from None

    # -- body ----------------------------------------------------------------

    def append(self, statement) -> None:
        self.statements.append(statement)

    @property
    def instructions(self) -> List[PTXInstruction]:
        return [s for s in self.statements if isinstance(s, PTXInstruction)]

    @property
    def labels(self) -> List[Label]:
        return [s for s in self.statements if isinstance(s, Label)]

    def __str__(self):
        lines = [f".entry {self.name} ("]
        lines.append(
            ", ".join(
                f".param {p.dtype} {p.name}"
                + (f"[{p.count}]" if p.count > 1 else "")
                for p in self.parameters
            )
        )
        lines.append(")")
        lines.append("{")
        by_type: Dict[DataType, List[str]] = {}
        for name, dtype in self.registers.items():
            by_type.setdefault(dtype, []).append(name)
        for dtype, names in by_type.items():
            rendered = ", ".join(f"%{name}" for name in names)
            lines.append(f"  .reg {dtype} {rendered};")
        for variable in self.variables:
            suffix = f"[{variable.count}]" if variable.count > 1 else ""
            lines.append(
                f"  {variable.space} {variable.dtype} "
                f"{variable.name}{suffix};"
            )
        for statement in self.statements:
            if isinstance(statement, Label):
                lines.append(f"{statement}")
            else:
                lines.append(f"  {statement}")
        lines.append("}")
        return "\n".join(lines)


class Module:
    """A PTX module: version header, global declarations, kernels."""

    def __init__(self, name: str = "module", version: str = "2.3"):
        self.name = name
        self.version = version
        self.target = "sim"
        self.kernels: Dict[str, Kernel] = {}
        #: Module-scoped .global/.const/.shared variables.
        self.variables: List[Variable] = []

    def add_kernel(self, kernel: Kernel) -> Kernel:
        if kernel.name in self.kernels:
            raise PTXValidationError(
                f"duplicate kernel {kernel.name!r} in module {self.name}"
            )
        kernel.module = self
        self.kernels[kernel.name] = kernel
        return kernel

    def add_variable(self, variable: Variable) -> Variable:
        if any(v.name == variable.name for v in self.variables):
            raise PTXValidationError(
                f"duplicate module variable {variable.name!r}"
            )
        self.variables.append(variable)
        return variable

    def find_variable(self, name: str) -> Optional[Variable]:
        for variable in self.variables:
            if variable.name == name:
                return variable
        return None

    def kernel(self, name: str) -> Kernel:
        try:
            return self.kernels[name]
        except KeyError:
            raise PTXValidationError(
                f"no kernel {name!r} in module {self.name}; "
                f"have {sorted(self.kernels)}"
            ) from None

    def __str__(self):
        lines = [f".version {self.version}", f".target {self.target}", ""]
        for variable in self.variables:
            suffix = f"[{variable.count}]" if variable.count > 1 else ""
            lines.append(
                f"{variable.space} {variable.dtype} "
                f"{variable.name}{suffix};"
            )
        for kernel in self.kernels.values():
            lines.append("")
            lines.append(str(kernel))
        return "\n".join(lines)
