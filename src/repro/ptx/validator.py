"""Structural validation of parsed PTX kernels.

The validator runs at module-registration time (mirroring the eager
"parses and analyzes kernels" step of §3) and rejects kernels the
frontend could not translate: undefined labels, fall-off-the-end bodies,
operand arity mismatches, etc.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import PTXValidationError
from .instructions import Label, Opcode, PTXInstruction
from .module import Kernel, Module
from .operands import (
    AddressOperand,
    LabelOperand,
    RegisterOperand,
    SymbolOperand,
)

#: Expected operand counts (destination included) per opcode; ``None``
#: means variable arity handled specially.
_ARITY: Dict[Opcode, object] = {
    Opcode.mov: 2,
    Opcode.ld: 2,
    Opcode.st: 2,
    Opcode.cvt: 2,
    Opcode.cvta: 2,
    Opcode.add: 3,
    Opcode.sub: 3,
    Opcode.mul: 3,
    Opcode.div: 3,
    Opcode.rem: 3,
    Opcode.min: 3,
    Opcode.max: 3,
    Opcode.and_: 3,
    Opcode.or_: 3,
    Opcode.xor: 3,
    Opcode.shl: 3,
    Opcode.shr: 3,
    Opcode.abs: 2,
    Opcode.neg: 2,
    Opcode.not_: 2,
    Opcode.cnot: 2,
    Opcode.mad: 4,
    Opcode.fma: 4,
    Opcode.setp: 3,
    Opcode.set: 3,
    Opcode.selp: 4,
    Opcode.slct: 4,
    Opcode.rcp: 2,
    Opcode.sqrt: 2,
    Opcode.rsqrt: 2,
    Opcode.sin: 2,
    Opcode.cos: 2,
    Opcode.lg2: 2,
    Opcode.ex2: 2,
    Opcode.bra: 1,
    Opcode.exit: 0,
    Opcode.ret: 0,
    Opcode.bar: None,
    Opcode.membar: 0,
    Opcode.atom: None,
    Opcode.red: 2,
    Opcode.vote: 2,
}


def validate_module(module: Module) -> None:
    for kernel in module.kernels.values():
        validate_kernel(kernel)


def validate_kernel(kernel: Kernel) -> None:
    _check_labels(kernel)
    _check_termination(kernel)
    for statement in kernel.statements:
        if isinstance(statement, PTXInstruction):
            _check_instruction(kernel, statement)


def _check_labels(kernel: Kernel) -> None:
    defined = set()
    for statement in kernel.statements:
        if isinstance(statement, Label):
            if statement.name in defined:
                raise PTXValidationError(
                    f"kernel {kernel.name}: duplicate label "
                    f"{statement.name!r}"
                )
            defined.add(statement.name)
    for statement in kernel.statements:
        if (
            isinstance(statement, PTXInstruction)
            and statement.opcode is Opcode.bra
        ):
            target = statement.operands[0]
            if (
                not isinstance(target, LabelOperand)
                or target.name not in defined
            ):
                raise PTXValidationError(
                    f"kernel {kernel.name}: branch to undefined label "
                    f"{target}"
                )


def _check_termination(kernel: Kernel) -> None:
    instructions: List[PTXInstruction] = kernel.instructions
    if not instructions:
        raise PTXValidationError(f"kernel {kernel.name}: empty body")
    last = kernel.statements[-1]
    if isinstance(last, Label):
        raise PTXValidationError(
            f"kernel {kernel.name}: body ends with a label"
        )
    if not (
        last.opcode in (Opcode.exit, Opcode.ret)
        or (last.opcode is Opcode.bra and last.guard is None)
    ):
        raise PTXValidationError(
            f"kernel {kernel.name}: control falls off the end "
            f"(last instruction {last})"
        )


def _check_instruction(kernel: Kernel, inst: PTXInstruction) -> None:
    expected = _ARITY.get(inst.opcode)
    if expected is not None and len(inst.operands) != expected:
        raise PTXValidationError(
            f"kernel {kernel.name}: {inst.opcode} expects {expected} "
            f"operands, found {len(inst.operands)} in {inst}"
        )
    if inst.opcode is Opcode.atom and len(inst.operands) not in (3, 4):
        raise PTXValidationError(
            f"kernel {kernel.name}: atom expects 3 or 4 operands in {inst}"
        )
    if inst.opcode in (Opcode.ld, Opcode.st, Opcode.atom, Opcode.red):
        if inst.space is None:
            raise PTXValidationError(
                f"kernel {kernel.name}: memory instruction without "
                f"address space: {inst}"
            )
        address_index = 1 if inst.opcode in (Opcode.ld, Opcode.atom) else 0
        address = inst.operands[address_index]
        if not isinstance(address, AddressOperand):
            raise PTXValidationError(
                f"kernel {kernel.name}: operand {address_index} of {inst} "
                f"must be an address"
            )
        if isinstance(address.base, SymbolOperand):
            _check_symbol(kernel, address.base.name, inst)
    if inst.opcode is Opcode.setp:
        destination = inst.operands[0]
        if (
            not isinstance(destination, RegisterOperand)
            or not destination.dtype.is_predicate
        ):
            raise PTXValidationError(
                f"kernel {kernel.name}: setp destination must be a "
                f"predicate register: {inst}"
            )
    if inst.guard is not None and not inst.guard.dtype.is_predicate:
        raise PTXValidationError(
            f"kernel {kernel.name}: guard %{inst.guard.name} is not a "
            f"predicate"
        )
    for operand in inst.operands:
        if isinstance(operand, SymbolOperand):
            _check_symbol(kernel, operand.name, inst)


def _check_symbol(kernel: Kernel, name: str, inst: PTXInstruction) -> None:
    if (
        kernel.find_parameter(name) is None
        and kernel.find_variable(name) is None
    ):
        raise PTXValidationError(
            f"kernel {kernel.name}: reference to undeclared symbol "
            f"{name!r} in {inst}"
        )
