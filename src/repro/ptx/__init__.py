"""PTX dialect: the data-parallel virtual ISA consumed by the dynamic
compiler (the paper's §2 execution model).

Public surface:

- :func:`parse` — textual assembly to :class:`Module`
- :class:`KernelBuilder` — programmatic kernel construction
- :class:`Module`, :class:`Kernel` — containers
- type and instruction enums
"""

from .builder import KernelBuilder
from .instructions import (
    AtomicOp,
    CompareOp,
    Label,
    MulMode,
    Opcode,
    PTXInstruction,
    VoteMode,
)
from .module import Kernel, Module, Parameter, RegisterDeclaration, Variable
from .operands import (
    AddressOperand,
    ImmediateOperand,
    LabelOperand,
    RegisterOperand,
    SpecialRegisterOperand,
    SymbolOperand,
    VectorOperand,
)
from .parser import parse
from .types import AddressSpace, DataType
from .validator import validate_kernel, validate_module

__all__ = [
    "AddressOperand",
    "AddressSpace",
    "AtomicOp",
    "CompareOp",
    "DataType",
    "ImmediateOperand",
    "Kernel",
    "KernelBuilder",
    "Label",
    "LabelOperand",
    "Module",
    "MulMode",
    "Opcode",
    "PTXInstruction",
    "Parameter",
    "RegisterDeclaration",
    "RegisterOperand",
    "SpecialRegisterOperand",
    "SymbolOperand",
    "Variable",
    "VectorOperand",
    "VoteMode",
    "parse",
    "validate_kernel",
    "validate_module",
]
