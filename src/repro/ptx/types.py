"""Scalar data types of the PTX dialect.

PTX types are suffixes on opcodes (``add.f32``, ``ld.global.u64``). Each
type knows its byte width, signedness and the numpy dtype used by the
simulated machine to hold values of that type.
"""

from __future__ import annotations

import enum

import numpy as np


class DataType(enum.Enum):
    """A PTX scalar type (the ``.xNN`` opcode suffix)."""

    u8 = "u8"
    s8 = "s8"
    u16 = "u16"
    s16 = "s16"
    u32 = "u32"
    s32 = "s32"
    u64 = "u64"
    s64 = "s64"
    f32 = "f32"
    f64 = "f64"
    b8 = "b8"
    b16 = "b16"
    b32 = "b32"
    b64 = "b64"
    pred = "pred"

    def __str__(self):
        return f".{self.value}"

    @property
    def size(self) -> int:
        """Size in bytes (predicates occupy one byte in local storage)."""
        return _SIZES[self]

    @property
    def is_float(self) -> bool:
        return self in (DataType.f32, DataType.f64)

    @property
    def is_signed(self) -> bool:
        return self in (DataType.s8, DataType.s16, DataType.s32, DataType.s64)

    @property
    def is_unsigned(self) -> bool:
        return self in (
            DataType.u8,
            DataType.u16,
            DataType.u32,
            DataType.u64,
        )

    @property
    def is_integer(self) -> bool:
        return self.is_signed or self.is_unsigned or self.is_untyped_bits

    @property
    def is_untyped_bits(self) -> bool:
        return self in (DataType.b8, DataType.b16, DataType.b32, DataType.b64)

    @property
    def is_predicate(self) -> bool:
        return self is DataType.pred

    @property
    def numpy_dtype(self) -> np.dtype:
        """The numpy dtype the machine uses for registers of this type."""
        return _NUMPY[self]

    @classmethod
    def parse(cls, text: str) -> "DataType":
        """Parse a suffix with or without the leading dot."""
        return cls(text.lstrip("."))


_SIZES = {
    DataType.u8: 1,
    DataType.s8: 1,
    DataType.b8: 1,
    DataType.u16: 2,
    DataType.s16: 2,
    DataType.b16: 2,
    DataType.u32: 4,
    DataType.s32: 4,
    DataType.b32: 4,
    DataType.f32: 4,
    DataType.u64: 8,
    DataType.s64: 8,
    DataType.b64: 8,
    DataType.f64: 8,
    DataType.pred: 1,
}

_NUMPY = {
    DataType.u8: np.dtype(np.uint8),
    DataType.s8: np.dtype(np.int8),
    DataType.b8: np.dtype(np.uint8),
    DataType.u16: np.dtype(np.uint16),
    DataType.s16: np.dtype(np.int16),
    DataType.b16: np.dtype(np.uint16),
    DataType.u32: np.dtype(np.uint32),
    DataType.s32: np.dtype(np.int32),
    DataType.b32: np.dtype(np.uint32),
    DataType.f32: np.dtype(np.float32),
    DataType.u64: np.dtype(np.uint64),
    DataType.s64: np.dtype(np.int64),
    DataType.b64: np.dtype(np.uint64),
    DataType.f64: np.dtype(np.float64),
    DataType.pred: np.dtype(np.bool_),
}


class AddressSpace(enum.Enum):
    """PTX state spaces reachable by ``ld``/``st``/``atom``."""

    global_ = "global"
    shared = "shared"
    local = "local"
    param = "param"
    const = "const"
    generic = "generic"

    def __str__(self):
        return f".{self.value}"

    @classmethod
    def parse(cls, text: str) -> "AddressSpace":
        text = text.lstrip(".")
        if text == "global":
            return cls.global_
        return cls(text)
