"""Recursive-descent parser for the PTX dialect.

Grammar sketch::

    module      := header? global_decl* kernel+
    header      := ".version" FLOAT | ".target" IDENT
    global_decl := space_decl
    space_decl  := SPACE align? TYPE name ("[" INT "]")? ("=" init)? ";"
    kernel      := ".entry" IDENT "(" params ")" "{" body "}"
    params      := (".param" TYPE IDENT ("[" INT "]")?) % ","
    body        := (reg_decl | space_decl | label | instruction)*
    reg_decl    := ".reg" TYPE REG ("<" INT ">")? ";"
    instruction := guard? OPCODE modifiers operands ";"

Opcode modifier chains (``ld.global.v2.f32``) are interpreted by a small
classifier that assigns each dotted token to the address space,
comparison, rounding, vector width or type slots of the instruction.
"""

from __future__ import annotations

from typing import List, Optional

from ..errors import PTXSyntaxError
from .instructions import (
    AtomicOp,
    CompareOp,
    Label,
    MulMode,
    Opcode,
    PTXInstruction,
    VoteMode,
)
from .lexer import TokenKind, TokenStream, tokenize
from .module import (
    Kernel,
    Module,
    Parameter,
    RegisterDeclaration,
    Variable,
)
from .operands import (
    AddressOperand,
    ImmediateOperand,
    LabelOperand,
    RegisterOperand,
    SpecialRegisterOperand,
    SymbolOperand,
    VectorOperand,
)
from .types import AddressSpace, DataType

_SPACES = {"global", "shared", "local", "param", "const", "generic"}
_TYPES = {t.value for t in DataType}
_COMPARES = {c.value for c in CompareOp}
_ROUNDINGS = {
    "rn", "rz", "rm", "rp", "rni", "rzi", "rmi", "rpi", "ftz", "sat",
}
_ATOMIC_OPS = {a.value if a.value else str(a) for a in AtomicOp} | {
    "and",
    "or",
}
_VOTE_MODES = {v.value for v in VoteMode}
_OPCODE_ALIASES = {"and": Opcode.and_, "or": Opcode.or_, "not": Opcode.not_}
_SPECIAL_REGISTERS = set(SpecialRegisterOperand.VALID)
_DIMENSIONS = {"x", "y", "z"}


class Parser:
    """Parses one module from source text."""

    def __init__(self, source: str, name: str = "module"):
        self.stream = TokenStream(tokenize(source))
        self.module = Module(name=name)
        self.kernel: Optional[Kernel] = None

    # -- top level -----------------------------------------------------------

    def parse_module(self) -> Module:
        stream = self.stream
        while not stream.at(TokenKind.EOF):
            if stream.at(TokenKind.DIRECTIVE, ".version"):
                stream.advance()
                token = stream.advance()
                self.module.version = token.text
            elif stream.at(TokenKind.DIRECTIVE, ".target"):
                stream.advance()
                self.module.target = stream.expect(TokenKind.IDENT).text
            elif stream.at(TokenKind.DIRECTIVE, ".entry") or stream.at(
                TokenKind.DIRECTIVE, ".visible"
            ):
                if stream.at(TokenKind.DIRECTIVE, ".visible"):
                    stream.advance()
                self._parse_kernel()
            elif stream.at(TokenKind.DIRECTIVE):
                directive = stream.current.value
                if directive in _SPACES:
                    self.module.add_variable(self._parse_variable())
                else:
                    raise PTXSyntaxError(
                        f"unexpected directive .{directive}",
                        stream.current.line,
                        stream.current.column,
                    )
            else:
                token = stream.current
                raise PTXSyntaxError(
                    f"unexpected token {token.text!r}",
                    token.line,
                    token.column,
                )
        return self.module

    # -- declarations --------------------------------------------------------

    def _parse_variable(self) -> Variable:
        stream = self.stream
        space_token = stream.expect(TokenKind.DIRECTIVE)
        space = AddressSpace.parse(space_token.value)
        align = 0
        if stream.at(TokenKind.DIRECTIVE, ".align"):
            stream.advance()
            align = stream.expect(TokenKind.INTEGER).value
        dtype_token = stream.expect(TokenKind.DIRECTIVE)
        if dtype_token.value not in _TYPES:
            raise PTXSyntaxError(
                f"expected type, found .{dtype_token.value}",
                dtype_token.line,
                dtype_token.column,
            )
        dtype = DataType.parse(dtype_token.value)
        name = stream.expect(TokenKind.IDENT).text
        count = 1
        if stream.accept(TokenKind.PUNCT, "["):
            count = stream.expect(TokenKind.INTEGER).value
            stream.expect(TokenKind.PUNCT, "]")
        initializer = None
        if stream.accept(TokenKind.PUNCT, "="):
            initializer = self._parse_initializer()
        stream.expect(TokenKind.PUNCT, ";")
        return Variable(
            name=name,
            space=space,
            dtype=dtype,
            count=count,
            initializer=initializer,
            align=align,
        )

    def _parse_initializer(self) -> List[object]:
        stream = self.stream
        values: List[object] = []
        if stream.accept(TokenKind.PUNCT, "{"):
            while not stream.accept(TokenKind.PUNCT, "}"):
                token = stream.advance()
                if token.kind not in (TokenKind.INTEGER, TokenKind.FLOAT):
                    raise PTXSyntaxError(
                        f"bad initializer element {token.text!r}",
                        token.line,
                        token.column,
                    )
                values.append(token.value)
                stream.accept(TokenKind.PUNCT, ",")
        else:
            token = stream.advance()
            if token.kind not in (TokenKind.INTEGER, TokenKind.FLOAT):
                raise PTXSyntaxError(
                    f"bad initializer {token.text!r}",
                    token.line,
                    token.column,
                )
            values.append(token.value)
        return values

    def _parse_kernel(self) -> None:
        stream = self.stream
        stream.expect(TokenKind.DIRECTIVE, ".entry")
        name = stream.expect(TokenKind.IDENT).text
        kernel = Kernel(name)
        stream.expect(TokenKind.PUNCT, "(")
        while not stream.at(TokenKind.PUNCT, ")"):
            stream.expect(TokenKind.DIRECTIVE, ".param")
            dtype_token = stream.expect(TokenKind.DIRECTIVE)
            dtype = DataType.parse(dtype_token.value)
            param_name = stream.expect(TokenKind.IDENT).text
            count = 1
            if stream.accept(TokenKind.PUNCT, "["):
                count = stream.expect(TokenKind.INTEGER).value
                stream.expect(TokenKind.PUNCT, "]")
            kernel.add_parameter(
                Parameter(name=param_name, dtype=dtype, count=count)
            )
            if not stream.accept(TokenKind.PUNCT, ","):
                break
        stream.expect(TokenKind.PUNCT, ")")
        stream.expect(TokenKind.PUNCT, "{")
        self.kernel = kernel
        while not stream.at(TokenKind.PUNCT, "}"):
            self._parse_body_statement()
        stream.expect(TokenKind.PUNCT, "}")
        self.module.add_kernel(kernel)
        self.kernel = None

    def _parse_body_statement(self) -> None:
        stream = self.stream
        if stream.at(TokenKind.DIRECTIVE, ".reg"):
            self._parse_register_declaration()
        elif (
            stream.at(TokenKind.DIRECTIVE)
            and stream.current.value in _SPACES
        ):
            self.kernel.add_variable(self._parse_variable())
        elif stream.at(TokenKind.IDENT) and stream.peek().text == ":":
            token = stream.advance()
            stream.advance()  # ':'
            self.kernel.append(Label(token.text, line=token.line))
        else:
            self.kernel.append(self._parse_instruction())

    def _parse_register_declaration(self) -> None:
        stream = self.stream
        stream.expect(TokenKind.DIRECTIVE, ".reg")
        dtype_token = stream.expect(TokenKind.DIRECTIVE)
        dtype = DataType.parse(dtype_token.value)
        while True:
            register = stream.expect(TokenKind.REGISTER)
            count = None
            if stream.accept(TokenKind.PUNCT, "<"):
                count = stream.expect(TokenKind.INTEGER).value
                stream.expect(TokenKind.PUNCT, ">")
            self.kernel.declare_registers(
                RegisterDeclaration(
                    prefix=register.value, dtype=dtype, count=count
                )
            )
            if not stream.accept(TokenKind.PUNCT, ","):
                break
        stream.expect(TokenKind.PUNCT, ";")

    # -- instructions ----------------------------------------------------

    def _parse_instruction(self) -> PTXInstruction:
        stream = self.stream
        guard = None
        if stream.accept(TokenKind.PUNCT, "@"):
            negated = bool(stream.accept(TokenKind.PUNCT, "!"))
            register = stream.expect(TokenKind.REGISTER)
            guard = RegisterOperand(
                name=register.value,
                dtype=self.kernel.register_type(register.value),
                negated=negated,
            )
        opcode_token = stream.expect(TokenKind.IDENT)
        opcode = self._lookup_opcode(opcode_token)
        instruction = PTXInstruction(
            opcode=opcode, guard=guard, line=opcode_token.line
        )
        self._parse_modifiers(instruction)
        if not stream.at(TokenKind.PUNCT, ";"):
            while True:
                instruction.operands.append(self._parse_operand(instruction))
                if not stream.accept(TokenKind.PUNCT, ","):
                    break
        stream.expect(TokenKind.PUNCT, ";")
        self._infer_operand_dtypes(instruction)
        return instruction

    def _lookup_opcode(self, token) -> Opcode:
        if token.text in _OPCODE_ALIASES:
            return _OPCODE_ALIASES[token.text]
        try:
            return Opcode(token.text)
        except ValueError:
            raise PTXSyntaxError(
                f"unknown opcode {token.text!r}", token.line, token.column
            ) from None

    def _parse_modifiers(self, instruction: PTXInstruction) -> None:
        stream = self.stream
        modifiers: List[str] = []
        while stream.at(TokenKind.DIRECTIVE):
            modifiers.append(stream.advance().value)
        opcode = instruction.opcode
        for modifier in modifiers:
            if modifier == "sync" and opcode in (Opcode.bar, Opcode.vote):
                continue
            if modifier in ("gl", "cta", "sys") and opcode is Opcode.membar:
                continue
            if modifier in _SPACES and instruction.space is None:
                instruction.space = AddressSpace.parse(modifier)
            elif (
                opcode in (Opcode.atom, Opcode.red)
                and instruction.atomic_op is None
                and modifier in _ATOMIC_OPS
            ):
                instruction.atomic_op = (
                    AtomicOp.and_
                    if modifier == "and"
                    else AtomicOp.or_
                    if modifier == "or"
                    else AtomicOp(modifier)
                )
            elif (
                opcode is Opcode.vote
                and instruction.vote_mode is None
                and modifier in _VOTE_MODES
            ):
                instruction.vote_mode = VoteMode(modifier)
            elif (
                opcode in (Opcode.setp, Opcode.set, Opcode.slct)
                and instruction.compare is None
                and modifier in _COMPARES
            ):
                instruction.compare = CompareOp(modifier)
            elif (
                opcode in (Opcode.mul, Opcode.mad)
                and instruction.mul_mode is None
                and modifier in ("lo", "hi", "wide")
            ):
                instruction.mul_mode = MulMode(modifier)
            elif modifier in _ROUNDINGS:
                instruction.rounding = modifier
            elif modifier == "approx":
                instruction.approx = True
            elif modifier == "full":
                instruction.full = True
            elif modifier == "uni" and opcode is Opcode.bra:
                continue
            elif modifier == "to" and opcode is Opcode.cvta:
                continue
            elif len(modifier) >= 2 and modifier[0] == "v" and (
                modifier[1:].isdigit()
            ):
                instruction.vector_width = int(modifier[1:])
            elif modifier in _TYPES:
                if instruction.dtype is None:
                    instruction.dtype = DataType.parse(modifier)
                elif instruction.source_type is None:
                    instruction.source_type = DataType.parse(modifier)
                else:
                    raise PTXSyntaxError(
                        f"too many type modifiers on {opcode}",
                        instruction.line,
                    )
            else:
                raise PTXSyntaxError(
                    f"unsupported modifier .{modifier} on {opcode}",
                    instruction.line,
                )

    # -- operands ----------------------------------------------------------

    def _parse_operand(self, instruction: PTXInstruction):
        stream = self.stream
        token = stream.current
        if token.kind is TokenKind.PUNCT and token.text == "[":
            return self._parse_address()
        if token.kind is TokenKind.PUNCT and token.text == "{":
            return self._parse_vector_operand()
        if token.kind is TokenKind.PUNCT and token.text == "!":
            stream.advance()
            register = stream.expect(TokenKind.REGISTER)
            return RegisterOperand(
                name=register.value,
                dtype=self.kernel.register_type(register.value),
                negated=True,
            )
        if token.kind is TokenKind.REGISTER:
            return self._parse_register_like()
        if token.kind is TokenKind.INTEGER:
            stream.advance()
            return ImmediateOperand(value=token.value, dtype=None)
        if token.kind is TokenKind.FLOAT:
            stream.advance()
            return ImmediateOperand(value=token.value, dtype=None)
        if token.kind is TokenKind.IDENT:
            stream.advance()
            if instruction.opcode is Opcode.bra:
                return LabelOperand(token.text)
            return SymbolOperand(token.text)
        raise PTXSyntaxError(
            f"unexpected operand {token.text!r}", token.line, token.column
        )

    def _parse_register_like(self):
        stream = self.stream
        token = stream.expect(TokenKind.REGISTER)
        name = token.value
        if name in _SPECIAL_REGISTERS:
            dimension = None
            if (
                stream.at(TokenKind.DIRECTIVE)
                and stream.current.value in _DIMENSIONS
            ):
                dimension = stream.advance().value
            return SpecialRegisterOperand(register=name, dimension=dimension)
        return RegisterOperand(
            name=name, dtype=self.kernel.register_type(name)
        )

    def _parse_vector_operand(self) -> VectorOperand:
        stream = self.stream
        stream.expect(TokenKind.PUNCT, "{")
        elements = []
        while not stream.at(TokenKind.PUNCT, "}"):
            register = stream.expect(TokenKind.REGISTER)
            elements.append(
                RegisterOperand(
                    name=register.value,
                    dtype=self.kernel.register_type(register.value),
                )
            )
            if not stream.accept(TokenKind.PUNCT, ","):
                break
        stream.expect(TokenKind.PUNCT, "}")
        return VectorOperand(elements=tuple(elements))

    def _parse_address(self) -> AddressOperand:
        stream = self.stream
        stream.expect(TokenKind.PUNCT, "[")
        token = stream.current
        if token.kind is TokenKind.REGISTER:
            base = self._parse_register_like()
        elif token.kind is TokenKind.IDENT:
            stream.advance()
            base = SymbolOperand(token.text)
        else:
            raise PTXSyntaxError(
                f"bad address base {token.text!r}", token.line, token.column
            )
        offset = 0
        if stream.accept(TokenKind.PUNCT, "+"):
            offset = stream.expect(TokenKind.INTEGER).value
        elif stream.accept(TokenKind.PUNCT, "-"):
            offset = -stream.expect(TokenKind.INTEGER).value
        elif stream.at(TokenKind.INTEGER):
            # The lexer may fold a sign into the integer: [%rd1+4].
            offset = stream.advance().value
        stream.expect(TokenKind.PUNCT, "]")
        return AddressOperand(base=base, offset=offset)

    def _infer_operand_dtypes(self, instruction: PTXInstruction) -> None:
        """Stamp untyped immediates with the instruction's type."""
        dtype = instruction.dtype
        if dtype is None:
            return
        operands = instruction.operands
        for index, operand in enumerate(operands):
            if isinstance(operand, ImmediateOperand) and operand.dtype is None:
                # selp/slct condition operands keep their own types; the
                # final operand of selp is a predicate register anyway.
                operands[index] = ImmediateOperand(
                    value=operand.value, dtype=dtype
                )


def parse(source: str, name: str = "module") -> Module:
    """Parse PTX dialect source text into a :class:`Module`."""
    return Parser(source, name=name).parse_module()
