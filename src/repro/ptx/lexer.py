"""Tokenizer for the PTX dialect.

Produces a flat token stream. Dotted opcode modifiers (``add.f32``) are
tokenized as an identifier followed by directive tokens so the parser can
interpret modifier chains uniformly.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import PTXSyntaxError


class TokenKind(enum.Enum):
    DIRECTIVE = "directive"  # .foo
    IDENT = "ident"
    REGISTER = "register"  # %foo
    INTEGER = "integer"
    FLOAT = "float"
    PUNCT = "punct"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    value: object
    line: int
    column: int

    def __repr__(self):
        return f"Token({self.kind.value}, {self.text!r}, line={self.line})"


_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*|/\*.*?\*/)
  | (?P<hexfloat>0[fF][0-9a-fA-F]{8}|0[dD][0-9a-fA-F]{16})
  | (?P<float>[-+]?(\d+\.\d*|\.\d+)([eE][-+]?\d+)?[fF]?
              |[-+]?\d+[eE][-+]?\d+)
  | (?P<hex>0[xX][0-9a-fA-F]+[Uu]?)
  | (?P<int>[-+]?\d+[Uu]?)
  | (?P<directive>\.[A-Za-z_][A-Za-z0-9_]*)
  | (?P<register>%[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<ident>[A-Za-z_$][A-Za-z0-9_$]*)
  | (?P<punct>[{}()\[\],;:@!<>=+\-*])
    """,
    re.VERBOSE | re.DOTALL,
)


def _decode_hex_float(text: str) -> float:
    import struct

    if text[1] in "fF":
        (value,) = struct.unpack("<f", bytes.fromhex(text[2:])[::-1])
    else:
        (value,) = struct.unpack("<d", bytes.fromhex(text[2:])[::-1])
    return float(value)


def tokenize(source: str) -> List[Token]:
    """Tokenize PTX dialect source, raising :class:`PTXSyntaxError`
    with line/column information on unexpected characters."""
    tokens: List[Token] = []
    line = 1
    line_start = 0
    position = 0
    length = len(source)
    while position < length:
        match = _TOKEN_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise PTXSyntaxError(
                f"unexpected character {source[position]!r}", line, column
            )
        kind = match.lastgroup
        text = match.group()
        column = position - line_start + 1
        if kind in ("ws", "comment"):
            newlines = text.count("\n")
            if newlines:
                line += newlines
                line_start = position + text.rfind("\n") + 1
        elif kind == "directive":
            tokens.append(
                Token(TokenKind.DIRECTIVE, text, text[1:], line, column)
            )
        elif kind == "register":
            tokens.append(
                Token(TokenKind.REGISTER, text, text[1:], line, column)
            )
        elif kind == "ident":
            tokens.append(Token(TokenKind.IDENT, text, text, line, column))
        elif kind == "hexfloat":
            tokens.append(
                Token(
                    TokenKind.FLOAT,
                    text,
                    _decode_hex_float(text),
                    line,
                    column,
                )
            )
        elif kind == "float":
            tokens.append(
                Token(
                    TokenKind.FLOAT,
                    text,
                    float(text.rstrip("fF")),
                    line,
                    column,
                )
            )
        elif kind == "hex":
            tokens.append(
                Token(
                    TokenKind.INTEGER,
                    text,
                    int(text.rstrip("uU"), 16),
                    line,
                    column,
                )
            )
        elif kind == "int":
            tokens.append(
                Token(
                    TokenKind.INTEGER,
                    text,
                    int(text.rstrip("uU")),
                    line,
                    column,
                )
            )
        elif kind == "punct":
            tokens.append(Token(TokenKind.PUNCT, text, text, line, column))
        position = match.end()
    tokens.append(Token(TokenKind.EOF, "", None, line, 0))
    return tokens


class TokenStream:
    """Cursor over a token list with one-token lookahead helpers."""

    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def peek(self, offset: int = 1) -> Token:
        index = min(self._index + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def advance(self) -> Token:
        token = self.current
        if token.kind is not TokenKind.EOF:
            self._index += 1
        return token

    def at(self, kind: TokenKind, text: str = None) -> bool:
        token = self.current
        if token.kind is not kind:
            return False
        return text is None or token.text == text

    def accept(self, kind: TokenKind, text: str = None):
        if self.at(kind, text):
            return self.advance()
        return None

    def expect(self, kind: TokenKind, text: str = None) -> Token:
        if not self.at(kind, text):
            token = self.current
            expected = text if text is not None else kind.value
            raise PTXSyntaxError(
                f"expected {expected!r}, found {token.text!r}",
                token.line,
                token.column,
            )
        return self.advance()

    def __iter__(self) -> Iterator[Token]:
        return iter(self._tokens[self._index :])
