"""Instruction set of the PTX dialect.

The dialect covers the subset of PTX 1.3/2.x that the CUDA SDK 2.2 /
Parboil style workloads need: integer and floating-point arithmetic,
loads/stores to explicit state spaces, comparison/select/predication,
branches, CTA-wide barriers, warp votes, atomics and the transcendental
instructions that the paper vectorizes via built-in vector intrinsics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional

from .operands import RegisterOperand
from .types import AddressSpace, DataType


class Opcode(enum.Enum):
    """PTX dialect opcodes."""

    # Data movement
    mov = "mov"
    ld = "ld"
    st = "st"
    cvt = "cvt"
    cvta = "cvta"

    # Integer / float arithmetic
    add = "add"
    sub = "sub"
    mul = "mul"
    mad = "mad"
    fma = "fma"
    div = "div"
    rem = "rem"
    abs = "abs"
    neg = "neg"
    min = "min"
    max = "max"

    # Bitwise / shift
    and_ = "and"
    or_ = "or"
    xor = "xor"
    not_ = "not"
    cnot = "cnot"
    shl = "shl"
    shr = "shr"

    # Comparison / select
    setp = "setp"
    set = "set"
    selp = "selp"
    slct = "slct"

    # Transcendentals (".approx" forms in real PTX)
    rcp = "rcp"
    sqrt = "sqrt"
    rsqrt = "rsqrt"
    sin = "sin"
    cos = "cos"
    lg2 = "lg2"
    ex2 = "ex2"

    # Control flow
    bra = "bra"
    exit = "exit"
    ret = "ret"

    # Synchronization and communication
    bar = "bar"
    membar = "membar"
    atom = "atom"
    red = "red"
    vote = "vote"

    def __str__(self):
        return self.value


class CompareOp(enum.Enum):
    """Comparison operators for ``setp``/``set``."""

    eq = "eq"
    ne = "ne"
    lt = "lt"
    le = "le"
    gt = "gt"
    ge = "ge"
    # Unordered float comparisons
    ltu = "ltu"
    leu = "leu"
    gtu = "gtu"
    geu = "geu"
    num = "num"
    nan = "nan"

    def __str__(self):
        return self.value


class MulMode(enum.Enum):
    """Result-half selector for integer ``mul``/``mad``."""

    lo = "lo"
    hi = "hi"
    wide = "wide"

    def __str__(self):
        return self.value


class VoteMode(enum.Enum):
    """Warp-wide vote reductions."""

    all = "all"
    any = "any"
    uni = "uni"
    ballot = "ballot"

    def __str__(self):
        return self.value


class AtomicOp(enum.Enum):
    """Atomic read-modify-write operators for ``atom``/``red``."""

    add = "add"
    min = "min"
    max = "max"
    exch = "exch"
    cas = "cas"
    and_ = "and"
    or_ = "or"
    xor = "xor"
    inc = "inc"
    dec = "dec"

    def __str__(self):
        if self is AtomicOp.and_:
            return "and"
        if self is AtomicOp.or_:
            return "or"
        return self.value


#: Opcodes that terminate a basic block.
TERMINATORS = frozenset({Opcode.bra, Opcode.exit, Opcode.ret})

#: Opcodes that force a block split because every thread of a CTA must
#: reach them together (the frontend splits blocks at barriers; §5.1).
BARRIERS = frozenset({Opcode.bar})


@dataclass
class PTXInstruction:
    """One PTX dialect instruction.

    Attributes
    ----------
    opcode:
        The operation.
    dtype:
        Primary type suffix (``add.f32`` -> ``f32``).
    operands:
        Destination-first operand list, matching PTX assembly order.
    guard:
        Optional predicate guard (``@%p1`` / ``@!%p1``).
    space:
        Address space for memory operations.
    compare:
        Comparison operator for ``setp``/``set``.
    mul_mode:
        ``.lo``/``.hi``/``.wide`` for integer multiply forms.
    atomic_op:
        The RMW operator for ``atom``/``red``.
    vote_mode:
        Vote reduction for ``vote``.
    source_type:
        Secondary type suffix, e.g. the source type of ``cvt.u64.u32``
        or the operand type of ``set.gt.u32.f32``.
    rounding:
        Rounding modifier (``rn``, ``rz``, ``rm``, ``rp``, ``rni`` ...)
        for ``cvt`` and float arithmetic; purely informational for most
        integer ops.
    approx / full:
        Precision modifiers on transcendentals and ``div``.
    vector_width:
        Element count for vector memory ops (``ld.global.v2.f32``).
    line:
        Source line for diagnostics.
    """

    opcode: Opcode
    dtype: Optional[DataType] = None
    operands: List[object] = field(default_factory=list)
    guard: Optional[RegisterOperand] = None
    space: Optional[AddressSpace] = None
    compare: Optional[CompareOp] = None
    mul_mode: Optional[MulMode] = None
    atomic_op: Optional[AtomicOp] = None
    vote_mode: Optional[VoteMode] = None
    source_type: Optional[DataType] = None
    rounding: Optional[str] = None
    approx: bool = False
    full: bool = False
    vector_width: int = 1
    line: Optional[int] = None

    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATORS

    @property
    def is_barrier(self) -> bool:
        return self.opcode in BARRIERS

    def modifier_string(self) -> str:
        """All dot-modifiers between the opcode and the operands."""
        parts = []
        if self.atomic_op is not None:
            if self.space is not None:
                parts.append(str(self.space))
            parts.append(f".{self.atomic_op}")
        else:
            if self.vote_mode is not None:
                parts.append(f".{self.vote_mode}")
            if self.space is not None:
                parts.append(str(self.space))
        if self.compare is not None:
            parts.append(f".{self.compare}")
        if self.mul_mode is not None:
            parts.append(f".{self.mul_mode}")
        if self.rounding is not None:
            parts.append(f".{self.rounding}")
        if self.approx:
            parts.append(".approx")
        if self.full:
            parts.append(".full")
        if self.vector_width > 1:
            parts.append(f".v{self.vector_width}")
        if self.dtype is not None:
            parts.append(str(self.dtype))
        if self.source_type is not None:
            parts.append(str(self.source_type))
        return "".join(parts)

    def __str__(self):
        guard = ""
        if self.guard is not None:
            bang = "!" if self.guard.negated else ""
            guard = f"@{bang}%{self.guard.name} "
        ops = ", ".join(str(op) for op in self.operands)
        mods = self.modifier_string()
        if self.opcode is Opcode.bar:
            return f"{guard}bar.sync {ops};" if ops else f"{guard}bar.sync;"
        text = f"{guard}{self.opcode}{mods}"
        if ops:
            text += f" {ops}"
        return text + ";"


@dataclass
class Label:
    """A branch target; appears interleaved with instructions in a
    kernel body."""

    name: str
    line: Optional[int] = None

    def __str__(self):
        return f"{self.name}:"
