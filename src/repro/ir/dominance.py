"""Dominator analysis (Cooper-Harvey-Kennedy iterative algorithm).

Used by the verifier, by block merging, and by the thread-invariant
analysis to reason about expressions valid at a use point.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from .cfg import ControlFlowGraph
from .function import IRFunction


class DominatorTree:
    """Immediate-dominator map for the blocks reachable from entry."""

    def __init__(self, function: IRFunction):
        self.function = function
        cfg = ControlFlowGraph(function)
        self.cfg = cfg
        order = cfg.reverse_postorder()
        reachable = cfg.reachable()
        order = [label for label in order if label in reachable]
        index = {label: position for position, label in enumerate(order)}
        entry = function.entry_label
        idom: Dict[str, Optional[str]] = {entry: entry}

        def intersect(a: str, b: str) -> str:
            while a != b:
                while index[a] > index[b]:
                    a = idom[a]
                while index[b] > index[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for label in order:
                if label == entry:
                    continue
                candidates = [
                    p
                    for p in cfg.predecessors.get(label, [])
                    if p in idom and p in index
                ]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = intersect(new_idom, other)
                if idom.get(label) != new_idom:
                    idom[label] = new_idom
                    changed = True
        self.idom = idom
        self._order = order

    def immediate_dominator(self, label: str) -> Optional[str]:
        if label == self.function.entry_label:
            return None
        return self.idom.get(label)

    def dominates(self, a: str, b: str) -> bool:
        """True if block ``a`` dominates block ``b``."""
        if b not in self.idom:
            return False
        current = b
        entry = self.function.entry_label
        while True:
            if current == a:
                return True
            if current == entry:
                return a == entry
            current = self.idom[current]

    def dominators_of(self, label: str) -> List[str]:
        result = []
        current = label
        entry = self.function.entry_label
        while label in self.idom:
            result.append(current)
            if current == entry:
                break
            current = self.idom[current]
        return result

    def dominance_frontier(self) -> Dict[str, Set[str]]:
        """Classic dominance frontiers (per Cytron et al.)."""
        frontier: Dict[str, Set[str]] = {
            label: set() for label in self._order
        }
        for label in self._order:
            predecessors = self.cfg.predecessors.get(label, [])
            if len(predecessors) < 2:
                continue
            for predecessor in predecessors:
                if predecessor not in self.idom:
                    continue
                runner = predecessor
                while runner != self.idom[label]:
                    frontier[runner].add(label)
                    runner = self.idom.get(runner)
                    if runner is None:
                        break
        return frontier
