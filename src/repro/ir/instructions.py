"""Instruction classes of the mid-level IR.

Every instruction exposes:

- ``defined()`` — the register it writes (or ``None``),
- ``uses()`` — the values it reads,
- ``replace_uses(mapping)`` — substitute used values (for CSE etc.).

Terminators additionally expose ``successors()``.

The set mirrors the LLVM subset the paper's transformation manipulates:
element-wise arithmetic, comparisons, selects, conversions, intrinsic
calls (transcendentals with vector built-ins), memory operations that
are *not* vectorizable and stay per-lane, ``insertelement`` /
``extractelement`` for packing at scalar/vector boundaries, warp-wide
reductions for branch-condition sums, and context-object accesses
through which threads observe their identity (§4, Fig. 3/5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ptx.types import AddressSpace, DataType
from .values import Constant, VirtualRegister

# ---------------------------------------------------------------------------
# Resume statuses (§4.1: "three classes of kernel yields")
# ---------------------------------------------------------------------------


class ResumeStatus:
    """Why a warp returned to the execution manager."""

    RUNNING = 0
    THREAD_BRANCH = 1  # divergent (or any) branch yield
    THREAD_BARRIER = 2  # CTA-wide barrier
    THREAD_EXIT = 3  # thread termination

    NAMES = {
        0: "running",
        1: "branch",
        2: "barrier",
        3: "exit",
    }


# ---------------------------------------------------------------------------
# Base
# ---------------------------------------------------------------------------


class IRInstruction:
    """Base class. Subclasses are small mutable records."""

    __slots__ = ()

    def defined(self) -> Optional[VirtualRegister]:
        return getattr(self, "dst", None)

    def uses(self) -> List[object]:
        return []

    def replace_uses(self, mapping: Dict[object, object]) -> None:
        """Substitute used values according to ``mapping``."""

    @property
    def is_terminator(self) -> bool:
        return False


def _subst(value, mapping):
    return mapping.get(value, value)


# ---------------------------------------------------------------------------
# Arithmetic / logic
# ---------------------------------------------------------------------------


@dataclass
class BinaryOp(IRInstruction):
    """Element-wise binary operator; vectorizable."""

    op: str  # add sub mul mulhi div rem min max and or xor shl lshr ashr
    dtype: DataType
    dst: VirtualRegister
    a: object
    b: object

    OPS = (
        "add",
        "sub",
        "mul",
        "mulhi",
        "div",
        "rem",
        "min",
        "max",
        "and",
        "or",
        "xor",
        "shl",
        "lshr",
        "ashr",
    )

    def uses(self):
        return [self.a, self.b]

    def replace_uses(self, mapping):
        self.a = _subst(self.a, mapping)
        self.b = _subst(self.b, mapping)

    def __str__(self):
        return f"{self.dst} = {self.op}.{self.dtype.value} {self.a}, {self.b}"


@dataclass
class UnaryOp(IRInstruction):
    """Element-wise unary operator; vectorizable."""

    op: str  # neg abs not cnot
    dtype: DataType
    dst: VirtualRegister
    a: object

    def uses(self):
        return [self.a]

    def replace_uses(self, mapping):
        self.a = _subst(self.a, mapping)

    def __str__(self):
        return f"{self.dst} = {self.op}.{self.dtype.value} {self.a}"


@dataclass
class FusedMultiplyAdd(IRInstruction):
    """a * b + c, element-wise; vectorizable."""

    dtype: DataType
    dst: VirtualRegister
    a: object
    b: object
    c: object

    def uses(self):
        return [self.a, self.b, self.c]

    def replace_uses(self, mapping):
        self.a = _subst(self.a, mapping)
        self.b = _subst(self.b, mapping)
        self.c = _subst(self.c, mapping)

    def __str__(self):
        return (
            f"{self.dst} = fma.{self.dtype.value} "
            f"{self.a}, {self.b}, {self.c}"
        )


@dataclass
class Compare(IRInstruction):
    """Element-wise comparison producing a predicate; vectorizable."""

    op: str  # eq ne lt le gt ge (+ unordered variants)
    dtype: DataType  # operand type
    dst: VirtualRegister  # predicate register
    a: object
    b: object

    def uses(self):
        return [self.a, self.b]

    def replace_uses(self, mapping):
        self.a = _subst(self.a, mapping)
        self.b = _subst(self.b, mapping)

    def __str__(self):
        return (
            f"{self.dst} = cmp.{self.op}.{self.dtype.value} "
            f"{self.a}, {self.b}"
        )


@dataclass
class Select(IRInstruction):
    """Conditional per-lane select — the vector unit's only masking
    primitive (§2: "conditional select operators may choose between two
    values in each lane")."""

    dtype: DataType
    dst: VirtualRegister
    a: object
    b: object
    predicate: object

    def uses(self):
        return [self.a, self.b, self.predicate]

    def replace_uses(self, mapping):
        self.a = _subst(self.a, mapping)
        self.b = _subst(self.b, mapping)
        self.predicate = _subst(self.predicate, mapping)

    def __str__(self):
        return (
            f"{self.dst} = select.{self.dtype.value} {self.predicate} ? "
            f"{self.a} : {self.b}"
        )


@dataclass
class Convert(IRInstruction):
    """Type conversion; vectorizable."""

    dst_type: DataType
    src_type: DataType
    dst: VirtualRegister
    src: object
    rounding: Optional[str] = None

    def uses(self):
        return [self.src]

    def replace_uses(self, mapping):
        self.src = _subst(self.src, mapping)

    def __str__(self):
        mode = f".{self.rounding}" if self.rounding else ""
        return (
            f"{self.dst} = convert.{self.dst_type.value}."
            f"{self.src_type.value}{mode} {self.src}"
        )


@dataclass
class Intrinsic(IRInstruction):
    """Call to a built-in math function with vector support in both the
    IR and the machine (§4: "calls to transcendental functions for which
    both LLVM and the compilation target ... have built-in support")."""

    name: str  # sqrt rsqrt rcp sin cos ex2 lg2
    dtype: DataType
    dst: VirtualRegister
    args: List[object] = field(default_factory=list)

    NAMES = ("sqrt", "rsqrt", "rcp", "sin", "cos", "ex2", "lg2")

    def uses(self):
        return list(self.args)

    def replace_uses(self, mapping):
        self.args = [_subst(a, mapping) for a in self.args]

    def __str__(self):
        args = ", ".join(str(a) for a in self.args)
        return f"{self.dst} = call.{self.name}.{self.dtype.value}({args})"


# ---------------------------------------------------------------------------
# Memory (non-vectorizable: replicated per lane — §4 "Non-vectorizable
# Instructions")
# ---------------------------------------------------------------------------


@dataclass
class Load(IRInstruction):
    """Scalar load. ``lane`` selects whose thread-private segments
    (local) / CTA segments (shared) the address resolves against."""

    dtype: DataType
    dst: VirtualRegister
    space: AddressSpace
    base: object  # register or Constant address / segment offset
    offset: int = 0
    lane: int = 0
    volatile: bool = False

    def uses(self):
        return [self.base]

    def replace_uses(self, mapping):
        self.base = _subst(self.base, mapping)

    def __str__(self):
        return (
            f"{self.dst} = load.{self.space.value}.{self.dtype.value} "
            f"[{self.base}+{self.offset}] lane={self.lane}"
        )


@dataclass
class Store(IRInstruction):
    """Scalar store; see :class:`Load` for lane semantics."""

    dtype: DataType
    space: AddressSpace
    base: object
    value: object
    offset: int = 0
    lane: int = 0
    volatile: bool = False

    def uses(self):
        return [self.base, self.value]

    def replace_uses(self, mapping):
        self.base = _subst(self.base, mapping)
        self.value = _subst(self.value, mapping)

    def __str__(self):
        return (
            f"store.{self.space.value}.{self.dtype.value} "
            f"[{self.base}+{self.offset}], {self.value} lane={self.lane}"
        )


@dataclass
class VectorLoad(IRInstruction):
    """Contiguous vector load: lane i reads ``base + offset + i*size``.

    Emitted only when affine analysis proves the per-lane addresses
    contiguous (the paper's §4 future-work optimization: "arbitrary
    loads may be replaced with vector loads"). ``base`` is the lane-0
    address; the machine services all lanes with one access.
    """

    dtype: DataType
    dst: VirtualRegister  # vector register
    space: AddressSpace
    base: object  # scalar lane-0 address value
    offset: int = 0
    lane: int = 0  # segment resolution lane (static warps: lane 0)

    def uses(self):
        return [self.base]

    def replace_uses(self, mapping):
        self.base = _subst(self.base, mapping)

    def __str__(self):
        return (
            f"{self.dst} = vload.{self.space.value}.{self.dtype.value} "
            f"[{self.base}+{self.offset}]"
        )


@dataclass
class VectorStore(IRInstruction):
    """Contiguous vector store; see :class:`VectorLoad`."""

    dtype: DataType
    space: AddressSpace
    base: object
    value: object  # vector register (or scalar broadcast)
    offset: int = 0
    lane: int = 0

    def uses(self):
        return [self.base, self.value]

    def replace_uses(self, mapping):
        self.base = _subst(self.base, mapping)
        self.value = _subst(self.value, mapping)

    def __str__(self):
        return (
            f"vstore.{self.space.value}.{self.dtype.value} "
            f"[{self.base}+{self.offset}], {self.value}"
        )


@dataclass
class AtomicRMW(IRInstruction):
    """Atomic read-modify-write; serialized per lane by the machine."""

    op: str  # add min max exch and or xor cas inc dec
    dtype: DataType
    dst: Optional[VirtualRegister]
    space: AddressSpace
    base: object
    value: object
    compare: object = None  # for cas
    offset: int = 0
    lane: int = 0

    def uses(self):
        used = [self.base, self.value]
        if self.compare is not None:
            used.append(self.compare)
        return used

    def replace_uses(self, mapping):
        self.base = _subst(self.base, mapping)
        self.value = _subst(self.value, mapping)
        if self.compare is not None:
            self.compare = _subst(self.compare, mapping)

    def __str__(self):
        dst = f"{self.dst} = " if self.dst is not None else ""
        return (
            f"{dst}atomic.{self.op}.{self.space.value}.{self.dtype.value} "
            f"[{self.base}+{self.offset}], {self.value} lane={self.lane}"
        )


# ---------------------------------------------------------------------------
# Thread context access (§4: "Thread-local and CTA-local data members are
# accessed via a context object identifying the executing thread")
# ---------------------------------------------------------------------------

#: Context fields a kernel may read.
CONTEXT_FIELDS = (
    "tid.x",
    "tid.y",
    "tid.z",
    "ntid.x",
    "ntid.y",
    "ntid.z",
    "ctaid.x",
    "ctaid.y",
    "ctaid.z",
    "nctaid.x",
    "nctaid.y",
    "nctaid.z",
    "laneid",
    "warpid",
    "clock",
)


@dataclass
class ContextRead(IRInstruction):
    """Read a field of lane ``lane``'s thread context object."""

    field_name: str
    dtype: DataType
    dst: VirtualRegister
    lane: int = 0

    def __str__(self):
        return (
            f"{self.dst} = ctx.{self.field_name} lane={self.lane}"
        )


@dataclass
class ContextWrite(IRInstruction):
    """Write a field of lane ``lane``'s context (resume point, §4.1)."""

    field_name: str  # resume_point
    value: object
    lane: int = 0

    def uses(self):
        return [self.value]

    def replace_uses(self, mapping):
        self.value = _subst(self.value, mapping)

    def __str__(self):
        return f"ctx.{self.field_name} lane={self.lane} = {self.value}"


# ---------------------------------------------------------------------------
# Vector packing (Fig. 3: insertelement / extractelement)
# ---------------------------------------------------------------------------


@dataclass
class InsertElement(IRInstruction):
    """dst = vector ``src`` with lane ``index`` replaced by ``scalar``.
    ``src`` may be ``None`` for a fresh (undef) vector."""

    dst: VirtualRegister
    src: Optional[object]
    scalar: object
    index: int

    def uses(self):
        used = [self.scalar]
        if self.src is not None:
            used.append(self.src)
        return used

    def replace_uses(self, mapping):
        self.scalar = _subst(self.scalar, mapping)
        if self.src is not None:
            self.src = _subst(self.src, mapping)

    def __str__(self):
        src = self.src if self.src is not None else "undef"
        return (
            f"{self.dst} = insertelement {src}, {self.scalar}, {self.index}"
        )


@dataclass
class ExtractElement(IRInstruction):
    """dst = lane ``index`` of vector ``src``."""

    dst: VirtualRegister
    src: object
    index: int

    def uses(self):
        return [self.src]

    def replace_uses(self, mapping):
        self.src = _subst(self.src, mapping)

    def __str__(self):
        return f"{self.dst} = extractelement {self.src}, {self.index}"


@dataclass
class Reduce(IRInstruction):
    """Horizontal reduction over a vector register (used for the branch
    predicate sums of Algorithm 2 and for votes)."""

    op: str  # add any all ballot
    dst: VirtualRegister
    src: object

    def uses(self):
        return [self.src]

    def replace_uses(self, mapping):
        self.src = _subst(self.src, mapping)

    def __str__(self):
        return f"{self.dst} = reduce.{self.op} {self.src}"


@dataclass
class Broadcast(IRInstruction):
    """dst = vector with every lane equal to scalar ``src`` (splat)."""

    dst: VirtualRegister
    src: object

    def uses(self):
        return [self.src]

    def replace_uses(self, mapping):
        self.src = _subst(self.src, mapping)

    def __str__(self):
        return f"{self.dst} = broadcast {self.src}"


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


class Terminator(IRInstruction):
    __slots__ = ()

    @property
    def is_terminator(self):
        return True

    def successors(self) -> List[str]:
        return []


@dataclass
class Branch(Terminator):
    """Unconditional jump."""

    target: str

    def successors(self):
        return [self.target]

    def __str__(self):
        return f"br {self.target}"


@dataclass
class CondBranch(Terminator):
    """Two-way conditional branch (scalar IR only; Algorithm 2 replaces
    it with predicate-sum + Switch in vectorized functions)."""

    predicate: object
    taken: str
    fallthrough: str

    def uses(self):
        return [self.predicate]

    def replace_uses(self, mapping):
        self.predicate = _subst(self.predicate, mapping)

    def successors(self):
        return [self.taken, self.fallthrough]

    def __str__(self):
        return f"br {self.predicate}, {self.taken}, {self.fallthrough}"


@dataclass
class Switch(Terminator):
    """Multi-way branch on an integer value (scheduler block and
    divergence checks)."""

    value: object
    cases: Dict[int, str]
    default: str

    def uses(self):
        return [self.value]

    def replace_uses(self, mapping):
        self.value = _subst(self.value, mapping)

    def successors(self):
        seen = []
        for target in list(self.cases.values()) + [self.default]:
            if target not in seen:
                seen.append(target)
        return seen

    def __str__(self):
        cases = ", ".join(f"{k}->{v}" for k, v in sorted(self.cases.items()))
        return f"switch {self.value} [{cases}] default->{self.default}"


@dataclass
class BarrierTerm(Terminator):
    """CTA-wide barrier; the frontend splits blocks so barriers always
    terminate one. The vectorizer rewrites it into an exit handler with
    ``THREAD_BARRIER`` status."""

    successor: str

    def successors(self):
        return [self.successor]

    def __str__(self):
        return f"barrier -> {self.successor}"


@dataclass
class Exit(Terminator):
    """Thread termination (scalar IR)."""

    def __str__(self):
        return "exit"


@dataclass
class Yield(Terminator):
    """Return control to the execution manager with a resume status
    (the paper's compiler-inserted kernel exit point)."""

    status: int  # ResumeStatus value

    def __str__(self):
        return f"yield {ResumeStatus.NAMES.get(self.status, self.status)}"


# ---------------------------------------------------------------------------
# Classification used by the vectorizer (Algorithm 1's "is vectorizable")
# ---------------------------------------------------------------------------

VECTORIZABLE = (
    BinaryOp,
    UnaryOp,
    FusedMultiplyAdd,
    Compare,
    Select,
    Convert,
    Intrinsic,
)

REPLICATED = (Load, Store, AtomicRMW, ContextRead, ContextWrite)

VECTOR_MEMORY = (VectorLoad, VectorStore)
