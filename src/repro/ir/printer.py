"""Textual dump of IR functions (for tests, debugging and docs)."""

from __future__ import annotations

from .function import IRFunction


def print_function(function: IRFunction) -> str:
    """Render a function to the textual form used throughout the tests.

    The format is stable: header line, entry-point table, spill table,
    then blocks in layout order.
    """
    lines = [
        f"; function {function.name}",
        f"; warp_size = {function.warp_size}",
    ]
    if function.source_kernel:
        lines.append(f"; source kernel = {function.source_kernel}")
    if function.entry_points:
        lines.append("; entry points:")
        for entry_id, label in sorted(function.entry_points.items()):
            lines.append(f";   {entry_id} -> {label}")
    if function.spill_slots:
        lines.append(f"; spill area = {function.spill_size} bytes")
        for name, offset in sorted(
            function.spill_slots.items(), key=lambda item: item[1]
        ):
            lines.append(f";   %{name} @ +{offset}")
    for block in function.ordered_blocks():
        lines.append(f"{block.label}:")
        for instruction in block.all_instructions():
            lines.append(f"    {instruction}")
    return "\n".join(lines)


def summarize(function: IRFunction) -> str:
    """One-line summary used in statistics reports."""
    return (
        f"{function.name}: {len(function.blocks)} blocks, "
        f"{function.instruction_count()} instructions, "
        f"ws={function.warp_size}, "
        f"{len(function.entry_points)} entry points"
    )
