"""IR functions — the unit the translation cache specializes.

A function starts as the scalar translation of one PTX kernel. The
vectorizer produces new functions specialized for a warp size, carrying
the extra structure of Algorithms 2-4: entry points, spill slots, and a
scheduler block.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from ..errors import IRVerificationError
from ..ptx.types import DataType
from .basicblock import BasicBlock
from .values import VirtualRegister


class IRFunction:
    """An ordered collection of basic blocks with one entry block.

    Attributes
    ----------
    warp_size:
        The specialization width; 1 for the scalar translation.
    entry_points:
        Maps integer entry IDs to block labels. Entry ID 0 is the
        function entry. Divergent-branch successors and barrier
        resumption points get their own IDs (Algorithm 2/3).
    spill_slots:
        Maps register names to byte offsets in the per-thread local
        spill area used by the yield-on-diverge handlers.
    spill_size:
        Total bytes of the per-thread spill area.
    source_kernel:
        Name of the PTX kernel this function was translated from.
    """

    def __init__(self, name: str, warp_size: int = 1):
        self.name = name
        self.warp_size = warp_size
        self.blocks: Dict[str, BasicBlock] = {}
        self._order: List[str] = []
        self.entry_label: Optional[str] = None
        self.entry_points: Dict[int, str] = {}
        self.spill_slots: Dict[str, int] = {}
        self.spill_size: int = 0
        #: Bytes of user-declared .local variables; the spill area
        #: starts immediately after them in each thread's local memory.
        self.local_segment_size: int = 0
        self.source_kernel: Optional[str] = None
        #: entry ID -> number of live registers its handler restores
        #: (per thread) — the Figure 8 statistic.
        self.restore_counts: Dict[int, int] = {}
        self._register_counter = 0
        #: Lazily computed dense numbering (see :meth:`register_slots`).
        self._register_slots: Optional[Dict[str, int]] = None

    # -- blocks --------------------------------------------------------------

    def add_block(
        self, label: str, make_entry: bool = False
    ) -> BasicBlock:
        if label in self.blocks:
            raise IRVerificationError(
                f"duplicate block label {label!r} in {self.name}"
            )
        block = BasicBlock(label)
        self.blocks[label] = block
        self._order.append(label)
        if make_entry or self.entry_label is None:
            self.entry_label = label
        return block

    def block(self, label: str) -> BasicBlock:
        try:
            return self.blocks[label]
        except KeyError:
            raise IRVerificationError(
                f"no block {label!r} in {self.name}"
            ) from None

    @property
    def entry_block(self) -> BasicBlock:
        return self.blocks[self.entry_label]

    def ordered_blocks(self) -> List[BasicBlock]:
        return [self.blocks[label] for label in self._order]

    def prepend_block(self, label: str) -> BasicBlock:
        """Insert a new block at the front and make it the entry
        (used by CreateScheduler, Algorithm 3)."""
        if label in self.blocks:
            raise IRVerificationError(
                f"duplicate block label {label!r} in {self.name}"
            )
        block = BasicBlock(label)
        self.blocks[label] = block
        self._order.insert(0, label)
        self.entry_label = label
        return block

    def remove_block(self, label: str) -> None:
        del self.blocks[label]
        self._order.remove(label)
        if self.entry_label == label:
            self.entry_label = self._order[0] if self._order else None

    def fresh_label(self, hint: str) -> str:
        label = hint
        counter = 0
        while label in self.blocks:
            counter += 1
            label = f"{hint}_{counter}"
        return label

    # -- registers -----------------------------------------------------------

    def fresh_register(
        self, dtype: DataType, width: int = 1, hint: str = "v"
    ) -> VirtualRegister:
        name = f"{hint}.{self._register_counter}"
        self._register_counter += 1
        return VirtualRegister(name=name, dtype=dtype, width=width)

    # -- traversal -----------------------------------------------------------

    def instructions(self) -> Iterator[object]:
        for block in self.ordered_blocks():
            yield from block.all_instructions()

    def instruction_count(self) -> int:
        return sum(len(block) for block in self.ordered_blocks())

    def registers(self) -> List[VirtualRegister]:
        seen = {}
        for instruction in self.instructions():
            defined = instruction.defined()
            if defined is not None:
                seen[defined.name] = defined
            for used in instruction.uses():
                if isinstance(used, VirtualRegister):
                    seen.setdefault(used.name, used)
        return list(seen.values())

    def register_slots(self, refresh: bool = False) -> Dict[str, int]:
        """Dense integer numbering of every virtual register.

        The machine lowering uses these slot numbers to replace
        name-keyed register dictionaries with a flat per-warp register
        file (list indexing in the interpreter's inner loop). Numbering
        follows first definition/use order over the block layout, so it
        is deterministic for a given function body. The result is
        cached; pass ``refresh=True`` after structural edits (the
        lowering does, since it runs after all transforms).
        """
        if refresh or self._register_slots is None:
            self._register_slots = {
                register.name: slot
                for slot, register in enumerate(self.registers())
            }
        return self._register_slots

    # -- entry points ----------------------------------------------------

    def add_entry_point(self, block_label: str) -> int:
        """Register ``block_label`` as resumable and return its ID."""
        for entry_id, label in self.entry_points.items():
            if label == block_label:
                return entry_id
        entry_id = len(self.entry_points)
        self.entry_points[entry_id] = block_label
        return entry_id

    def entry_id_for(self, block_label: str) -> int:
        for entry_id, label in self.entry_points.items():
            if label == block_label:
                return entry_id
        raise IRVerificationError(
            f"{block_label!r} is not an entry point of {self.name}"
        )

    def __str__(self):
        header = f"function {self.name} (warp_size={self.warp_size})"
        if self.entry_points:
            entries = ", ".join(
                f"{entry_id}:{label}"
                for entry_id, label in sorted(self.entry_points.items())
            )
            header += f" entries[{entries}]"
        parts = [header]
        parts.extend(str(block) for block in self.ordered_blocks())
        return "\n".join(parts)
