"""Control-flow graph queries over an :class:`~repro.ir.function.
IRFunction`.

The CFG is computed on demand from block terminators. Transform passes
mutate blocks and then rebuild; nothing here is cached across edits.
"""

from __future__ import annotations

from typing import Dict, List, Set

from .function import IRFunction


class ControlFlowGraph:
    """Predecessor/successor maps plus reachability helpers."""

    def __init__(self, function: IRFunction):
        self.function = function
        self.successors: Dict[str, List[str]] = {}
        self.predecessors: Dict[str, List[str]] = {}
        for block in function.ordered_blocks():
            self.successors[block.label] = list(block.successors())
            self.predecessors.setdefault(block.label, [])
        for label, targets in self.successors.items():
            for target in targets:
                self.predecessors.setdefault(target, [])
                self.predecessors[target].append(label)

    def reachable(self, start: str = None) -> Set[str]:
        if start is None:
            start = self.function.entry_label
        seen: Set[str] = set()
        stack = [start]
        while stack:
            label = stack.pop()
            if label in seen:
                continue
            seen.add(label)
            stack.extend(self.successors.get(label, []))
        return seen

    def reverse_postorder(self) -> List[str]:
        """Blocks in reverse postorder from the entry — the traversal
        order the vectorizer uses (§4: breadth-first-flavoured walk)."""
        visited: Set[str] = set()
        order: List[str] = []

        def visit(label: str) -> None:
            stack = [(label, iter(self.successors.get(label, [])))]
            visited.add(label)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for successor in successors:
                    if successor not in visited:
                        visited.add(successor)
                        stack.append(
                            (
                                successor,
                                iter(self.successors.get(successor, [])),
                            )
                        )
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        visit(self.function.entry_label)
        # Entry points added by the scheduler may make extra roots; make
        # sure every block appears.
        for block in self.function.ordered_blocks():
            if block.label not in visited:
                visit(block.label)
        order.reverse()
        return order

    def back_edges(self) -> List[tuple]:
        """(source, target) pairs where target dominates source in a
        DFS sense — loop back edges for simple loop detection."""
        color: Dict[str, int] = {}
        edges: List[tuple] = []

        def dfs(root: str) -> None:
            stack = [(root, iter(self.successors.get(root, [])))]
            color[root] = 1
            while stack:
                label, successors = stack[-1]
                advanced = False
                for successor in successors:
                    state = color.get(successor, 0)
                    if state == 1:
                        edges.append((label, successor))
                    elif state == 0:
                        color[successor] = 1
                        stack.append(
                            (
                                successor,
                                iter(self.successors.get(successor, [])),
                            )
                        )
                        advanced = True
                        break
                if not advanced:
                    color[label] = 2
                    stack.pop()

        dfs(self.function.entry_label)
        return edges


def remove_unreachable_blocks(function: IRFunction) -> int:
    """Delete blocks unreachable from the entry (and from any registered
    entry point). Returns the number removed."""
    cfg = ControlFlowGraph(function)
    live: Set[str] = set()
    roots = [function.entry_label] + list(function.entry_points.values())
    for root in roots:
        if root in function.blocks:
            live |= cfg.reachable(root)
    removed = 0
    for label in list(function.blocks):
        if label not in live:
            function.remove_block(label)
            removed += 1
    return removed
