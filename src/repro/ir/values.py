"""Values of the mid-level IR.

The IR is register-based (not SSA): virtual registers may be redefined,
and a standard liveness analysis recovers live ranges where the
vectorizer's entry/exit handlers need them. After vectorization a
register carries a ``width`` — the number of logical threads (lanes) it
holds, mirroring LLVM's ``<ws x ty>`` vector types in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ptx.types import DataType


@dataclass(frozen=True)
class VirtualRegister:
    """A typed virtual register. ``width == 1`` is scalar; ``width > 1``
    is a vector register produced by the vectorization transform."""

    name: str
    dtype: DataType
    width: int = 1

    def __str__(self):
        if self.width > 1:
            return f"%{self.name}:<{self.width} x {self.dtype.value}>"
        return f"%{self.name}:{self.dtype.value}"

    @property
    def is_vector(self) -> bool:
        return self.width > 1

    def with_name(self, name: str) -> "VirtualRegister":
        return VirtualRegister(name=name, dtype=self.dtype, width=self.width)

    def with_width(self, width: int) -> "VirtualRegister":
        return VirtualRegister(name=self.name, dtype=self.dtype, width=width)


@dataclass(frozen=True)
class Constant:
    """A typed literal. Scalar only; vector positions broadcast it."""

    value: object
    dtype: DataType

    def __str__(self):
        return f"{self.value}:{self.dtype.value}"

    @property
    def is_vector(self) -> bool:
        return False

    width = 1


def is_register(value) -> bool:
    return isinstance(value, VirtualRegister)


def is_constant(value) -> bool:
    return isinstance(value, Constant)
