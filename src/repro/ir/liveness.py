"""Live-variable analysis.

Backward may-dataflow over virtual registers. The vectorizer's exit
handlers spill exactly the registers live *out* of a divergence site,
and entry handlers restore the registers live *in* to a resumption block
(Algorithms 3/4; Figure 8 measures the restored counts).
"""

from __future__ import annotations

from typing import Dict, Set

from .cfg import ControlFlowGraph
from .function import IRFunction
from .values import VirtualRegister


class LivenessInfo:
    """Per-block live-in / live-out register-name sets."""

    def __init__(self, function: IRFunction):
        self.function = function
        self.use: Dict[str, Set[str]] = {}
        self.define: Dict[str, Set[str]] = {}
        self.live_in: Dict[str, Set[str]] = {}
        self.live_out: Dict[str, Set[str]] = {}
        self._types: Dict[str, VirtualRegister] = {}
        self._compute()

    def _compute(self) -> None:
        function = self.function
        cfg = ControlFlowGraph(function)
        for block in function.ordered_blocks():
            upward_exposed: Set[str] = set()
            killed: Set[str] = set()
            for instruction in block.all_instructions():
                for value in instruction.uses():
                    if isinstance(value, VirtualRegister):
                        self._types.setdefault(value.name, value)
                        if value.name not in killed:
                            upward_exposed.add(value.name)
                defined = instruction.defined()
                if defined is not None:
                    self._types.setdefault(defined.name, defined)
                    killed.add(defined.name)
            self.use[block.label] = upward_exposed
            self.define[block.label] = killed
            self.live_in[block.label] = set()
            self.live_out[block.label] = set()

        changed = True
        while changed:
            changed = False
            for block in reversed(function.ordered_blocks()):
                label = block.label
                out: Set[str] = set()
                for successor in cfg.successors.get(label, []):
                    out |= self.live_in.get(successor, set())
                new_in = self.use[label] | (out - self.define[label])
                if out != self.live_out[label] or (
                    new_in != self.live_in[label]
                ):
                    self.live_out[label] = out
                    self.live_in[label] = new_in
                    changed = True

    def register(self, name: str) -> VirtualRegister:
        return self._types[name]

    def live_in_registers(self, label: str):
        """Live-in registers sorted by name for deterministic handler
        emission order."""
        return [
            self._types[name] for name in sorted(self.live_in[label])
        ]

    def live_out_registers(self, label: str):
        return [
            self._types[name] for name in sorted(self.live_out[label])
        ]

    def max_live(self) -> int:
        """Maximum number of simultaneously live registers at any block
        boundary — a register-pressure proxy used by the cost model."""
        best = 0
        for label in self.live_in:
            best = max(
                best, len(self.live_in[label]), len(self.live_out[label])
            )
        return best
