"""Mid-level IR: the scalar (then vectorized) representation that the
dynamic translation cache specializes and the vector machine executes.
Plays the role LLVM IR plays in the paper (§5.1).
"""

from .basicblock import BasicBlock
from .cfg import ControlFlowGraph, remove_unreachable_blocks
from .dominance import DominatorTree
from .function import IRFunction
from .instructions import (
    REPLICATED,
    VECTORIZABLE,
    AtomicRMW,
    BarrierTerm,
    BinaryOp,
    Branch,
    Broadcast,
    Compare,
    CondBranch,
    ContextRead,
    ContextWrite,
    Convert,
    Exit,
    ExtractElement,
    FusedMultiplyAdd,
    InsertElement,
    Intrinsic,
    IRInstruction,
    Load,
    Reduce,
    ResumeStatus,
    Select,
    Store,
    Switch,
    Terminator,
    UnaryOp,
    VectorLoad,
    VectorStore,
    Yield,
)
from .liveness import LivenessInfo
from .printer import print_function, summarize
from .values import Constant, VirtualRegister, is_constant, is_register
from .verifier import verify_function

__all__ = [
    "AtomicRMW",
    "BarrierTerm",
    "BasicBlock",
    "BinaryOp",
    "Branch",
    "Broadcast",
    "Compare",
    "CondBranch",
    "Constant",
    "ContextRead",
    "ContextWrite",
    "ControlFlowGraph",
    "Convert",
    "DominatorTree",
    "Exit",
    "ExtractElement",
    "FusedMultiplyAdd",
    "InsertElement",
    "Intrinsic",
    "IRFunction",
    "IRInstruction",
    "LivenessInfo",
    "Load",
    "REPLICATED",
    "Reduce",
    "ResumeStatus",
    "Select",
    "Store",
    "Switch",
    "Terminator",
    "UnaryOp",
    "VECTORIZABLE",
    "VectorLoad",
    "VectorStore",
    "VirtualRegister",
    "Yield",
    "is_constant",
    "is_register",
    "print_function",
    "remove_unreachable_blocks",
    "summarize",
    "verify_function",
]
