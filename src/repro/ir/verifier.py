"""IR function verifier.

Checks the invariants that the interpreter and the transforms rely on:
every block terminated, branch targets exist, entry points valid,
vector widths consistent with the function's warp size, and definitions
available on every path to each use (via dominance when the function is
single-assignment enough; otherwise via a conservative reachability
check).
"""

from __future__ import annotations

from typing import Set

from ..errors import IRVerificationError
from .cfg import ControlFlowGraph
from .function import IRFunction
from .instructions import (
    Broadcast,
    ExtractElement,
    InsertElement,
    Reduce,
)
from .values import VirtualRegister


def verify_function(function: IRFunction) -> None:
    if function.entry_label is None:
        raise IRVerificationError(f"{function.name}: no entry block")
    labels: Set[str] = set(function.blocks)
    for block in function.ordered_blocks():
        if not block.is_terminated:
            raise IRVerificationError(
                f"{function.name}: block {block.label} is not terminated"
            )
        for successor in block.successors():
            if successor not in labels:
                raise IRVerificationError(
                    f"{function.name}: block {block.label} branches to "
                    f"unknown label {successor!r}"
                )
    for entry_id, label in function.entry_points.items():
        if label not in labels:
            raise IRVerificationError(
                f"{function.name}: entry point {entry_id} targets unknown "
                f"label {label!r}"
            )
    _verify_widths(function)
    _verify_definitions(function)


def _verify_widths(function: IRFunction) -> None:
    warp_size = function.warp_size
    for block in function.ordered_blocks():
        for instruction in block.all_instructions():
            defined = instruction.defined()
            values = list(instruction.uses())
            if defined is not None:
                values.append(defined)
            for value in values:
                if (
                    isinstance(value, VirtualRegister)
                    and value.width not in (1, warp_size)
                ):
                    raise IRVerificationError(
                        f"{function.name}: register {value} has width "
                        f"{value.width}, expected 1 or {warp_size} "
                        f"(in {instruction})"
                    )
            if isinstance(instruction, (InsertElement, ExtractElement)):
                if instruction.index >= warp_size:
                    raise IRVerificationError(
                        f"{function.name}: lane index {instruction.index} "
                        f">= warp size {warp_size} in {instruction}"
                    )
            if isinstance(instruction, (Reduce, Broadcast)):
                if warp_size == 0:
                    raise IRVerificationError(
                        f"{function.name}: vector op in zero-width function"
                    )


def _verify_definitions(function: IRFunction) -> None:
    """Every used register must be defined somewhere in the function.

    (Path-sensitivity is not enforced: the translator may produce
    registers defined on one path and used after a merge, matching PTX
    semantics where registers are function-scoped storage.)
    """
    defined: Set[str] = set()
    for instruction in function.instructions():
        target = instruction.defined()
        if target is not None:
            defined.add(target.name)
    cfg = ControlFlowGraph(function)
    reachable = set()
    roots = [function.entry_label] + list(function.entry_points.values())
    for root in roots:
        reachable |= cfg.reachable(root)
    for block in function.ordered_blocks():
        if block.label not in reachable:
            continue
        for instruction in block.all_instructions():
            for value in instruction.uses():
                if (
                    isinstance(value, VirtualRegister)
                    and value.name not in defined
                ):
                    raise IRVerificationError(
                        f"{function.name}: register %{value.name} used in "
                        f"{instruction} (block {block.label}) but never "
                        f"defined"
                    )
