"""Basic blocks of the mid-level IR."""

from __future__ import annotations

from typing import Iterable, List, Optional

from ..errors import IRVerificationError
from .instructions import IRInstruction, Terminator


class BasicBlock:
    """A label, a straight-line instruction list, and one terminator."""

    def __init__(self, label: str):
        self.label = label
        self.instructions: List[IRInstruction] = []
        self.terminator: Optional[Terminator] = None

    def append(self, instruction: IRInstruction) -> IRInstruction:
        if instruction.is_terminator:
            if self.terminator is not None:
                raise IRVerificationError(
                    f"block {self.label} already terminated by "
                    f"{self.terminator}"
                )
            self.terminator = instruction
        else:
            if self.terminator is not None:
                raise IRVerificationError(
                    f"appending {instruction} after terminator in block "
                    f"{self.label}"
                )
            self.instructions.append(instruction)
        return instruction

    def extend(self, instructions: Iterable[IRInstruction]) -> None:
        for instruction in instructions:
            self.append(instruction)

    @property
    def is_terminated(self) -> bool:
        return self.terminator is not None

    def all_instructions(self) -> List[IRInstruction]:
        """Body instructions plus terminator, in execution order."""
        if self.terminator is None:
            return list(self.instructions)
        return self.instructions + [self.terminator]

    def successors(self) -> List[str]:
        if self.terminator is None:
            return []
        return self.terminator.successors()

    def __iter__(self):
        return iter(self.all_instructions())

    def __len__(self):
        return len(self.instructions) + (1 if self.terminator else 0)

    def __str__(self):
        lines = [f"{self.label}:"]
        for instruction in self.all_instructions():
            lines.append(f"  {instruction}")
        return "\n".join(lines)

    def __repr__(self):
        return f"<BasicBlock {self.label} ({len(self)} insts)>"
