"""Barrier-interval shared-memory race detection.

The machine's only intra-CTA ordering primitive is ``bar.sync``:
between two consecutive barrier releases of one CTA (one *barrier
epoch*) the execution manager may schedule threads and form warps in
any order — and yield-on-diverge makes that order schedule-dependent.
Two accesses to the same shared byte by *different threads* of one CTA
within the *same* epoch are therefore unordered; if at least one is a
write (and they are not both atomics), the program's result depends on
warp formation. That is exactly the hazard this detector reports.

Mechanism: a per-byte last-writer and last-reader log. Every shared
access records ``(cta, epoch, thread, ...)`` per byte; a write
conflicts with a same-epoch write or read by another thread, a read
conflicts with a same-epoch write by another thread. The execution
manager advances a CTA's epoch every time it releases that CTA's
barrier pool (:meth:`RaceDetector.barrier_released`), which orders all
accesses before the release against all accesses after it. Logs are
cleared per launch so CTA-id reuse across launches (or windows — the
CTA id is part of the record) cannot alias.

Keeping only the *last* reader per byte is sufficient for detection:
any read-write hazard involves the write and some same-epoch read, and
the last one is as good a witness as any.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .reports import AccessInfo

#: One logged access: (cta, epoch, thread, ctaid, tid, label, index,
#: atomic, is_write). Tuples, not objects: the detector logs per byte.
_Record = tuple


class RaceConflict:
    """A detected hazard: the current access plus the logged one."""

    __slots__ = ("byte", "prior", "epoch")

    def __init__(self, byte: int, prior: _Record, epoch: int):
        self.byte = byte
        self.prior = prior
        self.epoch = epoch

    def prior_access(self) -> AccessInfo:
        (_, _, _, ctaid, tid, label, index, atomic, is_write) = self.prior
        return AccessInfo(
            ctaid=ctaid,
            tid=tid,
            block_label=label,
            op_index=index,
            write=is_write,
            atomic=atomic,
        )


class RaceDetector:
    """Per-byte last-writer/last-reader logs keyed by barrier epoch."""

    def __init__(self):
        #: CTA linear id -> current barrier epoch.
        self._epochs: Dict[int, int] = {}
        self._last_write: Dict[int, _Record] = {}
        self._last_read: Dict[int, _Record] = {}

    def begin_launch(self) -> None:
        self._epochs.clear()
        self._last_write.clear()
        self._last_read.clear()

    def barrier_released(self, cta: int) -> None:
        """The execution manager released ``cta``'s barrier pool: all
        subsequent accesses are ordered after all prior ones."""
        self._epochs[cta] = self._epochs.get(cta, 0) + 1

    def epoch(self, cta: int) -> int:
        return self._epochs.get(cta, 0)

    def record(
        self,
        cta: int,
        thread: int,
        ctaid: Tuple[int, int, int],
        tid: Tuple[int, int, int],
        address: int,
        size: int,
        is_write: bool,
        atomic: bool,
        label: Optional[str],
        index: int,
    ) -> Optional[RaceConflict]:
        """Log one shared access; return the first hazard found (the
        caller reports it), or None."""
        epoch = self._epochs.get(cta, 0)
        access = (
            cta, epoch, thread, ctaid, tid, label, index, atomic,
            is_write,
        )
        writes = self._last_write
        reads = self._last_read
        conflict: Optional[RaceConflict] = None
        for byte in range(address, address + size):
            prior = writes.get(byte)
            if (
                conflict is None
                and prior is not None
                and prior[0] == cta
                and prior[1] == epoch
                and prior[2] != thread
                and not (atomic and prior[7])
            ):
                conflict = RaceConflict(byte, prior, epoch)
            if is_write:
                if conflict is None:
                    prior_read = reads.get(byte)
                    if (
                        prior_read is not None
                        and prior_read[0] == cta
                        and prior_read[1] == epoch
                        and prior_read[2] != thread
                        and not (atomic and prior_read[7])
                    ):
                        conflict = RaceConflict(byte, prior_read, epoch)
                writes[byte] = access
            else:
                reads[byte] = access
        return conflict


__all__ = ["RaceConflict", "RaceDetector"]
