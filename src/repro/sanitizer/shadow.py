"""Per-byte shadow state, allocation registry, redzones, quarantine.

Every byte of the arena carries one shadow state:

====================  =====================================================
``UNADDRESSABLE`` 0   never handed out (incl. the null page)
``UNINITIALIZED`` 1   allocated payload no one has written yet
``INITIALIZED``   2   allocated payload holding a written value
``REDZONE``       3   guard bytes around/inside an allocation's payload
``QUARANTINE``    4   payload of a freed allocation, held back from reuse
====================  =====================================================

An access is well-formed iff every byte it touches is in state 1 or 2;
a load additionally wants state 2 everywhere when initcheck is on.
Classification of a *bad* byte (which allocation's redzone? whose
quarantined payload?) goes through the registry — a record per
allocation with payload bounds, the surrounding redzone span, a kind
(``device`` / ``param`` / ``shared`` / ``local`` / ``global``), an
optional label, and the host allocation site.

Freed allocations are quarantined: their span is *not* returned to the
arena until the quarantine's byte budget forces eviction (FIFO), so a
use-after-free keeps faulting instead of silently reading whatever got
reallocated there.
"""

from __future__ import annotations

import traceback
from bisect import bisect_right, insort
from collections import deque
from typing import Deque, Iterator, List, Optional, Tuple

import numpy as np

from ..errors import MemoryFault
from ..machine.memory import _NULL_GUARD
from .reports import AllocationInfo

UNADDRESSABLE = 0
UNINITIALIZED = 1
INITIALIZED = 2
REDZONE = 3
QUARANTINE = 4

STATE_NAMES = {
    UNADDRESSABLE: "unaddressable",
    UNINITIALIZED: "uninitialized",
    INITIALIZED: "initialized",
    REDZONE: "redzone",
    QUARANTINE: "quarantined",
}


class AllocationRecord:
    """Registry entry for one sanitized allocation."""

    __slots__ = (
        "base",
        "size",
        "kind",
        "label",
        "site",
        "sequence",
        "span_base",
        "span_size",
        "segment",
        "stride",
        "freed",
    )

    def __init__(
        self,
        base: int,
        size: int,
        kind: str,
        label: Optional[str],
        site: str,
        sequence: int,
        span_base: int,
        span_size: int,
    ):
        self.base = base
        self.size = size
        self.kind = kind
        self.label = label
        self.site = site
        self.sequence = sequence
        self.span_base = span_base
        self.span_size = span_size
        #: Segmented slabs (per-thread local regions): payload bytes
        #: per segment and the stride between segment starts.
        self.segment: Optional[int] = None
        self.stride: Optional[int] = None
        self.freed = False

    def info(self) -> AllocationInfo:
        return AllocationInfo(
            base=self.base,
            size=self.size,
            kind=self.kind,
            label=self.label,
            site=self.site,
            sequence=self.sequence,
            freed=self.freed,
            segment=self.segment,
            stride=self.stride,
        )


def _allocation_site(
    skip_substrings=("/sanitizer/", "machine/memory.py", "api/device.py")
) -> str:
    """The nearest stack frame outside the sanitizer/memory layers —
    the code that asked for the allocation."""
    for frame in reversed(traceback.extract_stack(limit=16)[:-1]):
        filename = frame.filename.replace("\\", "/")
        if any(part in filename for part in skip_substrings):
            continue
        short = filename.rsplit("/", 1)[-1]
        return f"{short}:{frame.lineno} in {frame.name}"
    return "<unknown>"


class ShadowMemory:
    """Shadow array + allocation registry + use-after-free quarantine
    layered over one :class:`~repro.machine.memory.MemorySystem`."""

    def __init__(
        self,
        memory,
        redzone: int = 16,
        quarantine_capacity: int = 1 << 20,
    ):
        self.memory = memory
        self.redzone = redzone
        self.quarantine_capacity = quarantine_capacity
        self.shadow = np.zeros(memory.size, dtype=np.uint8)
        #: payload base -> live/quarantined record
        self._records: dict = {}
        #: (span_base, record) sorted by span_base, for classification
        self._spans: List[Tuple[int, AllocationRecord]] = []
        self._quarantine: Deque[AllocationRecord] = deque()
        self._quarantine_bytes = 0
        self._sequence = 0

    # -- allocation ---------------------------------------------------------

    def allocate(
        self,
        size: int,
        align: int = 16,
        kind: str = "device",
        label: Optional[str] = None,
    ) -> int:
        """Allocate ``size`` payload bytes with redzones on both sides.
        The left redzone is rounded up so the payload keeps the
        requested alignment."""
        align = max(align, 1)
        left = self.redzone + (-self.redzone % align)
        span = self.memory._arena_allocate(size + left + self.redzone, align)
        base = span + left
        self._sequence += 1
        record = AllocationRecord(
            base=base,
            size=size,
            kind=kind,
            label=label,
            site=_allocation_site(),
            sequence=self._sequence,
            span_base=span,
            span_size=size + left + self.redzone,
        )
        shadow = self.shadow
        shadow[span:base] = REDZONE
        shadow[base : base + size] = (
            INITIALIZED if kind in ("global", "const") else UNINITIALIZED
        )
        shadow[base + size : span + record.span_size] = REDZONE
        self._records[base] = record
        insort(self._spans, (span, record), key=lambda item: item[0])
        return base

    def free(self, address: int, size: int) -> None:
        """Quarantine a previously sanitized allocation. Mismatched or
        repeated frees raise :class:`~repro.errors.MemoryFault`."""
        record = self._records.get(address)
        if record is None:
            raise MemoryFault(
                address, size, "free of an address that was never "
                "returned by allocate"
            )
        if record.freed:
            raise MemoryFault(address, size, "double free")
        if size != record.size:
            raise MemoryFault(
                address,
                size,
                f"free size mismatch (allocation holds {record.size} "
                f"bytes)",
            )
        record.freed = True
        self.shadow[record.base : record.base + record.size] = QUARANTINE
        self._quarantine.append(record)
        self._quarantine_bytes += record.span_size
        while (
            self._quarantine
            and self._quarantine_bytes > self.quarantine_capacity
        ):
            self._evict_one()

    def _evict_one(self) -> None:
        record = self._quarantine.popleft()
        self._quarantine_bytes -= record.span_size
        self.shadow[record.span_base : record.span_base + record.span_size] = (
            UNADDRESSABLE
        )
        self._drop_record(record)
        self.memory._arena_free(record.span_base, record.span_size)

    def _drop_record(self, record: AllocationRecord) -> None:
        self._records.pop(record.base, None)
        index = bisect_right(
            self._spans, record.span_base, key=lambda item: item[0]
        ) - 1
        while index >= 0 and self._spans[index][0] == record.span_base:
            if self._spans[index][1] is record:
                del self._spans[index]
                return
            index -= 1

    def quarantined(self, address: int) -> bool:
        """Is ``address`` the payload base of a quarantined record?"""
        record = self._records.get(address)
        return record is not None and record.freed

    def live_records(self) -> Iterator[AllocationRecord]:
        for record in self._records.values():
            if not record.freed:
                yield record

    def resegment(
        self, base: int, segment: int, stride: int
    ) -> None:
        """(Re)apply a segmented layout to a slab's payload: every
        ``stride`` bytes, the first ``segment`` are payload and the
        rest interior redzone. Used for the per-thread local regions
        (and to restrict a reused shared slab to the live kernel's
        shared segment). Payload bytes reset to UNINITIALIZED."""
        record = self._records.get(base)
        if record is None or record.freed:
            return
        record.segment = segment
        record.stride = stride
        shadow = self.shadow
        end = record.base + record.size
        shadow[record.base : end] = UNINITIALIZED
        if stride and segment < stride:
            for start in range(record.base, end, stride):
                shadow[
                    start + segment : min(start + stride, end)
                ] = REDZONE

    def reset(self) -> None:
        """Forget everything (the arena itself was reset)."""
        self.shadow[:] = UNADDRESSABLE
        self._records.clear()
        self._spans.clear()
        self._quarantine.clear()
        self._quarantine_bytes = 0

    # -- host-side writes ---------------------------------------------------

    def note_host_write(self, address: int, size: int) -> None:
        """A host copy/fill wrote [address, address+size): payload
        bytes become INITIALIZED; guard bytes keep their state."""
        span = self.shadow[address : address + size]
        span[span == UNINITIALIZED] = INITIALIZED

    # -- access checking ----------------------------------------------------

    def find_record(self, address: int) -> Optional[AllocationRecord]:
        """The record whose *span* (redzones included) covers
        ``address``, or None."""
        index = bisect_right(
            self._spans, address, key=lambda item: item[0]
        )
        if index > 0:
            # Spans never overlap: the last span starting at or before
            # the address is the only candidate.
            record = self._spans[index - 1][1]
            if record.span_base + record.span_size > address:
                return record
        return None

    def check(
        self, address: int, size: int, is_write: bool, want_init: bool
    ):
        """Classify one guest access. Returns ``None`` when the access
        is well-formed (marking written bytes INITIALIZED), else a
        ``(kind, record, detail)`` finding; the shadow is left
        untouched on a finding so non-fatal mode keeps faulting."""
        shadow = self.shadow
        if size <= 0 or address < 0 or address + size > shadow.size:
            return ("invalid", None, "outside the arena")
        span = shadow[address : address + size]
        if int(span.min()) == UNADDRESSABLE or int(span.max()) >= REDZONE:
            bad = int(
                np.argmax((span == UNADDRESSABLE) | (span >= REDZONE))
            )
            state = int(span[bad])
            record = self.find_record(address + bad)
            if state == REDZONE:
                return ("oob", record, self._oob_detail(address + bad, record))
            if state == QUARANTINE:
                return ("use-after-free", record, "freed memory")
            if address + bad < _NULL_GUARD:
                return ("invalid", None, "null-page access")
            return ("invalid", record, "never-allocated memory")
        if want_init and bool((span == UNINITIALIZED).any()):
            record = self.find_record(address)
            return ("uninit-read", record, "uninitialized value")
        if is_write:
            span[:] = INITIALIZED
        return None

    @staticmethod
    def _oob_detail(byte: int, record) -> str:
        if record is None:
            return "redzone"
        end = record.base + record.size
        if byte >= end:
            return f"{byte - end} bytes past the end of the allocation"
        if byte < record.base:
            return f"{record.base - byte} bytes before the allocation"
        # Interior redzone of a segmented slab.
        if record.stride:
            offset = (byte - record.base) % record.stride
            return (
                f"{offset - (record.segment or 0)} bytes past the end "
                f"of a {record.segment}-byte segment"
            )
        return "interior redzone"


__all__ = [
    "AllocationRecord",
    "INITIALIZED",
    "QUARANTINE",
    "REDZONE",
    "STATE_NAMES",
    "ShadowMemory",
    "UNADDRESSABLE",
    "UNINITIALIZED",
]
