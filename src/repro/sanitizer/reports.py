"""Structured sanitizer findings and their text rendering.

A :class:`SanitizerReport` is the unit the whole subsystem deals in:
fatal mode wraps one in a :class:`~repro.errors.SanitizerError` (which
the trap machinery renders via :func:`format_sanitizer_report`);
non-fatal mode accumulates deduplicated reports per launch on
``LaunchStatistics.sanitizer``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple


@dataclass
class AllocationInfo:
    """The allocation a finding points into (registry record snapshot)."""

    base: int
    size: int
    kind: str
    label: Optional[str]
    site: str
    sequence: int
    freed: bool = False
    #: Per-segment payload bytes and stride for segmented slabs (the
    #: per-thread local regions); None for plain allocations.
    segment: Optional[int] = None
    stride: Optional[int] = None

    def describe(self) -> str:
        name = f" {self.label!r}" if self.label else ""
        state = "freed" if self.freed else "live"
        layout = ""
        if self.segment is not None and self.stride:
            layout = (
                f", segmented {self.segment}B payload / "
                f"{self.stride}B stride"
            )
        return (
            f"#{self.sequence}{name} ({self.kind}, {state}, "
            f"{self.size} bytes at [0x{self.base:x}, "
            f"0x{self.base + self.size:x}){layout}) allocated at "
            f"{self.site}"
        )


@dataclass(frozen=True)
class AccessInfo:
    """One guest access, for race reports: who touched the byte."""

    ctaid: Tuple[int, int, int]
    tid: Tuple[int, int, int]
    block_label: Optional[str]
    op_index: int
    write: bool
    atomic: bool = False

    def __str__(self):
        what = "atomic " if self.atomic else ""
        what += "write" if self.write else "read"
        return (
            f"{what} by cta={self.ctaid} tid={self.tid} at block "
            f"{self.block_label!r} op {self.op_index}"
        )


@dataclass
class SanitizerReport:
    """One sanitizer finding.

    ``kind`` is one of ``"oob"`` (access into a redzone),
    ``"use-after-free"`` (access into quarantined memory),
    ``"invalid"`` (null page / never-allocated bytes),
    ``"uninit-read"`` (initcheck), ``"race"`` (shared-memory hazard
    within one barrier interval), or ``"leak"`` (device allocation
    never freed, from the :meth:`Device.reset` leak check).
    """

    kind: str
    kernel: str
    message: str
    address: int
    size: int
    ctaid: Optional[Tuple[int, int, int]] = None
    tid: Optional[Tuple[int, int, int]] = None
    block_label: Optional[str] = None
    op_index: int = -1
    space: str = "global"
    allocation: Optional[AllocationInfo] = None
    #: The earlier conflicting access, for race reports.
    conflict: Optional[AccessInfo] = None
    #: How often this (deduplicated) finding fired in non-fatal mode.
    count: int = 1

    def dedup_key(self) -> tuple:
        """Site identity: repeated hits of one program point collapse
        into one report with a bumped ``count``."""
        return (
            self.kind,
            self.kernel,
            self.block_label,
            self.op_index,
            self.allocation.base if self.allocation else None,
        )

    def __str__(self):
        return format_sanitizer_report(self)


def format_sanitizer_report(report: SanitizerReport) -> str:
    """Render one finding as a short multi-line diagnostic."""
    lines = [f"{report.kind}: {report.message}"]
    if report.tid is not None:
        lines.append(
            f"  kernel {report.kernel!r} cta={report.ctaid} "
            f"tid={report.tid} block={report.block_label!r} "
            f"op={report.op_index} space={report.space}"
        )
    elif report.kernel:
        lines.append(f"  kernel {report.kernel!r}")
    if report.allocation is not None:
        lines.append(f"  allocation {report.allocation.describe()}")
    if report.conflict is not None:
        lines.append(f"  conflicts with earlier {report.conflict}")
    if report.count > 1:
        lines.append(f"  reported {report.count} times at this site")
    return "\n".join(lines)


def format_sanitizer_reports(
    reports: Iterable[SanitizerReport],
    title: str = "Sanitizer reports",
) -> str:
    """Render a launch's accumulated findings (non-fatal mode)."""
    reports = list(reports)
    lines: List[str] = [title, "-" * 72]
    if not reports:
        lines.append("  (clean: no findings)")
        return "\n".join(lines)
    for report in reports:
        for line in format_sanitizer_report(report).splitlines():
            lines.append(f"  {line}")
    return "\n".join(lines)


__all__ = [
    "AccessInfo",
    "AllocationInfo",
    "SanitizerReport",
    "format_sanitizer_report",
    "format_sanitizer_reports",
]
