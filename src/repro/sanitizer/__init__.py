"""repro.sanitizer — opt-in checked execution (memcheck / racecheck /
initcheck), the detection layer over PR 3's containment layer.

Enable with ``ExecutionConfig(sanitize=True)`` (or a subset like
``sanitize=("memcheck",)``), or force it from the environment with
``REPRO_SANITIZE=1``. See :mod:`repro.sanitizer.core` for the
architecture and DESIGN.md's "Sanitizer" section for the shadow-state
and barrier-epoch models.
"""

from .core import (
    SANITIZE_CHECKS,
    KernelSanitizer,
    apply_sanitize_env,
    normalize_checks,
)
from .racecheck import RaceConflict, RaceDetector
from .reports import (
    AccessInfo,
    AllocationInfo,
    SanitizerReport,
    format_sanitizer_report,
    format_sanitizer_reports,
)
from .shadow import ShadowMemory

__all__ = [
    "AccessInfo",
    "AllocationInfo",
    "KernelSanitizer",
    "RaceConflict",
    "RaceDetector",
    "SANITIZE_CHECKS",
    "SanitizerReport",
    "ShadowMemory",
    "apply_sanitize_env",
    "format_sanitizer_report",
    "format_sanitizer_reports",
    "normalize_checks",
]
