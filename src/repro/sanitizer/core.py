"""The kernel sanitizer facade: checked guest memory access.

One :class:`KernelSanitizer` attaches to a device's
:class:`~repro.machine.memory.MemorySystem` (``memory.sanitizer``) and
its :class:`~repro.machine.interpreter.Interpreter`. When attached:

- ``MemorySystem.allocate``/``free`` route through the shadow layer
  (redzones, registry, quarantine — :mod:`repro.sanitizer.shadow`);
- the interpreter lowers memory instructions to *checked* closures
  that call :meth:`guest_load` / :meth:`guest_store` etc., which
  classify every access before performing it and feed shared accesses
  to the race detector (:mod:`repro.sanitizer.racecheck`);
- findings become :class:`~repro.errors.SanitizerError` (fatal mode —
  contained as a KernelTrap at the warp boundary) or accumulate as
  deduplicated :class:`SanitizerReport` objects per launch (non-fatal
  mode), drained onto ``LaunchStatistics.sanitizer`` by the launcher.

The three checks are independent: ``memcheck`` (redzones,
use-after-free, wild/null addresses), ``racecheck`` (shared-memory
hazards within one barrier interval), ``initcheck`` (reads of
never-written allocation payload). Shadow state is maintained whenever
any check is on, so the checks compose without lying to each other.
"""

from __future__ import annotations

import dataclasses
import os
from typing import List, Optional, Tuple

from ..errors import SanitizerError
from .racecheck import RaceDetector
from .reports import (
    AccessInfo,
    SanitizerReport,
    format_sanitizer_report,
)
from .shadow import ShadowMemory

#: Canonical check names, in canonical order.
SANITIZE_CHECKS = ("memcheck", "racecheck", "initcheck")

_KIND_VERBS = {
    "oob": "out-of-bounds",
    "use-after-free": "use-after-free",
    "invalid": "invalid",
    "uninit-read": "uninitialized",
}

_SPACE_NAMES = {True: "shared", False: "global"}


def normalize_checks(sanitize) -> Tuple[str, ...]:
    """Normalize an ``ExecutionConfig.sanitize`` value: ``False``/empty
    -> (), ``True`` -> all checks, a name or iterable of names ->
    validated tuple in canonical order."""
    if sanitize is True:
        return SANITIZE_CHECKS
    if not sanitize:
        return ()
    if isinstance(sanitize, str):
        wanted = (sanitize,)
    else:
        wanted = tuple(sanitize)
    for check in wanted:
        if check not in SANITIZE_CHECKS:
            raise ValueError(
                f"unknown sanitizer check {check!r} "
                f"(expected a subset of {SANITIZE_CHECKS})"
            )
    return tuple(c for c in SANITIZE_CHECKS if c in wanted)


def apply_sanitize_env(config):
    """Resolve the ``REPRO_SANITIZE`` environment alias onto a config:
    ``1``/``true``/``all`` enables every check, a comma-separated list
    enables a subset. A config that already sanitizes, or that runs the
    dispatch-mode reference interpreter (which has no checked lowering),
    is returned unchanged."""
    value = os.environ.get("REPRO_SANITIZE", "").strip().lower()
    if not value or value == "0":
        return config
    if config.sanitize or config.interpreter_mode != "closure":
        return config
    if value in ("1", "true", "on", "all"):
        checks = True
    else:
        names = tuple(
            part for part in value.replace("+", ",").split(",") if part
        )
        try:
            checks = normalize_checks(names)
        except ValueError:
            checks = True
    return dataclasses.replace(config, sanitize=checks)


class KernelSanitizer:
    """Checked-execution services for one device (see module docs)."""

    #: Guard bytes on each side of every payload (and between the
    #: per-thread local segments).
    REDZONE_BYTES = 16

    def __init__(
        self,
        memory,
        checks=SANITIZE_CHECKS,
        fatal: bool = True,
        quarantine_bytes: int = 1 << 20,
        max_reports: int = 64,
    ):
        self.memory = memory
        self.checks = normalize_checks(checks) or SANITIZE_CHECKS
        self.memcheck = "memcheck" in self.checks
        self.racecheck = "racecheck" in self.checks
        self.initcheck = "initcheck" in self.checks
        self.fatal = fatal
        self.max_reports = max_reports
        self.shadow = ShadowMemory(
            memory,
            redzone=self.REDZONE_BYTES,
            quarantine_capacity=quarantine_bytes,
        )
        self.race = RaceDetector()
        #: Kernel of the launch in flight (begin_launch).
        self.kernel: Optional[str] = None
        #: Non-fatal findings of the launch in flight.
        self.reports: List[SanitizerReport] = []
        #: Findings dropped after max_reports distinct sites.
        self.suppressed = 0
        #: Leak-check findings of the last Device.reset().
        self.leak_reports: List[SanitizerReport] = []
        self._seen: dict = {}

    # -- allocation routing (called by MemorySystem) -------------------------

    def allocate(self, size, align=16, kind="device", label=None) -> int:
        return self.shadow.allocate(size, align=align, kind=kind, label=label)

    def free(self, address: int, size: int) -> None:
        self.shadow.free(address, size)

    def note_host_write(self, address: int, size: int) -> None:
        self.shadow.note_host_write(address, size)

    def reset(self) -> None:
        self.shadow.reset()
        self.race.begin_launch()
        self.reports = []
        self._seen = {}
        self.suppressed = 0

    # -- launch lifecycle ----------------------------------------------------

    def begin_launch(self, kernel: str) -> None:
        self.kernel = kernel
        self.reports = []
        self._seen = {}
        self.suppressed = 0
        self.race.begin_launch()

    def barrier_released(self, cta: int) -> None:
        if self.racecheck:
            self.race.barrier_released(cta)

    def take_reports(self) -> List[SanitizerReport]:
        reports, self.reports = self.reports, []
        self._seen = {}
        return reports

    # -- the checked guest access path --------------------------------------

    def guest_load(
        self, state, lane, address, dtype, shared, label, index,
        atomic=False,
    ):
        address = int(address)
        size = 1 if dtype.is_predicate else dtype.size
        self.check_access(
            state, lane, address, size, False, shared, label, index,
            atomic,
        )
        return self.memory.load(dtype, address)

    def guest_store(
        self, state, lane, address, dtype, value, shared, label, index,
        atomic=False,
    ) -> None:
        address = int(address)
        size = 1 if dtype.is_predicate else dtype.size
        self.check_access(
            state, lane, address, size, True, shared, label, index,
            atomic,
        )
        self.memory.store(dtype, address, value)

    def guest_read_vector(
        self, state, lane, address, numpy_dtype, width, shared, label,
        index,
    ):
        address = int(address)
        self.check_access(
            state, lane, address, numpy_dtype.itemsize * width, False,
            shared, label, index, False,
        )
        return self.memory.read_array(address, numpy_dtype, width)

    def guest_write_vector(
        self, state, lane, address, array, shared, label, index
    ) -> None:
        address = int(address)
        self.check_access(
            state, lane, address, array.nbytes, True, shared, label,
            index, False,
        )
        self.memory.write_array(address, array)

    def check_access(
        self, state, lane, address, size, is_write, shared, label,
        index, atomic,
    ) -> None:
        finding = self.shadow.check(
            address, size, is_write,
            want_init=self.initcheck and not is_write,
        )
        if finding is not None:
            kind, record, detail = finding
            wanted = (
                self.initcheck if kind == "uninit-read" else self.memcheck
            )
            if wanted:
                self._emit(
                    self._access_report(
                        kind, state, lane, address, size, is_write,
                        shared, label, index, record, detail,
                    )
                )
        if shared and self.racecheck:
            context = state.contexts[lane]
            conflict = self.race.record(
                cta=context.linear_ctaid,
                thread=context.linear_tid,
                ctaid=context.ctaid,
                tid=context.tid,
                address=address,
                size=size,
                is_write=is_write,
                atomic=atomic,
                label=label,
                index=index,
            )
            if conflict is not None:
                self._emit(
                    self._race_report(
                        state, lane, address, size, is_write, atomic,
                        label, index, conflict,
                    )
                )

    # -- leak check ----------------------------------------------------------

    def leak_check(self) -> List[SanitizerReport]:
        """List device allocations that were never freed (called by
        ``Device.reset()``). Informational: buffers surviving a reset
        are by design, but a workload that mallocs per iteration
        without freeing shows up here."""
        reports: List[SanitizerReport] = []
        for record in sorted(
            self.shadow.live_records(), key=lambda r: r.sequence
        ):
            if record.kind != "device":
                continue
            reports.append(
                SanitizerReport(
                    kind="leak",
                    kernel=self.kernel or "<no launch>",
                    message=(
                        f"{record.size} bytes at 0x{record.base:x} "
                        f"never freed"
                    ),
                    address=record.base,
                    size=record.size,
                    allocation=record.info(),
                )
            )
        self.leak_reports = reports
        return reports

    # -- report assembly -----------------------------------------------------

    def _access_report(
        self, kind, state, lane, address, size, is_write, shared,
        label, index, record, detail,
    ) -> SanitizerReport:
        context = state.contexts[lane]
        access = "store" if is_write else "load"
        verb = _KIND_VERBS.get(kind, kind)
        message = (
            f"{verb} {access} of {size} byte(s) at 0x{address:x} "
            f"({detail})"
        )
        return SanitizerReport(
            kind=kind,
            kernel=self.kernel or state.executable.name,
            message=message,
            address=address,
            size=size,
            ctaid=context.ctaid,
            tid=context.tid,
            block_label=label,
            op_index=index,
            space=_SPACE_NAMES[bool(shared)],
            allocation=record.info() if record is not None else None,
        )

    def _race_report(
        self, state, lane, address, size, is_write, atomic, label,
        index, conflict,
    ) -> SanitizerReport:
        context = state.contexts[lane]
        access = "store" if is_write else "load"
        prior = conflict.prior_access()
        record = self.shadow.find_record(address)
        message = (
            f"shared-memory race on byte 0x{conflict.byte:x} "
            f"(barrier interval {conflict.epoch}): {access} of "
            f"{size} byte(s) at 0x{address:x} is unordered against "
            f"a {'write' if prior.write else 'read'} by another thread"
        )
        return SanitizerReport(
            kind="race",
            kernel=self.kernel or state.executable.name,
            message=message,
            address=address,
            size=size,
            ctaid=context.ctaid,
            tid=context.tid,
            block_label=label,
            op_index=index,
            space="shared",
            allocation=record.info() if record is not None else None,
            conflict=AccessInfo(
                ctaid=prior.ctaid,
                tid=prior.tid,
                block_label=prior.block_label,
                op_index=prior.op_index,
                write=prior.write,
                atomic=prior.atomic,
            ),
        )

    def _emit(self, report: SanitizerReport) -> None:
        if self.fatal:
            raise SanitizerError(
                format_sanitizer_report(report), report=report
            )
        key = report.dedup_key()
        existing = self._seen.get(key)
        if existing is not None:
            existing.count += 1
            return
        if len(self.reports) >= self.max_reports:
            self.suppressed += 1
            return
        self._seen[key] = report
        self.reports.append(report)


__all__ = [
    "KernelSanitizer",
    "SANITIZE_CHECKS",
    "apply_sanitize_env",
    "normalize_checks",
]
