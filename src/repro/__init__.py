"""repro — a reproduction of "Dynamic Compilation of Data-Parallel
Kernels for Vector Processors" (Kerr, Diamos, Yalamanchili; CGO 2012).

The package implements the paper's full stack: a PTX-dialect frontend,
a scalar mid-level IR, the vectorization transformation with
yield-on-diverge (Algorithms 1-4), thread-invariant expression
elimination, a dynamic execution manager with dynamic/static warp
formation, a translation cache, and a simulated multicore vector
processor with a calibrated cost model.

Quick start::

    from repro import Device
    device = Device()
    device.register_module(ptx_text)
    out = device.malloc(n * 4)
    device.launch("vecAdd", grid=(blocks, 1, 1),
                  block=(threads, 1, 1), args=[a, b, out, n])
"""

from .api.device import Device
from .api.stream import Event, LaunchFuture, Stream
from .errors import (
    BarrierDeadlock,
    DeadlineExpired,
    DeviceLost,
    KernelTrap,
    LaunchError,
    LaunchTimeout,
    QuotaExceeded,
    SanitizerError,
    ServiceUnavailable,
)
from .runtime.cache_store import CacheStore
from .sanitizer import (
    SanitizerReport,
    format_sanitizer_report,
    format_sanitizer_reports,
)
from .machine.descriptor import (
    MachineDescription,
    avx_machine,
    knights_ferry,
    sandybridge,
)
from .runtime.config import (
    ExecutionConfig,
    baseline_config,
    static_tie_config,
    vectorized_config,
)
from .runtime.pool import DevicePool, RetryPolicy, TenantSession
from .runtime.state_store import StateStore
from .runtime.statistics import WorkerHealth
from .runtime.traps import format_device_lost, format_timeout, format_trap

__version__ = "1.0.0"

__all__ = [
    "BarrierDeadlock",
    "CacheStore",
    "DeadlineExpired",
    "Device",
    "DeviceLost",
    "DevicePool",
    "Event",
    "ExecutionConfig",
    "KernelTrap",
    "LaunchError",
    "LaunchFuture",
    "LaunchTimeout",
    "MachineDescription",
    "QuotaExceeded",
    "RetryPolicy",
    "ServiceUnavailable",
    "StateStore",
    "Stream",
    "TenantSession",
    "SanitizerError",
    "SanitizerReport",
    "WorkerHealth",
    "avx_machine",
    "baseline_config",
    "format_device_lost",
    "format_sanitizer_report",
    "format_sanitizer_reports",
    "format_timeout",
    "format_trap",
    "knights_ferry",
    "sandybridge",
    "static_tie_config",
    "vectorized_config",
    "__version__",
]
