"""Pass manager: ordered application of IR transforms with statistics.

The dynamic translation cache composes a pipeline per specialization
request (§5.1): vectorize, then the traditional cleanups (constant
folding, CSE, DCE, block fusion), then verify.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..ir.cfg import remove_unreachable_blocks
from ..ir.function import IRFunction
from ..ir.verifier import verify_function
from .block_merge import merge_blocks
from .constant_folding import fold_constants
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code


@dataclass
class PassResult:
    name: str
    changes: int
    seconds: float


@dataclass
class PassStatistics:
    """Accumulated record of every pass application."""

    results: List[PassResult] = field(default_factory=list)

    def total_changes(self, name: Optional[str] = None) -> int:
        return sum(
            r.changes
            for r in self.results
            if name is None or r.name == name
        )

    def report(self) -> str:
        lines = ["pass                      changes   seconds"]
        for result in self.results:
            lines.append(
                f"{result.name:<25} {result.changes:>7} "
                f"{result.seconds:>9.4f}"
            )
        return "\n".join(lines)


class PassManager:
    """Runs named function passes in order."""

    def __init__(self, verify: bool = True):
        self.verify = verify
        self.statistics = PassStatistics()
        self._passes: List[tuple] = []

    def add(
        self, name: str, function_pass: Callable[[IRFunction], int]
    ) -> "PassManager":
        self._passes.append((name, function_pass))
        return self

    def run(self, function: IRFunction) -> IRFunction:
        for name, function_pass in self._passes:
            start = time.perf_counter()
            changes = function_pass(function) or 0
            elapsed = time.perf_counter() - start
            self.statistics.results.append(
                PassResult(name=name, changes=changes, seconds=elapsed)
            )
        if self.verify:
            verify_function(function)
        return function


def scalar_prepass_pipeline(
    config, machine, verify: bool = True
) -> Optional[PassManager]:
    """Scalar-stage transforms the translation cache applies before
    entry points are assigned (so every width specialization sees the
    same control structure): if-conversion, then control-flow melding.
    Returns ``None`` when the config enables neither."""
    from .if_conversion import if_convert
    from .melding import meld_function

    if not (config.if_conversion or config.meld):
        return None
    manager = PassManager(verify=verify)
    if config.if_conversion:
        manager.add("if-conversion", if_convert)
    if config.meld:

        def run_meld(function: IRFunction) -> int:
            report = meld_function(
                function, machine, config.max_warp_size
            )
            return report.melded_regions

        manager.add("meld", run_meld)
    return manager


def standard_cleanup_pipeline(verify: bool = True) -> PassManager:
    """The post-vectorization cleanup pipeline the translation cache
    applies (constant folding -> CSE -> DCE -> block fusion)."""
    manager = PassManager(verify=verify)
    manager.add("constant-folding", fold_constants)
    manager.add("cse", eliminate_common_subexpressions)
    manager.add("dce", eliminate_dead_code)
    manager.add("block-merge", merge_blocks)
    manager.add("unreachable-elim", remove_unreachable_blocks)
    return manager


DEFAULT_PASSES: Dict[str, Callable[[IRFunction], int]] = {
    "constant-folding": fold_constants,
    "cse": eliminate_common_subexpressions,
    "dce": eliminate_dead_code,
    "block-merge": merge_blocks,
    "unreachable-elim": remove_unreachable_blocks,
}
