"""Thread-invariance (uniformity) analysis.

Supports the thread-invariant expression elimination of §6.2. A scalar
register is *uniform* when every thread of the kernel that executes its
definition computes the same value — so a warp (formed under the
configured warp-formation policy) holds identical lanes for it and the
replicated instruction bundle can collapse to one scalar instruction.

The analysis is deliberately conservative and sound:

1. **Data variance** propagates from variant sources (thread indices,
   atomic results, votes, loads at variant addresses) through def-use
   chains to a fixed point.
2. **Path effects** are excluded by restricting uniform definitions to
   the *pre-divergence region*: blocks reachable from the entry without
   crossing a variant conditional branch. In that region all threads
   execute the identical block sequence (uniform branches send every
   thread the same way), so equal inputs imply equal values regardless
   of how warps are formed or re-formed.

Under **static warp formation** (consecutive ``tid.x`` within one CTA,
§6.2) the per-warp identity of ``ctaid.*``/``tid.y``/``tid.z`` makes
those context reads uniform as well, and ``tid.x`` becomes affine in
the lane index (handled by the vectorizer's replication rewrite).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..ir.cfg import ControlFlowGraph
from ..ir.function import IRFunction
from ..ir.instructions import (
    AtomicRMW,
    BinaryOp,
    CondBranch,
    ContextRead,
    Convert,
    FusedMultiplyAdd,
    Load,
    Reduce,
    Store,
    UnaryOp,
)
from ..ir.values import Constant, VirtualRegister
from ..ptx.types import AddressSpace

#: Context fields equal for every thread in the grid.
GRID_UNIFORM_FIELDS = frozenset(
    {
        "ntid.x",
        "ntid.y",
        "ntid.z",
        "nctaid.x",
        "nctaid.y",
        "nctaid.z",
    }
)

#: Context fields additionally equal across a warp under static warp
#: formation (consecutive tid.x, same CTA / same y,z row).
STATIC_WARP_UNIFORM_FIELDS = GRID_UNIFORM_FIELDS | frozenset(
    {
        "ctaid.x",
        "ctaid.y",
        "ctaid.z",
        "tid.y",
        "tid.z",
    }
)


@dataclass
class UniformityInfo:
    """Result of the analysis."""

    #: Names of registers proven uniform (safe to keep scalar).
    uniform_registers: Set[str] = field(default_factory=set)
    #: Labels of blocks in the pre-divergence region.
    pre_divergence_blocks: Set[str] = field(default_factory=set)
    #: Conditional branches whose predicate is variant.
    variant_branch_blocks: Set[str] = field(default_factory=set)

    def is_uniform(self, value) -> bool:
        if isinstance(value, Constant):
            return True
        if isinstance(value, VirtualRegister):
            return value.name in self.uniform_registers
        return False


def analyze_uniformity(
    function: IRFunction, static_warps: bool = False
) -> UniformityInfo:
    """Compute uniform registers of a *scalar* IR function."""
    uniform_fields = (
        STATIC_WARP_UNIFORM_FIELDS if static_warps else GRID_UNIFORM_FIELDS
    )
    definitions: Dict[str, List[tuple]] = {}
    for block in function.ordered_blocks():
        for instruction in block.all_instructions():
            target = instruction.defined()
            if target is not None:
                definitions.setdefault(target.name, []).append(
                    (block.label, instruction)
                )

    variant: Set[str] = set()

    def value_variant(value) -> bool:
        return isinstance(value, VirtualRegister) and value.name in variant

    def instruction_variant(instruction) -> bool:
        if isinstance(instruction, ContextRead):
            return instruction.field_name not in uniform_fields
        if isinstance(instruction, AtomicRMW):
            return True
        if isinstance(instruction, Reduce):
            # Warp votes are warp-uniform but not thread-invariant.
            return True
        if isinstance(instruction, Load):
            if instruction.space is AddressSpace.param:
                return value_variant(instruction.base)
            if instruction.space is AddressSpace.local:
                # Thread-private storage is inherently per-thread.
                return True
            return value_variant(instruction.base)
        return any(value_variant(v) for v in instruction.uses())

    changed = True
    while changed:
        changed = False
        for name, defs in definitions.items():
            if name in variant:
                continue
            if any(instruction_variant(inst) for _, inst in defs):
                variant.add(name)
                changed = True

    # Pre-divergence region: BFS from entry, do not expand past blocks
    # terminated by a variant conditional branch.
    variant_branch_blocks: Set[str] = set()
    for block in function.ordered_blocks():
        terminator = block.terminator
        if isinstance(terminator, CondBranch) and value_variant(
            terminator.predicate
        ):
            variant_branch_blocks.add(block.label)

    # A block is pre-divergence iff it is reachable from the entry and
    # *no* path from a variant branch reaches it (a loop from divergent
    # code back to early blocks taints them).
    cfg = ControlFlowGraph(function)
    tainted: Set[str] = set()
    frontier: List[str] = []
    for label in variant_branch_blocks:
        frontier.extend(cfg.successors.get(label, []))
    while frontier:
        label = frontier.pop()
        if label in tainted:
            continue
        tainted.add(label)
        frontier.extend(cfg.successors.get(label, []))
    pre_divergence = cfg.reachable() - tainted

    uniform: Set[str] = set()
    for name, defs in definitions.items():
        if name in variant:
            continue
        if all(label in pre_divergence for label, _ in defs):
            uniform.add(name)

    return UniformityInfo(
        uniform_registers=uniform,
        pre_divergence_blocks=pre_divergence,
        variant_branch_blocks=variant_branch_blocks,
    )


def count_thread_invariant_operands(function: IRFunction) -> tuple:
    """(uniform register count, total register count) — the statistic
    Collange et al. report (§6.2 cites ~15% thread-invariant operands).
    """
    info = analyze_uniformity(function, static_warps=True)
    total = len(function.registers())
    return len(info.uniform_registers), total





# ---------------------------------------------------------------------------
# Affine analysis (the paper's §4 future work: "we envision divergence
# analysis [11] and affine analysis [12] to identify opportunities in
# which multiple threads are guaranteed to access contiguous data")
# ---------------------------------------------------------------------------


def analyze_affine(
    function: IRFunction, uniformity: UniformityInfo
) -> Dict[str, int]:
    """Map register names to their per-thread stride in ``tid.x``.

    A register is *thread-affine with stride s* when every thread that
    defines it computes ``f(uniform state) + s * tid.x``. Under static
    warp formation (consecutive ``tid.x``), lane i of any warp then
    holds ``lane0 + i*s`` — so a memory access whose address has
    stride equal to the element size touches contiguous locations and
    can be serviced by one vector load/store.

    Soundness: facts are only derived for registers with a *single*
    static definition whose inputs are themselves affine/uniform, so
    the value is the same function of ``tid.x`` on every path that
    defines it. Uniform registers (stride 0) come from the uniformity
    analysis; constants are stride 0.
    """
    definitions: Dict[str, List[object]] = {}
    for block in function.ordered_blocks():
        for instruction in block.all_instructions():
            target = instruction.defined()
            if target is not None:
                definitions.setdefault(target.name, []).append(
                    instruction
                )

    strides: Dict[str, int] = {
        name: 0 for name in uniformity.uniform_registers
    }

    def stride_of(value) -> Optional[int]:
        if isinstance(value, Constant):
            return 0
        if isinstance(value, VirtualRegister):
            return strides.get(value.name)
        return None

    def constant_value(value) -> Optional[int]:
        """Resolve integer constants through single-def movs and
        integer conversions (the translator lowers ``mul.wide x, 4``
        through a convert of the literal)."""
        seen = 0
        while seen < 8:
            if isinstance(value, Constant):
                if isinstance(value.value, bool):
                    return None
                if isinstance(value.value, int):
                    return value.value
                return None
            if not isinstance(value, VirtualRegister):
                return None
            defs = definitions.get(value.name)
            if defs is None or len(defs) != 1:
                return None
            definition = defs[0]
            if isinstance(definition, UnaryOp) and definition.op == "mov":
                value = definition.a
            elif isinstance(definition, Convert) and (
                definition.dst_type.is_integer
                and definition.src_type.is_integer
            ):
                value = definition.src
            else:
                return None
            seen += 1
        return None

    def derive(instruction) -> Optional[int]:
        if isinstance(instruction, ContextRead):
            if instruction.field_name == "tid.x":
                return 1
            if instruction.field_name in STATIC_WARP_UNIFORM_FIELDS:
                # Fixed per thread regardless of where the read sits.
                return 0
            return None
        if isinstance(instruction, Load):
            # Kernel parameters are immutable for the whole launch, so
            # a param load at a uniform address is stride 0 wherever it
            # appears.
            if (
                instruction.space is AddressSpace.param
                and stride_of(instruction.base) == 0
            ):
                return 0
            return None
        if isinstance(instruction, UnaryOp):
            if instruction.op == "mov":
                return stride_of(instruction.a)
            return None
        if isinstance(instruction, Convert):
            # Widening integer conversions preserve the stride (the
            # affine relation is exact in the wider type).
            if (
                instruction.dst_type.is_integer
                and instruction.src_type.is_integer
                and instruction.dst_type.size
                >= instruction.src_type.size
            ):
                return stride_of(instruction.src)
            return None
        if isinstance(instruction, BinaryOp):
            a = stride_of(instruction.a)
            b = stride_of(instruction.b)
            op = instruction.op
            if op == "add" and a is not None and b is not None:
                return a + b
            if op == "sub" and a is not None and b is not None:
                return a - b
            if op == "mul":
                b_value = constant_value(instruction.b)
                if a is not None and b_value is not None:
                    return a * b_value
                a_value = constant_value(instruction.a)
                if b is not None and a_value is not None:
                    return b * a_value
                if a == 0 and b == 0:
                    return 0
                return None
            if op == "shl" and a is not None:
                b_value = constant_value(instruction.b)
                if b_value is not None and 0 <= b_value < 64:
                    return a << b_value
                return None
            if a == 0 and b == 0:
                return 0
            return None
        if isinstance(instruction, FusedMultiplyAdd):
            a = stride_of(instruction.a)
            b = stride_of(instruction.b)
            c = stride_of(instruction.c)
            if c is None:
                return None
            b_value = constant_value(instruction.b)
            if a is not None and b_value is not None:
                return a * b_value + c
            a_value = constant_value(instruction.a)
            if b is not None and a_value is not None:
                return b * a_value + c
            if a == 0 and b == 0:
                return c
            return None
        return None

    changed = True
    while changed:
        changed = False
        for name, defs in definitions.items():
            if name in strides or len(defs) != 1:
                continue
            stride = derive(defs[0])
            if stride is not None:
                strides[name] = stride
                changed = True
    return strides


__all__ = [
    "GRID_UNIFORM_FIELDS",
    "STATIC_WARP_UNIFORM_FIELDS",
    "UniformityInfo",
    "analyze_affine",
    "analyze_uniformity",
    "count_thread_invariant_operands",
]
