"""Common-subexpression elimination.

§6.2: "Standard common subexpression elimination optimizations
downstream of vectorization eliminates redundant thread-invariant
expressions via a conservative analysis." This pass implements local
value numbering per block, extended across the dominator tree
(an expression computed in a dominating block is reusable), over the
pure instruction set: arithmetic, compares, selects, conversions,
intrinsics, context reads and extract/insert/broadcast shuffles.

Because the IR is not SSA, an available expression dies when any of its
source registers — or its destination — is redefined. The pass tracks
that invalidation precisely within a block and conservatively discards
cross-block expressions whose inputs are redefined anywhere in the
function more than once.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.dominance import DominatorTree
from ..ir.function import IRFunction
from ..ir.instructions import (
    BinaryOp,
    Broadcast,
    Compare,
    ContextRead,
    Convert,
    ExtractElement,
    FusedMultiplyAdd,
    InsertElement,
    Intrinsic,
    Select,
    UnaryOp,
)
from ..ir.values import Constant, VirtualRegister

_COMMUTATIVE = {"add", "mul", "and", "or", "xor", "min", "max"}


def _value_key(value) -> Optional[tuple]:
    if isinstance(value, Constant):
        return ("const", value.value, value.dtype.value)
    if isinstance(value, VirtualRegister):
        return ("reg", value.name, value.width)
    if value is None:
        return ("none",)
    return None


def _expression_key(instruction) -> Optional[tuple]:
    """Hashable identity of a pure computation, or None if the
    instruction is not CSE-able."""
    if isinstance(instruction, BinaryOp):
        a = _value_key(instruction.a)
        b = _value_key(instruction.b)
        if a is None or b is None:
            return None
        if instruction.op in _COMMUTATIVE and b < a:
            a, b = b, a
        return ("bin", instruction.op, instruction.dtype.value, a, b)
    if isinstance(instruction, UnaryOp):
        a = _value_key(instruction.a)
        if a is None:
            return None
        return ("un", instruction.op, instruction.dtype.value, a)
    if isinstance(instruction, FusedMultiplyAdd):
        keys = tuple(
            _value_key(v)
            for v in (instruction.a, instruction.b, instruction.c)
        )
        if any(k is None for k in keys):
            return None
        return ("fma", instruction.dtype.value) + keys
    if isinstance(instruction, Compare):
        a = _value_key(instruction.a)
        b = _value_key(instruction.b)
        if a is None or b is None:
            return None
        return ("cmp", instruction.op, instruction.dtype.value, a, b)
    if isinstance(instruction, Select):
        keys = tuple(
            _value_key(v)
            for v in (instruction.a, instruction.b, instruction.predicate)
        )
        if any(k is None for k in keys):
            return None
        return ("sel", instruction.dtype.value) + keys
    if isinstance(instruction, Convert):
        src = _value_key(instruction.src)
        if src is None:
            return None
        return (
            "cvt",
            instruction.dst_type.value,
            instruction.src_type.value,
            instruction.rounding,
            src,
        )
    if isinstance(instruction, Intrinsic):
        keys = tuple(_value_key(v) for v in instruction.args)
        if any(k is None for k in keys):
            return None
        return ("call", instruction.name, instruction.dtype.value) + keys
    if isinstance(instruction, ContextRead):
        if instruction.field_name in ("clock", "resume_point"):
            return None
        return ("ctx", instruction.field_name, instruction.lane)
    if isinstance(instruction, ExtractElement):
        src = _value_key(instruction.src)
        if src is None:
            return None
        return ("ext", src, instruction.index)
    if isinstance(instruction, InsertElement):
        src = _value_key(instruction.src)
        scalar = _value_key(instruction.scalar)
        if scalar is None:
            return None
        return ("ins", src, scalar, instruction.index)
    if isinstance(instruction, Broadcast):
        src = _value_key(instruction.src)
        if src is None:
            return None
        return ("bcast", src)
    return None


def _key_registers(key: tuple) -> List[str]:
    """Register names an expression key depends on."""
    names: List[str] = []
    stack = list(key)
    while stack:
        item = stack.pop()
        if isinstance(item, tuple):
            if len(item) == 3 and item[0] == "reg":
                names.append(item[1])
            else:
                stack.extend(item)
    return names


def _definition_counts(function: IRFunction) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    for instruction in function.instructions():
        target = instruction.defined()
        if target is not None:
            counts[target.name] = counts.get(target.name, 0) + 1
    return counts


def eliminate_common_subexpressions(function: IRFunction) -> int:
    """Run dominator-scoped value numbering. Returns replacements made.

    Replaced instructions become copies (``mov``) from the equivalent
    register so downstream DCE can drop them when unused.
    """
    replaced = 0
    dominators = DominatorTree(function)
    definition_counts = _definition_counts(function)

    def stable(name: str) -> bool:
        return definition_counts.get(name, 0) <= 1

    # Scope tables: block label -> available expressions defined there.
    available_per_block: Dict[str, Dict[tuple, VirtualRegister]] = {}

    def lookup(label: str, key: tuple) -> Optional[VirtualRegister]:
        current = label
        while True:
            table = available_per_block.get(current)
            if table is not None and key in table:
                return table[key]
            parent = dominators.immediate_dominator(current)
            if parent is None or parent == current:
                return None
            current = parent

    for label in _domtree_preorder(dominators, function):
        block = function.blocks[label]
        local: Dict[tuple, VirtualRegister] = {}
        available_per_block[label] = local
        # Map expr keys defined locally; invalidate on redefinition.
        by_register: Dict[str, List[tuple]] = {}
        new_instructions = []
        for instruction in block.instructions:
            key = _expression_key(instruction)
            target = instruction.defined()
            if key is not None:
                existing = None
                if key in local:
                    existing = local[key]
                else:
                    candidate = lookup(label, key)
                    if candidate is not None and all(
                        stable(name) for name in _key_registers(key)
                    ) and stable(candidate.name):
                        existing = candidate
                if (
                    existing is not None
                    and target is not None
                    and existing.dtype == target.dtype
                    and existing.width == target.width
                ):
                    new_instructions.append(
                        UnaryOp(
                            op="mov",
                            dtype=target.dtype,
                            dst=target,
                            a=existing,
                        )
                    )
                    replaced += 1
                    _invalidate(local, by_register, target.name)
                    continue
            new_instructions.append(instruction)
            if target is not None:
                _invalidate(local, by_register, target.name)
                # Self-referential computations (x = fma(x, m, c)) must
                # not be recorded: the expression reads the value the
                # instruction itself just destroyed.
                if key is not None and target.name not in _key_registers(
                    key
                ):
                    local[key] = target
                    for name in _key_registers(key) + [target.name]:
                        by_register.setdefault(name, []).append(key)
        block.instructions = new_instructions
    return replaced


def _invalidate(
    local: Dict[tuple, VirtualRegister],
    by_register: Dict[str, List[tuple]],
    name: str,
) -> None:
    for key in by_register.pop(name, []):
        local.pop(key, None)
    # Also drop expressions whose *result* register is being renamed.
    stale = [key for key, reg in local.items() if reg.name == name]
    for key in stale:
        local.pop(key, None)


def _domtree_preorder(
    dominators: DominatorTree, function: IRFunction
) -> List[str]:
    children: Dict[str, List[str]] = {}
    entry = function.entry_label
    for label in function.blocks:
        parent = dominators.immediate_dominator(label)
        if parent is not None and parent != label:
            children.setdefault(parent, []).append(label)
    order: List[str] = []
    stack = [entry]
    seen = set()
    while stack:
        label = stack.pop()
        if label in seen:
            continue
        seen.add(label)
        order.append(label)
        stack.extend(reversed(children.get(label, [])))
    # Unreachable blocks still get a local pass.
    for label in function.blocks:
        if label not in seen:
            order.append(label)
    return order
