"""Control-flow melding: merge the arms of divergent diamonds (DARM).

The yield-on-diverge execution model makes branch divergence the
dominant modeled cost on divergence-heavy kernels: every divergent
branch costs a yield round trip plus an execution-manager re-formation
event (Fig. 9). DARM ("Control-Flow Melding for SIMT Thread Divergence
Reduction") observes that the two arms of a divergent branch are often
*similar* — same loads, same multiplies, different operands — and melds
them so both paths execute as one warp.

This pass implements DARM's pipeline on the scalar IR, before
vectorization (the same stage as if-conversion, so every width
specialization sees the melded control structure):

1. **Region detection.** A meldable region is a diamond: a conditional
   branch whose predicate the uniformity analysis cannot prove uniform,
   with two distinct single-predecessor straight-line arms branching to
   a common join.
2. **Alignment.** The arms' instruction sequences are aligned with
   Needleman-Wunsch sequence alignment. Two instructions may pair when
   their opcode/type signatures are compatible; the pair's score is the
   cycle charge saved by executing it once, minus the selects needed to
   reconcile differing operands. Side-effecting instructions (loads,
   stores, atomics) participate *only* as pairs — they must find a
   compatible partner in the other arm or the region is rejected,
   because unpaired memory operations would execute speculatively on
   the wrong path.
3. **Predicated rewrite.** Aligned pairs execute once, with a
   ``select`` per differing operand choosing between the taken and
   fallthrough arm's value (the if-conversion machinery); a melded
   memory operation therefore issues exactly the access the executing
   thread's arm would have issued — same address, same value — so
   guest memory, trap coordinates and sanitizer findings are
   preserved. Unpaired *pure* instructions execute speculatively into
   fresh registers. Register state merges at the join with one select
   per register either arm defines.
4. **Profitability.** The rewrite is applied only when the cost model
   predicts the melded straight line cheaper than the divergent
   original at the configured maximum warp width:
   ``melded < branch + p_div * (both arms + divergence_penalty)
   + (1 - p_div) * avg(arm)`` with ``p_div = 1 - 2^(1-w)`` (the chance
   a w-thread warp of independent threads actually splits). At width 1
   nothing ever melds — there is no divergence to avoid.

Every candidate region produces a :class:`MeldDecision` whether melded
or rejected; the :class:`MeldReport` is attached to the function (and
recorded by the translation cache) so launches can surface meld
activity on ``LaunchStatistics``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.cfg import ControlFlowGraph
from ..ir.dominance import DominatorTree
from ..ir.function import IRFunction
from ..ir.instructions import (
    AtomicRMW,
    BinaryOp,
    Branch,
    Compare,
    CondBranch,
    ContextRead,
    Convert,
    FusedMultiplyAdd,
    Intrinsic,
    Load,
    Select,
    Store,
    UnaryOp,
)
from ..ir.values import VirtualRegister
from ..machine.costmodel import divergence_penalty, scalar_instruction_cycles
from ..machine.descriptor import MachineDescription
from .block_merge import merge_blocks
from .uniformity import analyze_uniformity

#: Pure instructions: safe to execute speculatively on the not-taken
#: path (the if-conversion argument — no side effects, no faults beyond
#: the machine's defined arithmetic behaviour).
_SPECULABLE = (
    BinaryOp,
    UnaryOp,
    FusedMultiplyAdd,
    Compare,
    Select,
    Convert,
    Intrinsic,
)

#: Side-effecting / faulting instructions: meldable, but only as an
#: aligned pair (each thread then issues exactly its own arm's access).
_ALIGN_ONLY = (Load, Store, AtomicRMW)

#: Arms longer than this are never considered (alignment is quadratic).
DEFAULT_MAX_ARM_INSTRUCTIONS = 48

#: DP bonus forcing side-effecting instructions to pair when any
#: compatible partner exists (their alignment is a correctness
#: precondition, not a profit decision; real cycles are re-estimated
#: from the traceback).
_ALIGN_BONUS = 1.0e6


@dataclass
class MeldDecision:
    """Outcome for one candidate diamond region."""

    branch_block: str
    taken: str
    fallthrough: str
    join: str
    melded: bool
    reason: str
    aligned_pairs: int = 0
    #: predicted cycles per warp execution of the region
    est_divergent_cycles: float = 0.0
    est_melded_cycles: float = 0.0

    @property
    def predicted_saving(self) -> float:
        if not self.melded:
            return 0.0
        return self.est_divergent_cycles - self.est_melded_cycles


@dataclass
class MeldReport:
    """Per-function record of every meld decision."""

    function: str
    warp_size: int
    decisions: List[MeldDecision] = field(default_factory=list)

    @property
    def melded_regions(self) -> int:
        return sum(1 for d in self.decisions if d.melded)

    @property
    def rejected_regions(self) -> int:
        return sum(1 for d in self.decisions if not d.melded)

    @property
    def predicted_saving(self) -> float:
        return sum(d.predicted_saving for d in self.decisions)


# ---------------------------------------------------------------------------
# Compatibility signatures and operand access
# ---------------------------------------------------------------------------


def _signature(instruction) -> Optional[tuple]:
    """Opcode/type compatibility class; ``None`` = never meldable."""
    if isinstance(instruction, BinaryOp):
        return ("bin", instruction.op, instruction.dtype)
    if isinstance(instruction, UnaryOp):
        return ("un", instruction.op, instruction.dtype)
    if isinstance(instruction, FusedMultiplyAdd):
        return ("fma", instruction.dtype)
    if isinstance(instruction, Compare):
        return ("cmp", instruction.op, instruction.dtype)
    if isinstance(instruction, Select):
        return ("sel", instruction.dtype)
    if isinstance(instruction, Convert):
        return (
            "cvt",
            instruction.dst_type,
            instruction.src_type,
            instruction.rounding,
        )
    if isinstance(instruction, Intrinsic):
        return (
            "call",
            instruction.name,
            instruction.dtype,
            len(instruction.args),
        )
    if isinstance(instruction, Load):
        return (
            "ld",
            instruction.space,
            instruction.dtype,
            instruction.offset,
            instruction.lane,
            instruction.volatile,
        )
    if isinstance(instruction, Store):
        return (
            "st",
            instruction.space,
            instruction.dtype,
            instruction.offset,
            instruction.lane,
            instruction.volatile,
        )
    if isinstance(instruction, AtomicRMW):
        return (
            "atom",
            instruction.op,
            instruction.space,
            instruction.dtype,
            instruction.offset,
            instruction.lane,
            instruction.compare is None,
            instruction.dst is None,
        )
    if isinstance(instruction, ContextRead):
        # ctx.clock observes the schedule itself; melding changes the
        # schedule, so regions reading it are left alone.
        if instruction.field_name == "clock":
            return None
        return ("ctx", instruction.field_name, instruction.dtype)
    return None


def _operands(instruction) -> List[object]:
    """Used values in the canonical order :func:`_rebuild` consumes."""
    if isinstance(instruction, BinaryOp):
        return [instruction.a, instruction.b]
    if isinstance(instruction, UnaryOp):
        return [instruction.a]
    if isinstance(instruction, FusedMultiplyAdd):
        return [instruction.a, instruction.b, instruction.c]
    if isinstance(instruction, Compare):
        return [instruction.a, instruction.b]
    if isinstance(instruction, Select):
        return [instruction.a, instruction.b, instruction.predicate]
    if isinstance(instruction, Convert):
        return [instruction.src]
    if isinstance(instruction, Intrinsic):
        return list(instruction.args)
    if isinstance(instruction, Load):
        return [instruction.base]
    if isinstance(instruction, Store):
        return [instruction.base, instruction.value]
    if isinstance(instruction, AtomicRMW):
        operands = [instruction.base, instruction.value]
        if instruction.compare is not None:
            operands.append(instruction.compare)
        return operands
    if isinstance(instruction, ContextRead):
        return []
    raise AssertionError(f"not meldable: {instruction!r}")


def _rebuild(template, operands: List[object], dst):
    """A copy of ``template`` with new operands and destination."""
    if isinstance(template, BinaryOp):
        return BinaryOp(
            op=template.op, dtype=template.dtype, dst=dst,
            a=operands[0], b=operands[1],
        )
    if isinstance(template, UnaryOp):
        return UnaryOp(
            op=template.op, dtype=template.dtype, dst=dst,
            a=operands[0],
        )
    if isinstance(template, FusedMultiplyAdd):
        return FusedMultiplyAdd(
            dtype=template.dtype, dst=dst,
            a=operands[0], b=operands[1], c=operands[2],
        )
    if isinstance(template, Compare):
        return Compare(
            op=template.op, dtype=template.dtype, dst=dst,
            a=operands[0], b=operands[1],
        )
    if isinstance(template, Select):
        return Select(
            dtype=template.dtype, dst=dst,
            a=operands[0], b=operands[1], predicate=operands[2],
        )
    if isinstance(template, Convert):
        return Convert(
            dst_type=template.dst_type, src_type=template.src_type,
            dst=dst, src=operands[0], rounding=template.rounding,
        )
    if isinstance(template, Intrinsic):
        return Intrinsic(
            name=template.name, dtype=template.dtype, dst=dst,
            args=list(operands),
        )
    if isinstance(template, Load):
        return Load(
            dtype=template.dtype, dst=dst, space=template.space,
            base=operands[0], offset=template.offset,
            lane=template.lane, volatile=template.volatile,
        )
    if isinstance(template, Store):
        return Store(
            dtype=template.dtype, space=template.space,
            base=operands[0], value=operands[1],
            offset=template.offset, lane=template.lane,
            volatile=template.volatile,
        )
    if isinstance(template, AtomicRMW):
        return AtomicRMW(
            op=template.op, dtype=template.dtype, dst=dst,
            space=template.space, base=operands[0], value=operands[1],
            compare=operands[2] if template.compare is not None else None,
            offset=template.offset, lane=template.lane,
        )
    if isinstance(template, ContextRead):
        return ContextRead(
            field_name=template.field_name, dtype=template.dtype,
            dst=dst, lane=template.lane,
        )
    raise AssertionError(f"not meldable: {template!r}")


def _value_dtype(value):
    return getattr(value, "dtype", None)


def _values_equal(a, b) -> bool:
    """Conservative static equality of two operand values."""
    if isinstance(a, VirtualRegister) and isinstance(b, VirtualRegister):
        return a.name == b.name
    if type(a) is type(b):
        try:
            return bool(a == b)
        except Exception:
            return False
    return False


# ---------------------------------------------------------------------------
# Region detection
# ---------------------------------------------------------------------------


def _arm_shape_ok(
    block: BasicBlock, join: str, cfg: ControlFlowGraph, limit: int
) -> bool:
    if len(cfg.predecessors.get(block.label, [])) != 1:
        return False
    if not isinstance(block.terminator, Branch):
        return False
    if block.terminator.target != join:
        return False
    return len(block.instructions) <= limit


def _match_diamond(
    function: IRFunction,
    cfg: ControlFlowGraph,
    block: BasicBlock,
    terminator: CondBranch,
    limit: int,
) -> Optional[Tuple[BasicBlock, BasicBlock, str]]:
    """Single-entry/single-exit divergent diamond, or ``None``."""
    if terminator.taken == terminator.fallthrough:
        return None
    taken = function.blocks.get(terminator.taken)
    fallthrough = function.blocks.get(terminator.fallthrough)
    if taken is None or fallthrough is None:
        return None
    if not (
        isinstance(taken.terminator, Branch)
        and isinstance(fallthrough.terminator, Branch)
        and taken.terminator.target == fallthrough.terminator.target
    ):
        return None
    join = taken.terminator.target
    if join in (taken.label, fallthrough.label, block.label):
        return None
    if not _arm_shape_ok(taken, join, cfg, limit):
        return None
    if not _arm_shape_ok(fallthrough, join, cfg, limit):
        return None
    return taken, fallthrough, join


def _meldable(instruction) -> bool:
    return _signature(instruction) is not None


# ---------------------------------------------------------------------------
# Alignment (Needleman-Wunsch over compatibility scores)
# ---------------------------------------------------------------------------


def _pair_benefit(
    left, right, machine: MachineDescription
) -> Optional[float]:
    """Cycles saved by melding ``left``/``right`` into one instruction,
    or ``None`` when the pair is incompatible."""
    signature = _signature(left)
    if signature is None or signature != _signature(right):
        return None
    left_ops = _operands(left)
    right_ops = _operands(right)
    if len(left_ops) != len(right_ops):
        return None
    selects = 0
    for a, b in zip(left_ops, right_ops):
        if _value_dtype(a) != _value_dtype(b):
            return None
        if not _values_equal(a, b):
            selects += 1
    saved = scalar_instruction_cycles(left, machine)
    return float(saved - machine.alu_cost * selects)


@dataclass
class _Alignment:
    """Traceback of the DP: ordered pair/gap plan over both arms."""

    #: ("pair", l, r) | ("left", l, None) | ("right", None, r)
    plan: List[Tuple[str, Optional[int], Optional[int]]]
    pairs: int


def _align(
    left: List[object], right: List[object], machine: MachineDescription
) -> _Alignment:
    n, m = len(left), len(right)
    score = [[0.0] * (m + 1) for _ in range(n + 1)]
    move = [[0] * (m + 1) for _ in range(n + 1)]  # 1=pair 2=left 3=right
    for i in range(1, n + 1):
        move[i][0] = 2
    for j in range(1, m + 1):
        move[0][j] = 3
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            best = score[i - 1][j]
            best_move = 2
            if score[i][j - 1] > best:
                best = score[i][j - 1]
                best_move = 3
            benefit = _pair_benefit(left[i - 1], right[j - 1], machine)
            if benefit is not None:
                if isinstance(left[i - 1], _ALIGN_ONLY):
                    benefit += _ALIGN_BONUS
                if benefit > 0:
                    candidate = score[i - 1][j - 1] + benefit
                    if candidate > best:
                        best = candidate
                        best_move = 1
            score[i][j] = best
            move[i][j] = best_move
    plan: List[Tuple[str, Optional[int], Optional[int]]] = []
    i, j = n, m
    while i > 0 or j > 0:
        step = move[i][j]
        if step == 1:
            i -= 1
            j -= 1
            plan.append(("pair", i, j))
        elif step == 2:
            i -= 1
            plan.append(("left", i, None))
        else:
            j -= 1
            plan.append(("right", None, j))
    plan.reverse()
    return _Alignment(
        plan=plan, pairs=sum(1 for kind, _, _ in plan if kind == "pair")
    )


# ---------------------------------------------------------------------------
# Profitability
# ---------------------------------------------------------------------------


def _estimate(
    left: List[object],
    right: List[object],
    alignment: _Alignment,
    join_registers: int,
    machine: MachineDescription,
    warp_size: int,
) -> Tuple[float, float]:
    """(divergent, melded) predicted cycles per warp execution."""
    cost_left = sum(scalar_instruction_cycles(i, machine) for i in left)
    cost_right = sum(scalar_instruction_cycles(i, machine) for i in right)
    if warp_size <= 1:
        p_div = 0.0
    else:
        p_div = 1.0 - 2.0 ** (1 - warp_size)
    divergent = (
        machine.branch_cost
        + p_div
        * (cost_left + cost_right + divergence_penalty(machine, warp_size))
        + (1.0 - p_div) * 0.5 * (cost_left + cost_right)
    )
    melded = 0.0
    for kind, l_index, r_index in alignment.plan:
        if kind == "pair":
            melded += scalar_instruction_cycles(left[l_index], machine)
            for a, b in zip(
                _operands(left[l_index]), _operands(right[r_index])
            ):
                if not _values_equal(a, b):
                    melded += machine.alu_cost
        elif kind == "left":
            melded += scalar_instruction_cycles(left[l_index], machine)
        else:
            melded += scalar_instruction_cycles(right[r_index], machine)
    melded += machine.alu_cost * join_registers
    return divergent, melded


# ---------------------------------------------------------------------------
# Rewrite
# ---------------------------------------------------------------------------


class _ArmState:
    """Renames and final values of one arm during the rewrite."""

    def __init__(self):
        self.renames: Dict[str, object] = {}
        #: original name -> (original register, final value)
        self.final: Dict[str, Tuple[VirtualRegister, object]] = {}

    def subst(self, value):
        if isinstance(value, VirtualRegister):
            return self.renames.get(value.name, value)
        return value


def _apply_meld(
    function: IRFunction,
    block: BasicBlock,
    terminator: CondBranch,
    taken: BasicBlock,
    fallthrough: BasicBlock,
    join: str,
    alignment: _Alignment,
    defined_before: set,
) -> None:
    predicate = terminator.predicate
    block.terminator = None
    out = block.instructions
    left_state = _ArmState()
    right_state = _ArmState()
    left = taken.instructions
    right = fallthrough.instructions

    def fresh_like(register: VirtualRegister) -> VirtualRegister:
        return function.fresh_register(
            register.dtype, width=register.width, hint="meld"
        )

    def emit_gap(instruction, state: _ArmState) -> None:
        operands = [state.subst(v) for v in _operands(instruction)]
        target = instruction.defined()
        dst = None
        if target is not None:
            dst = fresh_like(target)
            state.renames[target.name] = dst
            state.final[target.name] = (target, dst)
        out.append(_rebuild(instruction, operands, dst))

    def emit_pair(l_instruction, r_instruction) -> None:
        l_ops = [left_state.subst(v) for v in _operands(l_instruction)]
        r_ops = [right_state.subst(v) for v in _operands(r_instruction)]
        merged: List[object] = []
        for a, b in zip(l_ops, r_ops):
            if _values_equal(a, b):
                merged.append(a)
                continue
            selected = function.fresh_register(
                _value_dtype(a), width=getattr(a, "width", 1), hint="meld"
            )
            out.append(
                Select(
                    dtype=_value_dtype(a), dst=selected,
                    a=a, b=b, predicate=predicate,
                )
            )
            merged.append(selected)
        l_target = l_instruction.defined()
        r_target = r_instruction.defined()
        dst = None
        if l_target is not None:
            dst = fresh_like(l_target)
            left_state.renames[l_target.name] = dst
            left_state.final[l_target.name] = (l_target, dst)
        if r_target is not None:
            if dst is None:
                dst = fresh_like(r_target)
            right_state.renames[r_target.name] = dst
            right_state.final[r_target.name] = (r_target, dst)
        out.append(_rebuild(l_instruction, merged, dst))

    for kind, l_index, r_index in alignment.plan:
        if kind == "pair":
            emit_pair(left[l_index], right[r_index])
        elif kind == "left":
            emit_gap(left[l_index], left_state)
        else:
            emit_gap(right[r_index], right_state)

    # Merge register state at the join: one select per register either
    # arm defines, writing the *original* register. A join write may
    # target the branch predicate's own register, so that one is
    # ordered last (all other selects must still read the old value).
    defined = sorted(set(left_state.final) | set(right_state.final))
    predicate_name = (
        predicate.name if isinstance(predicate, VirtualRegister) else None
    )
    defined.sort(key=lambda name: name == predicate_name)
    for name in defined:
        register, left_value = left_state.final.get(name, (None, None))
        fall_register, right_value = right_state.final.get(
            name, (None, None)
        )
        register = register or fall_register
        if (
            left_value is None or right_value is None
        ) and name not in defined_before:
            # Only one arm defines this register and it has no
            # definition dominating the branch: the other path's value
            # is undefined, so (in any verifier-valid program) the
            # register is dead past the join unless this arm ran — an
            # unconditional move of the speculative value is exact.
            value = left_value if left_value is not None else right_value
            out.append(
                UnaryOp(
                    op="mov", dtype=register.dtype, dst=register, a=value
                )
            )
            continue
        out.append(
            Select(
                dtype=register.dtype,
                dst=register,
                a=left_value if left_value is not None else register,
                b=right_value if right_value is not None else register,
                predicate=predicate,
            )
        )
    block.append(Branch(join))
    function.remove_block(taken.label)
    function.remove_block(fallthrough.label)


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def meld_function(
    function: IRFunction,
    machine: MachineDescription,
    warp_size: int,
    max_arm_instructions: int = DEFAULT_MAX_ARM_INSTRUCTIONS,
) -> MeldReport:
    """Meld profitable divergent diamonds of a *scalar* IR function.

    Iterates to a fixed point (melding an inner diamond can straighten
    the arm of an outer one); the report of every decision is also
    attached to the function as ``function.meld_report``."""
    report = MeldReport(
        function=getattr(function, "name", "?"), warp_size=warp_size
    )
    rejected: set = set()
    changed = True
    while changed:
        changed = False
        info = analyze_uniformity(function)
        cfg = ControlFlowGraph(function)
        dominators = DominatorTree(function)
        block_definitions = {
            candidate.label: {
                instruction.defined().name
                for instruction in candidate.instructions
                if instruction.defined() is not None
            }
            for candidate in function.ordered_blocks()
        }
        for block in function.ordered_blocks():
            terminator = block.terminator
            if not isinstance(terminator, CondBranch):
                continue
            if block.label in rejected:
                continue
            if info.is_uniform(terminator.predicate):
                continue  # uniform branches never diverge a warp
            candidate = _match_diamond(
                function, cfg, block, terminator, max_arm_instructions
            )
            if candidate is None:
                continue
            taken, fallthrough, join = candidate
            decision = MeldDecision(
                branch_block=block.label,
                taken=taken.label,
                fallthrough=fallthrough.label,
                join=join,
                melded=False,
                reason="",
            )
            arms = taken.instructions + fallthrough.instructions
            if not all(_meldable(i) for i in arms):
                decision.reason = "unsupported-instruction"
                rejected.add(block.label)
                report.decisions.append(decision)
                continue
            alignment = _align(
                taken.instructions, fallthrough.instructions, machine
            )
            paired_left = {
                l for kind, l, _ in alignment.plan if kind == "pair"
            }
            paired_right = {
                r for kind, _, r in alignment.plan if kind == "pair"
            }
            unaligned_effects = any(
                isinstance(instruction, _ALIGN_ONLY)
                for index, instruction in enumerate(taken.instructions)
                if index not in paired_left
            ) or any(
                isinstance(instruction, _ALIGN_ONLY)
                for index, instruction in enumerate(
                    fallthrough.instructions
                )
                if index not in paired_right
            )
            if unaligned_effects:
                decision.reason = "unaligned-memory-op"
                rejected.add(block.label)
                report.decisions.append(decision)
                continue
            join_registers = len(
                {
                    instruction.defined().name
                    for instruction in arms
                    if instruction.defined() is not None
                }
            )
            est_divergent, est_melded = _estimate(
                taken.instructions,
                fallthrough.instructions,
                alignment,
                join_registers,
                machine,
                warp_size,
            )
            decision.aligned_pairs = alignment.pairs
            decision.est_divergent_cycles = est_divergent
            decision.est_melded_cycles = est_melded
            if est_melded >= est_divergent:
                decision.reason = "unprofitable"
                rejected.add(block.label)
                report.decisions.append(decision)
                continue
            defined_before = {
                name
                for label in dominators.dominators_of(block.label)
                for name in block_definitions.get(label, ())
            }
            _apply_meld(
                function, block, terminator, taken, fallthrough, join,
                alignment, defined_before,
            )
            decision.melded = True
            decision.reason = "profitable"
            report.decisions.append(decision)
            # Straighten so a nested diamond's outer arms become
            # single blocks for the next round.
            merge_blocks(function)
            changed = True
            break
    function.meld_report = report
    return report
