"""Program transformations: the paper's vectorization (Algorithms 1-4),
thread-invariance analysis (§6.2), and the traditional cleanups the
translation cache runs after vectorization (§5.1)."""

from .block_merge import merge_blocks
from .constant_folding import fold_constants
from .cse import eliminate_common_subexpressions
from .dce import eliminate_dead_code
from .if_conversion import if_convert
from .melding import MeldDecision, MeldReport, meld_function
from .pass_manager import (
    PassManager,
    PassStatistics,
    scalar_prepass_pipeline,
    standard_cleanup_pipeline,
)
from .uniformity import (
    UniformityInfo,
    analyze_affine,
    analyze_uniformity,
    count_thread_invariant_operands,
)
from .vectorize import (
    VectorizeOptions,
    Vectorizer,
    assign_spill_slots,
    compute_entry_points,
    vectorize_kernel,
)

__all__ = [
    "MeldDecision",
    "MeldReport",
    "PassManager",
    "PassStatistics",
    "UniformityInfo",
    "VectorizeOptions",
    "Vectorizer",
    "analyze_affine",
    "analyze_uniformity",
    "assign_spill_slots",
    "compute_entry_points",
    "count_thread_invariant_operands",
    "eliminate_common_subexpressions",
    "eliminate_dead_code",
    "fold_constants",
    "if_convert",
    "meld_function",
    "merge_blocks",
    "scalar_prepass_pipeline",
    "standard_cleanup_pipeline",
    "vectorize_kernel",
]
