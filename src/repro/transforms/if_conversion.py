"""If-conversion: replace pure conditional diamonds with selects.

The paper contrasts its yield-on-diverge approach with the
predication-style vectorizers of Karrenberg and Shin (§7): "These
works replace conditional control-flow with conditional data-flow and
rely on predication ... Predication is a light-weight technique for
disabling divergent or terminated threads along some control paths but
reduces SIMD utilization."

This pass implements the conditional-data-flow side of that contrast
for the cases where it is unambiguously safe: a diamond (or triangle)
whose arms are short, straight-line and *pure* — no memory accesses,
atomics, context writes or nested control flow — collapses into
straight-line code with per-register ``select``s. Both arms then
execute on every lane (the utilization cost the paper describes), but
the divergence site disappears, so no yield/re-formation round trip is
paid.

Applied to the scalar function before vectorization and exposed as the
``if_conversion`` knob of :class:`~repro.runtime.config.
ExecutionConfig`; the ablation benchmark quantifies the trade against
yield-on-diverge.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..ir.basicblock import BasicBlock
from ..ir.cfg import ControlFlowGraph
from ..ir.function import IRFunction
from ..ir.instructions import (
    BinaryOp,
    Branch,
    Compare,
    CondBranch,
    Convert,
    FusedMultiplyAdd,
    Intrinsic,
    Select,
    UnaryOp,
)
from ..ir.values import VirtualRegister

#: Instructions safe to execute unconditionally (no faults beyond the
#: machine's defined div-by-zero/NaN behaviour, no side effects).
_PURE = (
    BinaryOp,
    UnaryOp,
    FusedMultiplyAdd,
    Compare,
    Select,
    Convert,
    Intrinsic,
)

#: Default maximum arm length: beyond this, executing both arms on
#: every lane costs more than an occasional divergence yield.
DEFAULT_MAX_ARM_INSTRUCTIONS = 12


def _clone_pure(instruction, substitutions: Dict[str, object]):
    """Copy a pure instruction, remapping register uses."""

    def subst(value):
        if isinstance(value, VirtualRegister):
            return substitutions.get(value.name, value)
        return value

    if isinstance(instruction, BinaryOp):
        return BinaryOp(
            op=instruction.op, dtype=instruction.dtype,
            dst=instruction.dst, a=subst(instruction.a),
            b=subst(instruction.b),
        )
    if isinstance(instruction, UnaryOp):
        return UnaryOp(
            op=instruction.op, dtype=instruction.dtype,
            dst=instruction.dst, a=subst(instruction.a),
        )
    if isinstance(instruction, FusedMultiplyAdd):
        return FusedMultiplyAdd(
            dtype=instruction.dtype, dst=instruction.dst,
            a=subst(instruction.a), b=subst(instruction.b),
            c=subst(instruction.c),
        )
    if isinstance(instruction, Compare):
        return Compare(
            op=instruction.op, dtype=instruction.dtype,
            dst=instruction.dst, a=subst(instruction.a),
            b=subst(instruction.b),
        )
    if isinstance(instruction, Select):
        return Select(
            dtype=instruction.dtype, dst=instruction.dst,
            a=subst(instruction.a), b=subst(instruction.b),
            predicate=subst(instruction.predicate),
        )
    if isinstance(instruction, Convert):
        return Convert(
            dst_type=instruction.dst_type,
            src_type=instruction.src_type, dst=instruction.dst,
            src=subst(instruction.src),
            rounding=instruction.rounding,
        )
    if isinstance(instruction, Intrinsic):
        return Intrinsic(
            name=instruction.name, dtype=instruction.dtype,
            dst=instruction.dst,
            args=[subst(a) for a in instruction.args],
        )
    raise AssertionError(f"not a pure instruction: {instruction!r}")


class _Arm:
    """One linearized diamond arm: cloned instructions writing fresh
    temporaries, plus the final value of every register it defines."""

    def __init__(
        self, function: IRFunction, block: Optional[BasicBlock]
    ):
        self.instructions: List[object] = []
        #: original register name -> (original register, final value)
        self.final: Dict[str, Tuple[VirtualRegister, object]] = {}
        if block is None:
            return
        renames: Dict[str, object] = {}
        for instruction in block.instructions:
            clone = _clone_pure(instruction, renames)
            target = clone.defined()
            fresh = function.fresh_register(
                target.dtype, width=target.width, hint="ifcvt"
            )
            clone.dst = fresh
            renames[target.name] = fresh
            self.final[target.name] = (target, fresh)
            self.instructions.append(clone)


def _arm_convertible(
    block: BasicBlock, join: str, cfg: ControlFlowGraph, limit: int
) -> bool:
    if len(cfg.predecessors.get(block.label, [])) != 1:
        return False
    if not isinstance(block.terminator, Branch):
        return False
    if block.terminator.target != join:
        return False
    if len(block.instructions) > limit:
        return False
    return all(
        isinstance(instruction, _PURE)
        for instruction in block.instructions
    )


def if_convert(
    function: IRFunction,
    max_arm_instructions: int = DEFAULT_MAX_ARM_INSTRUCTIONS,
) -> int:
    """Collapse convertible diamonds/triangles. Returns conversions."""
    conversions = 0
    changed = True
    while changed:
        changed = False
        cfg = ControlFlowGraph(function)
        for block in function.ordered_blocks():
            terminator = block.terminator
            if not isinstance(terminator, CondBranch):
                continue
            if terminator.taken == terminator.fallthrough:
                block.terminator = Branch(terminator.taken)
                changed = True
                break
            conversion = _match(
                function, cfg, block, terminator, max_arm_instructions
            )
            if conversion is None:
                continue
            _apply(function, block, terminator, *conversion)
            conversions += 1
            changed = True
            break
    return conversions


def _match(function, cfg, block, terminator, limit):
    """Recognize a diamond (both arms are fresh blocks joining at J)
    or a triangle (one arm falls straight to the join)."""
    taken = function.blocks[terminator.taken]
    fallthrough = function.blocks[terminator.fallthrough]

    # Diamond: taken -> J, fallthrough -> J.
    if (
        isinstance(taken.terminator, Branch)
        and isinstance(fallthrough.terminator, Branch)
        and taken.terminator.target == fallthrough.terminator.target
    ):
        join = taken.terminator.target
        if join in (taken.label, fallthrough.label, block.label):
            return None
        if _arm_convertible(
            taken, join, cfg, limit
        ) and _arm_convertible(fallthrough, join, cfg, limit):
            return taken, fallthrough, join

    # Triangle: taken -> fallthrough (the join), or vice versa.
    if (
        isinstance(taken.terminator, Branch)
        and taken.terminator.target == terminator.fallthrough
        and taken.label != block.label
        and _arm_convertible(
            taken, terminator.fallthrough, cfg, limit
        )
    ):
        return taken, None, terminator.fallthrough
    if (
        isinstance(fallthrough.terminator, Branch)
        and fallthrough.terminator.target == terminator.taken
        and fallthrough.label != block.label
        and _arm_convertible(
            fallthrough, terminator.taken, cfg, limit
        )
    ):
        return None, fallthrough, terminator.taken
    return None


def _apply(function, block, terminator, taken, fallthrough, join):
    """Linearize the arms into ``block`` and select the results."""
    predicate = terminator.predicate
    block.terminator = None

    taken_arm = _Arm(function, taken)
    fall_arm = _Arm(function, fallthrough)
    block.instructions.extend(taken_arm.instructions)
    block.instructions.extend(fall_arm.instructions)

    defined = sorted(
        set(taken_arm.final) | set(fall_arm.final)
    )
    for name in defined:
        register, taken_value = taken_arm.final.get(
            name, (None, None)
        )
        fall_register, fall_value = fall_arm.final.get(
            name, (None, None)
        )
        register = register or fall_register
        block.instructions.append(
            Select(
                dtype=register.dtype,
                dst=register,
                a=taken_value if taken_value is not None else register,
                b=fall_value if fall_value is not None else register,
                predicate=predicate,
            )
        )
    block.append(Branch(join))
    for arm in (taken, fallthrough):
        if arm is not None:
            function.remove_block(arm.label)
