"""Constant folding and trivial algebraic simplification.

Runs after vectorization (where the affine thread-ID rewrite and entry
IDs introduce fresh constants) and before the machine lowering. Only
scalar (width-1) value positions fold; vector registers are never
constants in this IR.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from ..ir.function import IRFunction
from ..ir.instructions import (
    BinaryOp,
    Compare,
    Convert,
    FusedMultiplyAdd,
    Intrinsic,
    Select,
    UnaryOp,
)
from ..ir.values import Constant, VirtualRegister
from ..ptx.types import DataType

_COMPARES = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

_INTRINSICS = {
    "sqrt": math.sqrt,
    "rsqrt": lambda x: 1.0 / math.sqrt(x),
    "rcp": lambda x: 1.0 / x,
    "sin": math.sin,
    "cos": math.cos,
    "ex2": lambda x: 2.0 ** x,
    "lg2": lambda x: math.log2(x),
}


def _wrap(value, dtype: DataType):
    """Coerce a Python number into the domain of ``dtype``."""
    if dtype.is_float:
        return float(np.dtype(dtype.numpy_dtype).type(value))
    if dtype.is_predicate:
        return bool(value)
    info = np.iinfo(dtype.numpy_dtype)
    span = info.max - info.min + 1
    value = int(value)
    value = (value - info.min) % span + info.min
    return value


def _binary_result(op: str, a, b, dtype: DataType) -> Optional[object]:
    try:
        if op == "add":
            return a + b
        if op == "sub":
            return a - b
        if op == "mul":
            return a * b
        if op == "mulhi":
            bits = dtype.size * 8
            return (int(a) * int(b)) >> bits
        if op == "div":
            if dtype.is_float:
                return a / b
            if b == 0:
                return None
            return int(abs(a) // abs(b)) * (1 if (a >= 0) == (b >= 0) else -1)
        if op == "rem":
            if b == 0:
                return None
            return int(math.fmod(a, b)) if not dtype.is_float else (
                math.fmod(a, b)
            )
        if op == "min":
            return min(a, b)
        if op == "max":
            return max(a, b)
        if op == "and":
            return (int(a) & int(b)) if not dtype.is_predicate else (
                bool(a) and bool(b)
            )
        if op == "or":
            return (int(a) | int(b)) if not dtype.is_predicate else (
                bool(a) or bool(b)
            )
        if op == "xor":
            return (int(a) ^ int(b)) if not dtype.is_predicate else (
                bool(a) != bool(b)
            )
        if op == "shl":
            return int(a) << (int(b) % (dtype.size * 8))
        if op == "lshr":
            mask = (1 << (dtype.size * 8)) - 1
            return (int(a) & mask) >> (int(b) % (dtype.size * 8))
        if op == "ashr":
            return int(a) >> (int(b) % (dtype.size * 8))
    except (OverflowError, ZeroDivisionError, ValueError):
        return None
    return None


def fold_constants(function: IRFunction) -> int:
    """Replace constant computations with ``mov`` of the folded value.
    Returns the number of folds performed."""
    folds = 0
    for block in function.ordered_blocks():
        for index, instruction in enumerate(block.instructions):
            folded = _fold_instruction(instruction)
            if folded is not None:
                block.instructions[index] = folded
                folds += 1
    return folds


def _constant(value) -> Optional[Constant]:
    return value if isinstance(value, Constant) else None


def _fold_instruction(instruction):
    target = instruction.defined()
    if target is None or (
        isinstance(target, VirtualRegister) and target.width > 1
    ):
        # Vector destinations keep their operators; constants there are
        # broadcast by the machine anyway.
        return None
    if isinstance(instruction, BinaryOp):
        a = _constant(instruction.a)
        b = _constant(instruction.b)
        if a is None or b is None:
            return _simplify_binary(instruction)
        result = _binary_result(
            instruction.op, a.value, b.value, instruction.dtype
        )
        if result is None:
            return None
        return _mov(target, _wrap(result, instruction.dtype),
                    instruction.dtype)
    if isinstance(instruction, UnaryOp):
        a = _constant(instruction.a)
        if a is None:
            return None
        op = instruction.op
        dtype = instruction.dtype
        if op == "mov":
            return None
        if op == "neg":
            return _mov(target, _wrap(-a.value, dtype), dtype)
        if op == "abs":
            return _mov(target, _wrap(abs(a.value), dtype), dtype)
        if op == "not":
            if dtype.is_predicate:
                return _mov(target, not a.value, dtype)
            mask = (1 << (dtype.size * 8)) - 1
            return _mov(target, (~int(a.value)) & mask, dtype)
        if op == "cnot":
            return _mov(target, _wrap(0 if a.value else 1, dtype), dtype)
        return None
    if isinstance(instruction, Compare):
        a = _constant(instruction.a)
        b = _constant(instruction.b)
        operator = _COMPARES.get(instruction.op)
        if a is None or b is None or operator is None:
            return None
        return _mov(target, bool(operator(a.value, b.value)), DataType.pred)
    if isinstance(instruction, Select):
        predicate = _constant(instruction.predicate)
        if predicate is None:
            return None
        chosen = instruction.a if predicate.value else instruction.b
        return UnaryOp(op="mov", dtype=instruction.dtype, dst=target,
                       a=chosen)
    if isinstance(instruction, Convert):
        source = _constant(instruction.src)
        if source is None:
            return None
        dtype = instruction.dst_type
        if dtype.is_float:
            return _mov(target, _wrap(float(source.value), dtype), dtype)
        return _mov(target, _wrap(int(source.value), dtype), dtype)
    if isinstance(instruction, FusedMultiplyAdd):
        a = _constant(instruction.a)
        b = _constant(instruction.b)
        c = _constant(instruction.c)
        if a is None or b is None or c is None:
            return None
        result = a.value * b.value + c.value
        return _mov(target, _wrap(result, instruction.dtype),
                    instruction.dtype)
    if isinstance(instruction, Intrinsic):
        if len(instruction.args) != 1:
            return None
        argument = _constant(instruction.args[0])
        operator = _INTRINSICS.get(instruction.name)
        if argument is None or operator is None:
            return None
        try:
            result = operator(float(argument.value))
        except (ValueError, ZeroDivisionError, OverflowError):
            return None
        return _mov(target, _wrap(result, instruction.dtype),
                    instruction.dtype)
    return None


def _simplify_binary(instruction: BinaryOp):
    """x+0, x*1, x*0, x&x ... identities on half-constant operands."""
    a, b = instruction.a, instruction.b
    op = instruction.op
    dtype = instruction.dtype
    target = instruction.dst

    def is_const(value, number) -> bool:
        return isinstance(value, Constant) and value.value == number

    if op == "add":
        if is_const(b, 0):
            return _copy(target, a, dtype)
        if is_const(a, 0):
            return _copy(target, b, dtype)
    elif op == "sub" and is_const(b, 0):
        return _copy(target, a, dtype)
    elif op == "mul":
        if is_const(b, 1):
            return _copy(target, a, dtype)
        if is_const(a, 1):
            return _copy(target, b, dtype)
        if not dtype.is_float and (is_const(a, 0) or is_const(b, 0)):
            return _mov(target, _wrap(0, dtype), dtype)
    elif op in ("shl", "lshr", "ashr") and is_const(b, 0):
        return _copy(target, a, dtype)
    elif op == "div" and is_const(b, 1):
        return _copy(target, a, dtype)
    return None


def _mov(target, value, dtype: DataType) -> UnaryOp:
    return UnaryOp(
        op="mov", dtype=dtype, dst=target, a=Constant(value, dtype)
    )


def _copy(target, value, dtype: DataType) -> UnaryOp:
    return UnaryOp(op="mov", dtype=dtype, dst=target, a=value)
