"""Vectorization of data-parallel scalar kernels (§4, Algorithms 1-4).

Given the scalar IR translation of a PTX kernel, produce a
specialization for warp size ``ws`` in which one execution of each
basic block is computationally equivalent to ``ws`` threads executing
the scalar block:

- **Algorithm 1** (``Vectorize(i, ws)``): vectorizable instructions
  (element-wise arithmetic, compares, selects, conversions,
  transcendental intrinsics) are promoted to vector-typed operators.
  Non-vectorizable instructions (loads, stores, atomics, context
  accesses) are replicated once per lane, with ``extractelement`` /
  ``insertelement`` packing at the scalar/vector boundary (Fig. 3).
- **Algorithm 2**: conditional branches become a predicate *sum* plus a
  three-way switch: uniformly not-taken, uniformly taken, or divergent
  — the divergent case enters a compiler-inserted exit handler.
- **Algorithm 3** (``CreateScheduler``): a scheduler block switches on
  the warp's entry ID and jumps to per-entry handlers that restore live
  state from thread-local memory.
- **Algorithm 4** (``CreateExits``): exit handlers spill live values to
  thread-local memory, write each thread's resume point (a conditional
  select over the branch targets), and yield to the execution manager
  with a resume status (branch / barrier / exit).

Thread-invariant expression elimination (§6.2) plugs in here: with
``thread_invariant_elimination`` enabled, registers proven uniform by
:mod:`repro.transforms.uniformity` stay scalar (width 1) and their
defining bundles collapse to a single instruction; under static warp
formation the per-lane ``tid.x`` reads are rewritten as ``lane0 + i``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..errors import VectorizationError
from ..ir.basicblock import BasicBlock
from ..ir.function import IRFunction
from ..ir.instructions import (
    AtomicRMW,
    BarrierTerm,
    BinaryOp,
    Branch,
    Broadcast,
    Compare,
    CondBranch,
    ContextRead,
    ContextWrite,
    Convert,
    Exit,
    ExtractElement,
    FusedMultiplyAdd,
    InsertElement,
    Intrinsic,
    Load,
    Reduce,
    ResumeStatus,
    Select,
    Store,
    Switch,
    UnaryOp,
    VectorLoad,
    VectorStore,
    Yield,
)
from ..ir.liveness import LivenessInfo
from ..ir.values import Constant, VirtualRegister
from ..ptx.types import AddressSpace, DataType
from .uniformity import UniformityInfo, analyze_affine, analyze_uniformity

_VECTORIZABLE_TYPES = (
    BinaryOp,
    UnaryOp,
    FusedMultiplyAdd,
    Compare,
    Select,
    Convert,
    Intrinsic,
)


@dataclass
class VectorizeOptions:
    """Configuration of one specialization.

    Attributes
    ----------
    warp_size:
        Number of threads interleaved into the produced function.
    yield_at_branches:
        If True, every (formerly conditional) branch yields to the
        execution manager so threads can re-form wider warps — the
        behaviour of the scalar specialization in Fig. 4(b). If False,
        uniform branches stay inside the kernel and only divergence
        yields (Algorithm 2's switch).
    static_warps:
        Warps are consecutive ``tid.x`` threads from one CTA (§6.2),
        enabling the affine thread-ID rewrite.
    thread_invariant_elimination:
        Keep provably uniform registers scalar (§6.2).
    """

    warp_size: int = 4
    yield_at_branches: bool = False
    static_warps: bool = False
    thread_invariant_elimination: bool = False
    #: Replace replicated loads/stores whose addresses are provably
    #: contiguous across the warp (affine stride == element size) with
    #: single vector memory operations — the paper's §4 future work.
    #: Requires static warp formation for the tid.x affinity.
    vector_memory: bool = False


def compute_entry_points(scalar_function: IRFunction) -> Dict[str, int]:
    """Assign resume-point IDs to blocks of the scalar function.

    The numbering must be identical for every specialization of a
    kernel (a thread may yield from the 4-wide kernel and resume in the
    scalar one), so it is derived purely from the scalar function:
    entry block is 0; then, in layout order, the successors of
    conditional branches and of barriers.
    """
    entry_points: Dict[str, int] = {scalar_function.entry_label: 0}

    def add(label: str) -> None:
        if label not in entry_points:
            entry_points[label] = len(entry_points)

    for block in scalar_function.ordered_blocks():
        terminator = block.terminator
        if isinstance(terminator, CondBranch):
            add(terminator.taken)
            add(terminator.fallthrough)
        elif isinstance(terminator, BarrierTerm):
            add(terminator.successor)
    return entry_points


def assign_spill_slots(
    scalar_function: IRFunction,
) -> Tuple[Dict[str, int], int]:
    """Byte offsets (within the per-thread spill area) for every
    register, in deterministic name order, aligned to the value size.
    Returns ``(slots, total_bytes)``."""
    slots: Dict[str, int] = {}
    offset = 0
    registers = sorted(scalar_function.registers(), key=lambda r: r.name)
    for register in registers:
        size = register.dtype.size
        remainder = offset % size
        if remainder:
            offset += size - remainder
        slots[register.name] = offset
        offset += size
    return slots, offset


class Vectorizer:
    """Produces one specialization of a scalar kernel function."""

    def __init__(
        self, scalar_function: IRFunction, options: VectorizeOptions
    ):
        self.scalar = scalar_function
        self.options = options
        self.ws = options.warp_size
        if self.ws < 1:
            raise VectorizationError(
                f"invalid warp size {self.ws}"
            )
        self.liveness = LivenessInfo(scalar_function)
        if options.thread_invariant_elimination:
            self.uniformity = analyze_uniformity(
                scalar_function, static_warps=options.static_warps
            )
        else:
            self.uniformity = UniformityInfo()
        if options.vector_memory and options.static_warps:
            affinity_base = (
                self.uniformity
                if options.thread_invariant_elimination
                else analyze_uniformity(scalar_function,
                                        static_warps=True)
            )
            self.affine_strides = analyze_affine(
                scalar_function, affinity_base
            )
        else:
            self.affine_strides = {}
        self.entry_ids = compute_entry_points(scalar_function)
        slots, spill_size = assign_spill_slots(scalar_function)
        suffix = f"w{self.ws}"
        if options.static_warps:
            suffix += ".static"
        if options.thread_invariant_elimination:
            suffix += ".tie"
        if options.vector_memory:
            suffix += ".vmem"
        base = scalar_function.name
        if base.endswith(".scalar"):
            base = base[: -len(".scalar")]
        self.out = IRFunction(name=f"{base}.{suffix}", warp_size=self.ws)
        self.out.source_kernel = scalar_function.source_kernel
        self.out.spill_slots = slots
        self.out.spill_size = spill_size
        self.out.local_segment_size = scalar_function.local_segment_size
        #: scalar register name -> specialized register
        self.register_map: Dict[str, VirtualRegister] = {}
        #: per-block memo of extracted lanes: name -> [lane scalars]
        self._lane_cache: Dict[str, List[VirtualRegister]] = {}
        #: labels whose instructions are yield overhead (Fig. 9)
        self._overhead_blocks: Set[str] = set()
        self.block: Optional[BasicBlock] = None

    # -- register mapping --------------------------------------------------

    def _is_uniform_register(self, register: VirtualRegister) -> bool:
        return register.name in self.uniformity.uniform_registers

    def map_register(self, register: VirtualRegister) -> VirtualRegister:
        mapped = self.register_map.get(register.name)
        if mapped is None:
            width = (
                1 if self._is_uniform_register(register) else self.ws
            )
            mapped = VirtualRegister(
                name=register.name, dtype=register.dtype, width=width
            )
            self.register_map[register.name] = mapped
        return mapped

    def map_value(self, value):
        if isinstance(value, VirtualRegister):
            return self.map_register(value)
        return value

    def _temp(self, dtype: DataType, width: int = 1) -> VirtualRegister:
        return self.out.fresh_register(dtype, width=width, hint="v")

    # -- lane access (the memoized mapping of Algorithm 1) ----------------

    def lane_value(self, value, lane: int):
        """Scalar view of ``value`` for one lane, emitting (and
        memoizing) an extractelement when the value is a vector."""
        if isinstance(value, Constant):
            return value
        mapped = self.map_value(value)
        if mapped.width == 1:
            return mapped
        cached = self._lane_cache.get(mapped.name)
        if cached is not None and cached[lane] is not None:
            return cached[lane]
        if cached is None:
            cached = [None] * self.ws
            self._lane_cache[mapped.name] = cached
        scalar = self._temp(mapped.dtype)
        self.block.append(
            ExtractElement(dst=scalar, src=mapped, index=lane)
        )
        cached[lane] = scalar
        return scalar

    def _invalidate_lanes(self, register: VirtualRegister) -> None:
        self._lane_cache.pop(register.name, None)

    def _pack_lanes(
        self, destination: VirtualRegister, lanes: List[VirtualRegister]
    ) -> None:
        """insertelement chain producing ``destination`` from per-lane
        scalars (Fig. 3's packing)."""
        if destination.width == 1:
            raise VectorizationError(
                f"packing into scalar register {destination}"
            )
        current = None
        for index, scalar in enumerate(lanes):
            if index == len(lanes) - 1:
                target = destination
            else:
                target = self._temp(destination.dtype, width=self.ws)
            self.block.append(
                InsertElement(
                    dst=target, src=current, scalar=scalar, index=index
                )
            )
            current = target
        self._invalidate_lanes(destination)
        # Memoize the lanes we just packed so immediate consumers skip
        # the round trip through the vector register.
        self._lane_cache[destination.name] = list(lanes)

    # -- main loop ---------------------------------------------------------

    def run(self) -> IRFunction:
        for block in self.scalar.ordered_blocks():
            self.block = self.out.add_block(block.label)
            self._lane_cache = {}
            for instruction in block.instructions:
                self._vectorize_instruction(instruction)
            self._rewrite_terminator(block)
        self._create_scheduler()
        self._mark_overhead()
        return self.out

    # -- Algorithm 1: instruction vectorization -----------------------------

    def _vectorize_instruction(self, instruction) -> None:
        if isinstance(instruction, _VECTORIZABLE_TYPES):
            self._promote(instruction)
        elif isinstance(instruction, ContextRead):
            self._replicate_context_read(instruction)
        elif isinstance(instruction, ContextWrite):
            for lane in range(self.ws):
                self.block.append(
                    ContextWrite(
                        field_name=instruction.field_name,
                        value=self.lane_value(instruction.value, lane),
                        lane=lane,
                    )
                )
        elif isinstance(instruction, Load):
            self._replicate_load(instruction)
        elif isinstance(instruction, Store):
            if self._contiguous_across_warp(instruction):
                self.block.append(
                    VectorStore(
                        dtype=instruction.dtype,
                        space=instruction.space,
                        base=self.lane_value(instruction.base, 0),
                        value=self.map_value(instruction.value),
                        offset=instruction.offset,
                        lane=0,
                    )
                )
            else:
                for lane in range(self.ws):
                    self.block.append(
                        Store(
                            dtype=instruction.dtype,
                            space=instruction.space,
                            base=self.lane_value(instruction.base, lane),
                            value=self.lane_value(
                                instruction.value, lane
                            ),
                            offset=instruction.offset,
                            lane=lane,
                            volatile=instruction.volatile,
                        )
                    )
        elif isinstance(instruction, AtomicRMW):
            self._replicate_atomic(instruction)
        elif isinstance(instruction, Reduce):
            self._vectorize_vote(instruction)
        else:
            raise VectorizationError(
                f"cannot vectorize {instruction!r}"
            )

    def _promote(self, instruction) -> None:
        """Promote a vectorizable instruction (or keep it scalar when
        its destination is uniform — §6.2's scalarization)."""
        destination = self.map_register(instruction.defined())
        if destination.width == 1:
            # Uniform: single scalar instruction on uniform operands.
            clone = _clone_with(
                instruction,
                destination,
                [self.map_value(v) for v in instruction.uses()],
            )
            self.block.append(clone)
            return
        operands = [self.map_value(v) for v in instruction.uses()]
        clone = _clone_with(instruction, destination, operands)
        self.block.append(clone)
        self._invalidate_lanes(destination)

    def _replicate_context_read(self, instruction: ContextRead) -> None:
        destination = self.map_register(instruction.defined())
        field = instruction.field_name
        if destination.width == 1:
            self.block.append(
                ContextRead(
                    field_name=field,
                    dtype=instruction.dtype,
                    dst=destination,
                    lane=0,
                )
            )
            return
        lanes: List[VirtualRegister] = []
        if field == "laneid":
            # The lane index is a compile-time constant per lane.
            for lane in range(self.ws):
                scalar = self._temp(instruction.dtype)
                self.block.append(
                    UnaryOp(
                        op="mov",
                        dtype=instruction.dtype,
                        dst=scalar,
                        a=Constant(lane, instruction.dtype),
                    )
                )
                lanes.append(scalar)
        elif (
            field == "tid.x"
            and self.options.static_warps
            and self.options.thread_invariant_elimination
        ):
            # Affine rewrite: lane i's tid.x = lane 0's tid.x + i.
            base = self._temp(instruction.dtype)
            self.block.append(
                ContextRead(
                    field_name=field,
                    dtype=instruction.dtype,
                    dst=base,
                    lane=0,
                )
            )
            lanes.append(base)
            for lane in range(1, self.ws):
                scalar = self._temp(instruction.dtype)
                self.block.append(
                    BinaryOp(
                        op="add",
                        dtype=instruction.dtype,
                        dst=scalar,
                        a=base,
                        b=Constant(lane, instruction.dtype),
                    )
                )
                lanes.append(scalar)
        else:
            for lane in range(self.ws):
                scalar = self._temp(instruction.dtype)
                self.block.append(
                    ContextRead(
                        field_name=field,
                        dtype=instruction.dtype,
                        dst=scalar,
                        lane=lane,
                    )
                )
                lanes.append(scalar)
        self._pack_lanes(destination, lanes)

    def _contiguous_across_warp(self, instruction) -> bool:
        """True when the access's per-lane addresses are provably
        ``lane0 + i * element_size`` (affine analysis, §4 future
        work), so one vector memory operation services the warp."""
        if self.ws == 1 or not self.affine_strides:
            return False
        if instruction.space not in (
            AddressSpace.global_,
            AddressSpace.shared,
        ):
            return False
        base = instruction.base
        if not isinstance(base, VirtualRegister):
            return False
        stride = self.affine_strides.get(base.name)
        return stride == instruction.dtype.size

    def _replicate_load(self, instruction: Load) -> None:
        destination = self.map_register(instruction.defined())
        if destination.width > 1 and self._contiguous_across_warp(
            instruction
        ):
            self.block.append(
                VectorLoad(
                    dtype=instruction.dtype,
                    dst=destination,
                    space=instruction.space,
                    base=self.lane_value(instruction.base, 0),
                    offset=instruction.offset,
                    lane=0,
                )
            )
            self._invalidate_lanes(destination)
            return
        if destination.width == 1:
            self.block.append(
                Load(
                    dtype=instruction.dtype,
                    dst=destination,
                    space=instruction.space,
                    base=self.map_value(instruction.base),
                    offset=instruction.offset,
                    lane=0,
                    volatile=instruction.volatile,
                )
            )
            return
        lanes = []
        for lane in range(self.ws):
            scalar = self._temp(instruction.dtype)
            self.block.append(
                Load(
                    dtype=instruction.dtype,
                    dst=scalar,
                    space=instruction.space,
                    base=self.lane_value(instruction.base, lane),
                    offset=instruction.offset,
                    lane=lane,
                    volatile=instruction.volatile,
                )
            )
            lanes.append(scalar)
        self._pack_lanes(destination, lanes)

    def _replicate_atomic(self, instruction: AtomicRMW) -> None:
        destination = (
            self.map_register(instruction.dst)
            if instruction.dst is not None
            else None
        )
        lanes = []
        for lane in range(self.ws):
            scalar = (
                self._temp(instruction.dtype)
                if destination is not None
                else None
            )
            self.block.append(
                AtomicRMW(
                    op=instruction.op,
                    dtype=instruction.dtype,
                    dst=scalar,
                    space=instruction.space,
                    base=self.lane_value(instruction.base, lane),
                    value=self.lane_value(instruction.value, lane),
                    compare=(
                        self.lane_value(instruction.compare, lane)
                        if instruction.compare is not None
                        else None
                    ),
                    offset=instruction.offset,
                    lane=lane,
                )
            )
            if scalar is not None:
                lanes.append(scalar)
        if destination is not None:
            if destination.width == 1:
                if self.ws != 1:
                    raise VectorizationError(
                        "atomic destination cannot be uniform"
                    )
                # Width-1 specialization: the single lane's result is
                # the register itself.
                self.block.instructions[-1].dst = destination
            else:
                self._pack_lanes(destination, lanes)

    def _vectorize_vote(self, instruction: Reduce) -> None:
        source = self.map_value(instruction.src)
        destination = self.map_register(instruction.defined())
        if self.ws == 1 and destination.width == 1:
            self.block.append(
                Reduce(op=instruction.op, dst=destination, src=source)
            )
            return
        scalar = self._temp(destination.dtype)
        self.block.append(
            Reduce(op=instruction.op, dst=scalar, src=source)
        )
        if destination.width == 1:
            self.block.append(
                UnaryOp(
                    op="mov",
                    dtype=destination.dtype,
                    dst=destination,
                    a=scalar,
                )
            )
        else:
            self.block.append(Broadcast(dst=destination, src=scalar))
            self._invalidate_lanes(destination)

    # -- Algorithms 2 & 4: divergence detection and exit handlers ----------

    def _rewrite_terminator(self, scalar_block: BasicBlock) -> None:
        terminator = scalar_block.terminator
        if isinstance(terminator, Branch):
            self.block.append(Branch(terminator.target))
        elif isinstance(terminator, Exit):
            self.block.append(Yield(status=ResumeStatus.THREAD_EXIT))
        elif isinstance(terminator, BarrierTerm):
            self._emit_barrier_exit(scalar_block, terminator)
        elif isinstance(terminator, CondBranch):
            self._emit_branch_checks(scalar_block, terminator)
        elif isinstance(terminator, Switch):
            raise VectorizationError(
                "switch terminators cannot appear in scalar kernels"
            )
        else:
            raise VectorizationError(
                f"unsupported terminator {terminator!r}"
            )

    def _spill_address(self, register: VirtualRegister) -> int:
        """Absolute offset of a register's spill slot within each
        thread's local memory (user .local variables come first)."""
        return (
            self.out.local_segment_size
            + self.out.spill_slots[register.name]
        )

    def _spill_live_out(self, scalar_block: BasicBlock) -> None:
        """Store live-out values to each thread's local spill area
        (Algorithm 4's first step)."""
        for register in self.liveness.live_out_registers(
            scalar_block.label
        ):
            mapped = self.map_register(register)
            slot = Constant(self._spill_address(register), DataType.u64)
            for lane in range(self.ws):
                value = (
                    mapped
                    if mapped.width == 1
                    else self.lane_value(register, lane)
                )
                self.block.append(
                    Store(
                        dtype=register.dtype,
                        space=AddressSpace.local,
                        base=slot,
                        value=value,
                        lane=lane,
                    )
                )

    def _set_resume_points(self, value_per_lane) -> None:
        for lane in range(self.ws):
            self.block.append(
                ContextWrite(
                    field_name="resume_point",
                    value=value_per_lane(lane),
                    lane=lane,
                )
            )

    def _emit_barrier_exit(
        self, scalar_block: BasicBlock, terminator: BarrierTerm
    ) -> None:
        successor_id = self.entry_ids[terminator.successor]
        start = len(self.block.instructions)
        self._spill_live_out(scalar_block)
        self._set_resume_points(
            lambda lane: Constant(successor_id, DataType.u32)
        )
        self.block.append(Yield(status=ResumeStatus.THREAD_BARRIER))
        self._flag_overhead(self.block, start)

    def _emit_branch_checks(
        self, scalar_block: BasicBlock, terminator: CondBranch
    ) -> None:
        predicate = self.map_value(terminator.predicate)
        taken_id = self.entry_ids[terminator.taken]
        fall_id = self.entry_ids[terminator.fallthrough]

        if self.options.yield_at_branches:
            # Scalar-specialization policy (Fig. 4b): always return to
            # the execution manager so warps can re-form.
            start = len(self.block.instructions)
            self._emit_divergent_exit(
                scalar_block, predicate, taken_id, fall_id, inline=True
            )
            self._flag_overhead(self.block, start)
            return

        uniform_predicate = (
            not isinstance(predicate, VirtualRegister)
            or predicate.width == 1
        )
        if self.ws == 1 or uniform_predicate:
            # A single thread cannot diverge, and a thread-invariant
            # predicate (§6.2) sends every lane the same way: keep the
            # direct conditional branch.
            self.block.append(
                CondBranch(
                    predicate=predicate,
                    taken=terminator.taken,
                    fallthrough=terminator.fallthrough,
                )
            )
            return

        # sum(predicates): 0 = uniformly not taken, ws = uniformly
        # taken, otherwise divergent -> exit handler.
        sum_register = self._temp(DataType.s32)
        self.block.append(
            Reduce(op="add", dst=sum_register, src=predicate)
        )
        exit_label = self.out.fresh_label(f"{scalar_block.label}_exit")
        self.block.append(
            Switch(
                value=sum_register,
                cases={
                    0: terminator.fallthrough,
                    self.ws: terminator.taken,
                },
                default=exit_label,
            )
        )
        saved = self.block
        saved_cache = self._lane_cache
        self.block = self.out.add_block(exit_label)
        self._lane_cache = {}
        self._emit_divergent_exit(
            scalar_block, predicate, taken_id, fall_id, inline=False
        )
        self._overhead_blocks.add(exit_label)
        self.block = saved
        self._lane_cache = saved_cache

    def _emit_divergent_exit(
        self,
        scalar_block: BasicBlock,
        predicate,
        taken_id: int,
        fall_id: int,
        inline: bool,
    ) -> None:
        """Algorithm 4 body for a (potentially) divergent branch."""
        self._spill_live_out(scalar_block)
        if isinstance(predicate, VirtualRegister) and predicate.width > 1:
            selected = self._temp(DataType.u32, width=self.ws)
            self.block.append(
                Select(
                    dtype=DataType.u32,
                    dst=selected,
                    a=Constant(taken_id, DataType.u32),
                    b=Constant(fall_id, DataType.u32),
                    predicate=predicate,
                )
            )
            self._set_resume_points(
                lambda lane: self.lane_value(selected, lane)
            )
        else:
            selected = self._temp(DataType.u32)
            self.block.append(
                Select(
                    dtype=DataType.u32,
                    dst=selected,
                    a=Constant(taken_id, DataType.u32),
                    b=Constant(fall_id, DataType.u32),
                    predicate=predicate,
                )
            )
            self._set_resume_points(lambda lane: selected)
        self.block.append(Yield(status=ResumeStatus.THREAD_BRANCH))

    # -- Algorithm 3: scheduler and entry handlers --------------------------

    def _create_scheduler(self) -> None:
        handler_labels: Dict[int, str] = {}
        for label, entry_id in self.entry_ids.items():
            if entry_id == 0:
                handler_labels[0] = label
                self.out.entry_points[0] = label
                self.out.restore_counts[0] = 0
                continue
            handler_label = self.out.fresh_label(f"{label}_entry")
            handler = self.out.add_block(handler_label)
            self.block = handler
            self._lane_cache = {}
            self._emit_restores(label)
            handler.append(Branch(label))
            handler_labels[entry_id] = handler_label
            self.out.entry_points[entry_id] = handler_label
            self.out.restore_counts[entry_id] = len(
                self.liveness.live_in[label]
            )
            self._overhead_blocks.add(handler_label)

        scheduler = self.out.prepend_block(
            self.out.fresh_label("scheduler")
        )
        self._overhead_blocks.add(scheduler.label)
        self.block = scheduler
        entry_value = self._temp(DataType.u32)
        scheduler.append(
            ContextRead(
                field_name="resume_point",
                dtype=DataType.u32,
                dst=entry_value,
                lane=0,
            )
        )
        scheduler.append(
            Switch(
                value=entry_value,
                cases={
                    entry_id: label
                    for entry_id, label in handler_labels.items()
                },
                default=handler_labels[0],
            )
        )

    def _flag_overhead(self, block: BasicBlock, start: int) -> None:
        for instruction in block.instructions[start:]:
            instruction.overhead = True
        if block.terminator is not None:
            block.terminator.overhead = True

    def _mark_overhead(self) -> None:
        """Flag every instruction belonging to yield machinery so the
        cost model can attribute its cycles separately (Fig. 9)."""
        for label in self._overhead_blocks:
            block = self.out.blocks[label]
            self._flag_overhead(block, 0)

    def _emit_restores(self, label: str) -> None:
        """Loads reconstructing the live-in registers of ``label`` from
        each lane's spill area."""
        for register in self.liveness.live_in_registers(label):
            mapped = self.map_register(register)
            slot = Constant(self._spill_address(register), DataType.u64)
            if mapped.width == 1:
                self.block.append(
                    Load(
                        dtype=register.dtype,
                        dst=mapped,
                        space=AddressSpace.local,
                        base=slot,
                        lane=0,
                    )
                )
                continue
            lanes = []
            for lane in range(self.ws):
                scalar = self._temp(register.dtype)
                self.block.append(
                    Load(
                        dtype=register.dtype,
                        dst=scalar,
                        space=AddressSpace.local,
                        base=slot,
                        lane=lane,
                    )
                )
                lanes.append(scalar)
            self._pack_lanes(mapped, lanes)


def _clone_with(instruction, destination, operands):
    """Copy a vectorizable instruction with new destination/operands."""
    if isinstance(instruction, BinaryOp):
        return BinaryOp(
            op=instruction.op,
            dtype=instruction.dtype,
            dst=destination,
            a=operands[0],
            b=operands[1],
        )
    if isinstance(instruction, UnaryOp):
        return UnaryOp(
            op=instruction.op,
            dtype=instruction.dtype,
            dst=destination,
            a=operands[0],
        )
    if isinstance(instruction, FusedMultiplyAdd):
        return FusedMultiplyAdd(
            dtype=instruction.dtype,
            dst=destination,
            a=operands[0],
            b=operands[1],
            c=operands[2],
        )
    if isinstance(instruction, Compare):
        return Compare(
            op=instruction.op,
            dtype=instruction.dtype,
            dst=destination,
            a=operands[0],
            b=operands[1],
        )
    if isinstance(instruction, Select):
        return Select(
            dtype=instruction.dtype,
            dst=destination,
            a=operands[0],
            b=operands[1],
            predicate=operands[2],
        )
    if isinstance(instruction, Convert):
        return Convert(
            dst_type=instruction.dst_type,
            src_type=instruction.src_type,
            dst=destination,
            src=operands[0],
            rounding=instruction.rounding,
        )
    if isinstance(instruction, Intrinsic):
        return Intrinsic(
            name=instruction.name,
            dtype=instruction.dtype,
            dst=destination,
            args=list(operands),
        )
    raise VectorizationError(f"cannot clone {instruction!r}")


def vectorize_kernel(
    scalar_function: IRFunction, options: VectorizeOptions
) -> IRFunction:
    """Produce the ``options.warp_size`` specialization of a scalar
    kernel function."""
    return Vectorizer(scalar_function, options).run()


__all__ = [
    "VectorizeOptions",
    "Vectorizer",
    "assign_spill_slots",
    "compute_entry_points",
    "vectorize_kernel",
]
