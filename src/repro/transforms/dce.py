"""Dead-code elimination.

The paper relies on "a subsequent dead-code elimination pass" to remove
the pack/unpack instructions that explicit replication leaves unused
(§4, Non-vectorizable Instructions). This is a liveness-driven,
per-block backward sweep: an instruction is dead when it has no side
effects and its destination is not read before being overwritten (or
the block ends and the register is not live-out).
"""

from __future__ import annotations

from typing import Set

from ..ir.function import IRFunction
from ..ir.instructions import (
    AtomicRMW,
    ContextWrite,
    Load,
    Store,
    VectorStore,
)
from ..ir.liveness import LivenessInfo
from ..ir.values import VirtualRegister

#: Instructions that must be preserved regardless of use.
_SIDE_EFFECTS = (Store, VectorStore, AtomicRMW, ContextWrite)


def _has_side_effects(instruction) -> bool:
    if isinstance(instruction, _SIDE_EFFECTS):
        return True
    if isinstance(instruction, Load) and instruction.volatile:
        return True
    return False


def eliminate_dead_code(function: IRFunction) -> int:
    """Remove dead instructions. Returns the number removed.

    Iterates to a fixed point because removing one dead instruction can
    make its operands' definitions dead too.
    """
    total_removed = 0
    while True:
        removed = _sweep_once(function)
        total_removed += removed
        if removed == 0:
            return total_removed


def _sweep_once(function: IRFunction) -> int:
    liveness = LivenessInfo(function)
    removed = 0
    for block in function.ordered_blocks():
        live: Set[str] = set(liveness.live_out[block.label])
        if block.terminator is not None:
            for value in block.terminator.uses():
                if isinstance(value, VirtualRegister):
                    live.add(value.name)
        kept = []
        for instruction in reversed(block.instructions):
            target = instruction.defined()
            dead = (
                target is not None
                and target.name not in live
                and not _has_side_effects(instruction)
            )
            if dead:
                removed += 1
                continue
            kept.append(instruction)
            if target is not None:
                live.discard(target.name)
            for value in instruction.uses():
                if isinstance(value, VirtualRegister):
                    live.add(value.name)
        kept.reverse()
        block.instructions = kept
    return removed
