"""Basic-block fusion (straightening).

The paper's translation cache "applies existing LLVM transformation
passes including traditional compiler optimizations such as basic block
fusion" (§5.1). A block ending in an unconditional branch merges with
its unique successor when that successor has no other predecessors and
is not independently addressable (function entry, scheduler entry
handler, or resume target).
"""

from __future__ import annotations

from typing import Set

from ..ir.cfg import ControlFlowGraph
from ..ir.function import IRFunction
from ..ir.instructions import Branch


def merge_blocks(function: IRFunction) -> int:
    """Fuse trivially linear block chains. Returns merges performed."""
    merged = 0
    protected: Set[str] = {function.entry_label}
    protected.update(function.entry_points.values())
    while True:
        cfg = ControlFlowGraph(function)
        change = False
        for block in function.ordered_blocks():
            terminator = block.terminator
            if not isinstance(terminator, Branch):
                continue
            successor_label = terminator.target
            if successor_label in protected:
                continue
            if successor_label == block.label:
                continue
            predecessors = cfg.predecessors.get(successor_label, [])
            if len(predecessors) != 1:
                continue
            successor = function.blocks[successor_label]
            block.terminator = None
            block.instructions.extend(successor.instructions)
            block.terminator = successor.terminator
            function.remove_block(successor_label)
            merged += 1
            change = True
            break
        if not change:
            return merged
