"""PTX-to-IR translation (the paper's PTX -> LLVM step, §5.1).

The translator performs, in one walk:

- block discovery (labels, branch fall-throughs), matching Ocelot's
  CFG construction;
- the PTX->PTX cleanups the paper describes: non-branch predicated
  instructions become conditional selects (pure ops) or short diamonds
  (memory ops, which must not execute when guarded off), and basic
  blocks are split at barriers;
- instruction selection into the mid-level IR.

The result is the *scalar* IR function the vectorizer specializes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import TranslationError
from ..ir.function import IRFunction
from ..ir.instructions import (
    AtomicRMW,
    BarrierTerm,
    BinaryOp,
    Branch,
    Compare,
    CondBranch,
    ContextRead,
    Convert,
    Exit,
    FusedMultiplyAdd,
    Intrinsic,
    Load,
    Reduce,
    Select,
    Store,
    UnaryOp,
)
from ..ir.values import Constant, VirtualRegister
from ..ptx.instructions import Label, MulMode, Opcode, PTXInstruction
from ..ptx.module import Kernel
from ..ptx.operands import (
    AddressOperand,
    ImmediateOperand,
    LabelOperand,
    RegisterOperand,
    SpecialRegisterOperand,
    SymbolOperand,
    VectorOperand,
)
from ..ptx.types import AddressSpace, DataType

_BINARY_OPS = {
    Opcode.add: "add",
    Opcode.sub: "sub",
    Opcode.div: "div",
    Opcode.rem: "rem",
    Opcode.min: "min",
    Opcode.max: "max",
    Opcode.and_: "and",
    Opcode.or_: "or",
    Opcode.xor: "xor",
    Opcode.shl: "shl",
}

_UNARY_OPS = {
    Opcode.neg: "neg",
    Opcode.abs: "abs",
    Opcode.not_: "not",
    Opcode.cnot: "cnot",
}

_INTRINSICS = {
    Opcode.rcp: "rcp",
    Opcode.sqrt: "sqrt",
    Opcode.rsqrt: "rsqrt",
    Opcode.sin: "sin",
    Opcode.cos: "cos",
    Opcode.lg2: "lg2",
    Opcode.ex2: "ex2",
}

_WIDEN = {
    DataType.u8: DataType.u16,
    DataType.s8: DataType.s16,
    DataType.u16: DataType.u32,
    DataType.s16: DataType.s32,
    DataType.u32: DataType.u64,
    DataType.s32: DataType.s64,
}


class Translator:
    """Translates one PTX kernel into a scalar :class:`IRFunction`.

    ``global_symbols`` maps module-scope ``.global``/``.const`` variable
    names to absolute addresses in the machine's memory arena (assigned
    when the module was registered with the runtime).
    """

    def __init__(
        self,
        kernel: Kernel,
        global_symbols: Optional[Dict[str, int]] = None,
    ):
        self.kernel = kernel
        self.global_symbols = global_symbols or {}
        self.function = IRFunction(name=f"{kernel.name}.scalar", warp_size=1)
        self.function.source_kernel = kernel.name
        self.function.local_segment_size = kernel.local_size
        self.registers: Dict[str, VirtualRegister] = {}
        self.block = None
        self._label_counter = 0
        # Lay out kernel-scope shared/local variables before use.
        kernel.layout_segment(AddressSpace.shared)
        kernel.layout_segment(AddressSpace.local)

    # -- public entry ------------------------------------------------------

    def translate(self) -> IRFunction:
        self._map_registers()
        statements = self.kernel.statements
        block_labels = self._discover_labels(statements)
        entry = self.function.add_block("entry", make_entry=True)
        self.block = entry
        for statement in statements:
            if isinstance(statement, Label):
                self._start_labeled_block(block_labels[statement.name])
            else:
                self._translate_instruction(statement, block_labels)
        if self.block is not None and not self.block.is_terminated:
            self.block.append(Exit())
        return self.function

    # -- block management ----------------------------------------------------

    def _discover_labels(self, statements) -> Dict[str, str]:
        """PTX label -> IR block label (identity, but kept as a map so
        generated labels can never collide with user ones)."""
        mapping: Dict[str, str] = {}
        for statement in statements:
            if isinstance(statement, Label):
                mapping[statement.name] = statement.name
        return mapping

    def _fresh_block_label(self, hint: str) -> str:
        self._label_counter += 1
        return self.function.fresh_label(f"{hint}_{self._label_counter}")

    def _start_labeled_block(self, label: str) -> None:
        if self.block is not None and not self.block.is_terminated:
            self.block.append(Branch(label))
        self.block = self.function.add_block(label)

    def _start_fresh_block(self, hint: str) -> str:
        label = self._fresh_block_label(hint)
        self.block = self.function.add_block(label)
        return label

    # -- register and operand mapping ------------------------------------

    def _map_registers(self) -> None:
        for name, dtype in self.kernel.registers.items():
            self.registers[name] = VirtualRegister(name=name, dtype=dtype)

    def _temp(self, dtype: DataType) -> VirtualRegister:
        return self.function.fresh_register(dtype, hint="tmp")

    def _value(self, operand, expected: Optional[DataType] = None):
        """Translate a source operand into an IR value."""
        if isinstance(operand, RegisterOperand):
            register = self.registers.get(operand.name)
            if register is None:
                raise TranslationError(
                    f"{self.kernel.name}: undeclared register "
                    f"%{operand.name}"
                )
            if operand.negated:
                negated = self._temp(register.dtype)
                self.block.append(
                    UnaryOp(
                        op="not",
                        dtype=register.dtype,
                        dst=negated,
                        a=register,
                    )
                )
                return negated
            return register
        if isinstance(operand, ImmediateOperand):
            dtype = operand.dtype or expected
            if dtype is None:
                raise TranslationError(
                    f"{self.kernel.name}: untyped immediate {operand.value}"
                )
            return Constant(value=operand.value, dtype=dtype)
        if isinstance(operand, SymbolOperand):
            return self._symbol_address(operand.name, expected)
        if isinstance(operand, SpecialRegisterOperand):
            raise TranslationError(
                f"{self.kernel.name}: special register {operand} is only "
                f"valid as a mov source"
            )
        raise TranslationError(
            f"{self.kernel.name}: unsupported operand {operand!r}"
        )

    def _destination(self, operand) -> VirtualRegister:
        if not isinstance(operand, RegisterOperand):
            raise TranslationError(
                f"{self.kernel.name}: destination must be a register, "
                f"found {operand}"
            )
        return self.registers[operand.name]

    def _symbol_address(self, name: str, expected: Optional[DataType]):
        """Address of a named variable as a Constant.

        shared/local/param symbols resolve to segment-relative offsets;
        module .global/.const symbols resolve to absolute arena
        addresses captured at registration time.
        """
        dtype = expected if expected is not None else DataType.u64
        parameter = self.kernel.find_parameter(name)
        if parameter is not None:
            return Constant(value=parameter.offset, dtype=dtype)
        variable = self.kernel.find_variable(name)
        if variable is None:
            raise TranslationError(
                f"{self.kernel.name}: unknown symbol {name!r}"
            )
        if variable.space in (AddressSpace.shared, AddressSpace.local):
            return Constant(value=variable.offset, dtype=dtype)
        if name in self.global_symbols:
            return Constant(value=self.global_symbols[name], dtype=dtype)
        raise TranslationError(
            f"{self.kernel.name}: module variable {name!r} has no "
            f"assigned address (register the module before translating)"
        )

    # -- predication -------------------------------------------------------

    def _guard_register(self, inst: PTXInstruction):
        guard = inst.guard
        register = self.registers[guard.name]
        if guard.negated:
            negated = self._temp(DataType.pred)
            self.block.append(
                UnaryOp(
                    op="not", dtype=DataType.pred, dst=negated, a=register
                )
            )
            return negated
        return register

    def _translate_instruction(self, inst: PTXInstruction, labels) -> None:
        if self.block is None or self.block.is_terminated:
            # Unreachable code after an unconditional terminator with no
            # label: keep it in a detached block so the IR stays valid.
            self._start_fresh_block("dead")
        if inst.guard is None:
            self._select_and_emit(inst, labels)
            return
        if inst.opcode is Opcode.bra:
            self._translate_branch(inst, labels)
            return
        if inst.opcode in (
            Opcode.st,
            Opcode.atom,
            Opcode.red,
            Opcode.exit,
            Opcode.ret,
            Opcode.bar,
        ) or inst.opcode is Opcode.ld:
            # Memory and control effects must not happen when the guard
            # is off: lower to a short diamond.
            self._translate_guarded_effect(inst, labels)
            return
        # Pure ops: compute unconditionally, select the result
        # (the paper's PTX->PTX "replace predicated instructions with
        # select" transformation).
        predicate = self._guard_register(inst)
        destination = self._destination(inst.operands[0])
        temp = self._temp(destination.dtype)
        unguarded = _clone_without_guard(inst)
        unguarded.operands = [RegisterOperand("__temp__", destination.dtype)]
        unguarded.operands.extend(inst.operands[1:])
        self.registers["__temp__"] = temp
        self._select_and_emit(unguarded, labels)
        del self.registers["__temp__"]
        self.block.append(
            Select(
                dtype=destination.dtype,
                dst=destination,
                a=temp,
                b=destination,
                predicate=predicate,
            )
        )

    def _translate_guarded_effect(self, inst: PTXInstruction, labels):
        predicate = self._guard_register(inst)
        then_label = self._fresh_block_label("pred_then")
        join_label = self._fresh_block_label("pred_join")
        self.block.append(
            CondBranch(
                predicate=predicate, taken=then_label, fallthrough=join_label
            )
        )
        self.block = self.function.add_block(then_label)
        self._select_and_emit(_clone_without_guard(inst), labels)
        if self.block is not None and not self.block.is_terminated:
            self.block.append(Branch(join_label))
        self.block = self.function.add_block(join_label)

    # -- instruction selection ---------------------------------------------

    def _select_and_emit(self, inst: PTXInstruction, labels) -> None:
        opcode = inst.opcode
        if opcode is Opcode.mov:
            self._translate_mov(inst)
        elif opcode is Opcode.ld:
            self._translate_load(inst)
        elif opcode is Opcode.st:
            self._translate_store(inst)
        elif opcode in _BINARY_OPS:
            self._translate_binary(inst, _BINARY_OPS[opcode])
        elif opcode is Opcode.shr:
            op = "ashr" if inst.dtype.is_signed else "lshr"
            self._translate_binary(inst, op)
        elif opcode is Opcode.mul:
            self._translate_mul(inst)
        elif opcode in (Opcode.mad, Opcode.fma):
            self._translate_mad(inst)
        elif opcode in _UNARY_OPS:
            self._translate_unary(inst, _UNARY_OPS[opcode])
        elif opcode in _INTRINSICS:
            self._translate_intrinsic(inst, _INTRINSICS[opcode])
        elif opcode is Opcode.cvt:
            self._translate_cvt(inst)
        elif opcode is Opcode.cvta:
            destination = self._destination(inst.operands[0])
            source = self._value(inst.operands[1], inst.dtype)
            self.block.append(
                UnaryOp(
                    op="mov", dtype=inst.dtype, dst=destination, a=source
                )
            )
        elif opcode is Opcode.setp:
            self._translate_setp(inst)
        elif opcode is Opcode.set:
            self._translate_set(inst)
        elif opcode is Opcode.selp:
            self._translate_selp(inst)
        elif opcode is Opcode.slct:
            self._translate_slct(inst)
        elif opcode is Opcode.bra:
            self._translate_branch(inst, labels)
        elif opcode in (Opcode.exit, Opcode.ret):
            self.block.append(Exit())
            self.block = None
        elif opcode is Opcode.bar:
            successor = self._fresh_block_label("post_barrier")
            self.block.append(BarrierTerm(successor=successor))
            self.block = self.function.add_block(successor)
        elif opcode is Opcode.membar:
            pass  # single memory arena: fences are no-ops
        elif opcode in (Opcode.atom, Opcode.red):
            self._translate_atomic(inst)
        elif opcode is Opcode.vote:
            self._translate_vote(inst)
        else:
            raise TranslationError(
                f"{self.kernel.name}: unsupported opcode {opcode}"
            )

    def _translate_mov(self, inst: PTXInstruction) -> None:
        destination = self._destination(inst.operands[0])
        source = inst.operands[1]
        if isinstance(source, SpecialRegisterOperand):
            field = source.register
            if source.dimension:
                field = f"{field}.{source.dimension}"
            self.block.append(
                ContextRead(
                    field_name=field, dtype=destination.dtype,
                    dst=destination,
                )
            )
            return
        value = self._value(source, inst.dtype or destination.dtype)
        self.block.append(
            UnaryOp(
                op="mov",
                dtype=inst.dtype or destination.dtype,
                dst=destination,
                a=value,
            )
        )

    def _address(self, operand: AddressOperand):
        """Return (space-agnostic base value, byte offset)."""
        base = operand.base
        if isinstance(base, RegisterOperand):
            return self.registers[base.name], operand.offset
        if isinstance(base, SymbolOperand):
            constant = self._symbol_address(base.name, DataType.u64)
            return constant, operand.offset
        raise TranslationError(
            f"{self.kernel.name}: bad address base {base!r}"
        )

    def _resolve_space(self, inst: PTXInstruction, base) -> AddressSpace:
        """Module .const/.global symbols live at absolute arena
        addresses, so their accesses use the global space."""
        space = inst.space
        if space in (AddressSpace.const, AddressSpace.generic):
            return AddressSpace.global_
        return space

    def _translate_load(self, inst: PTXInstruction) -> None:
        address = inst.operands[1]
        if not isinstance(address, AddressOperand):
            raise TranslationError(
                f"{self.kernel.name}: ld needs an address operand"
            )
        base, offset = self._address(address)
        space = self._resolve_space(inst, base)
        destination = inst.operands[0]
        if isinstance(destination, VectorOperand):
            size = inst.dtype.size
            for index, element in enumerate(destination.elements):
                self.block.append(
                    Load(
                        dtype=inst.dtype,
                        dst=self.registers[element.name],
                        space=space,
                        base=base,
                        offset=offset + index * size,
                    )
                )
            return
        self.block.append(
            Load(
                dtype=inst.dtype,
                dst=self._destination(destination),
                space=space,
                base=base,
                offset=offset,
            )
        )

    def _translate_store(self, inst: PTXInstruction) -> None:
        address = inst.operands[0]
        base, offset = self._address(address)
        space = self._resolve_space(inst, base)
        value = inst.operands[1]
        if isinstance(value, VectorOperand):
            size = inst.dtype.size
            for index, element in enumerate(value.elements):
                self.block.append(
                    Store(
                        dtype=inst.dtype,
                        space=space,
                        base=base,
                        value=self.registers[element.name],
                        offset=offset + index * size,
                    )
                )
            return
        self.block.append(
            Store(
                dtype=inst.dtype,
                space=space,
                base=base,
                value=self._value(value, inst.dtype),
                offset=offset,
            )
        )

    def _translate_binary(self, inst: PTXInstruction, op: str) -> None:
        destination = self._destination(inst.operands[0])
        a = self._value(inst.operands[1], inst.dtype)
        b = self._value(inst.operands[2], inst.dtype)
        self.block.append(
            BinaryOp(op=op, dtype=inst.dtype, dst=destination, a=a, b=b)
        )

    def _translate_mul(self, inst: PTXInstruction) -> None:
        dtype = inst.dtype
        destination = self._destination(inst.operands[0])
        a = self._value(inst.operands[1], dtype)
        b = self._value(inst.operands[2], dtype)
        mode = inst.mul_mode
        if dtype.is_float or mode in (None, MulMode.lo):
            self.block.append(
                BinaryOp(op="mul", dtype=dtype, dst=destination, a=a, b=b)
            )
        elif mode is MulMode.hi:
            self.block.append(
                BinaryOp(op="mulhi", dtype=dtype, dst=destination, a=a, b=b)
            )
        else:  # wide
            wide = _WIDEN[dtype]
            wide_a = self._temp(wide)
            wide_b = self._temp(wide)
            self.block.append(
                Convert(dst_type=wide, src_type=dtype, dst=wide_a, src=a)
            )
            self.block.append(
                Convert(dst_type=wide, src_type=dtype, dst=wide_b, src=b)
            )
            self.block.append(
                BinaryOp(
                    op="mul", dtype=wide, dst=destination, a=wide_a, b=wide_b
                )
            )

    def _translate_mad(self, inst: PTXInstruction) -> None:
        dtype = inst.dtype
        destination = self._destination(inst.operands[0])
        a = self._value(inst.operands[1], dtype)
        b = self._value(inst.operands[2], dtype)
        if dtype.is_float:
            c = self._value(inst.operands[3], dtype)
            self.block.append(
                FusedMultiplyAdd(
                    dtype=dtype, dst=destination, a=a, b=b, c=c
                )
            )
            return
        mode = inst.mul_mode or MulMode.lo
        if mode is MulMode.wide:
            wide = _WIDEN[dtype]
            c = self._value(inst.operands[3], wide)
            wide_a = self._temp(wide)
            wide_b = self._temp(wide)
            product = self._temp(wide)
            self.block.append(
                Convert(dst_type=wide, src_type=dtype, dst=wide_a, src=a)
            )
            self.block.append(
                Convert(dst_type=wide, src_type=dtype, dst=wide_b, src=b)
            )
            self.block.append(
                BinaryOp(op="mul", dtype=wide, dst=product, a=wide_a,
                         b=wide_b)
            )
            self.block.append(
                BinaryOp(op="add", dtype=wide, dst=destination, a=product,
                         b=c)
            )
            return
        c = self._value(inst.operands[3], dtype)
        op = "mul" if mode is MulMode.lo else "mulhi"
        product = self._temp(dtype)
        self.block.append(
            BinaryOp(op=op, dtype=dtype, dst=product, a=a, b=b)
        )
        self.block.append(
            BinaryOp(op="add", dtype=dtype, dst=destination, a=product, b=c)
        )

    def _translate_unary(self, inst: PTXInstruction, op: str) -> None:
        destination = self._destination(inst.operands[0])
        a = self._value(inst.operands[1], inst.dtype)
        self.block.append(
            UnaryOp(op=op, dtype=inst.dtype, dst=destination, a=a)
        )

    def _translate_intrinsic(self, inst: PTXInstruction, name: str) -> None:
        destination = self._destination(inst.operands[0])
        a = self._value(inst.operands[1], inst.dtype)
        self.block.append(
            Intrinsic(name=name, dtype=inst.dtype, dst=destination,
                      args=[a])
        )

    def _translate_cvt(self, inst: PTXInstruction) -> None:
        destination = self._destination(inst.operands[0])
        src_type = inst.source_type or inst.dtype
        source = self._value(inst.operands[1], src_type)
        self.block.append(
            Convert(
                dst_type=inst.dtype,
                src_type=src_type,
                dst=destination,
                src=source,
                rounding=inst.rounding,
            )
        )

    def _translate_setp(self, inst: PTXInstruction) -> None:
        destination = self._destination(inst.operands[0])
        a = self._value(inst.operands[1], inst.dtype)
        b = self._value(inst.operands[2], inst.dtype)
        self.block.append(
            Compare(
                op=inst.compare.value,
                dtype=inst.dtype,
                dst=destination,
                a=a,
                b=b,
            )
        )

    def _translate_set(self, inst: PTXInstruction) -> None:
        destination = self._destination(inst.operands[0])
        operand_type = inst.source_type or inst.dtype
        a = self._value(inst.operands[1], operand_type)
        b = self._value(inst.operands[2], operand_type)
        predicate = self._temp(DataType.pred)
        self.block.append(
            Compare(
                op=inst.compare.value,
                dtype=operand_type,
                dst=predicate,
                a=a,
                b=b,
            )
        )
        if inst.dtype.is_float:
            true_value = Constant(1.0, inst.dtype)
        else:
            mask = (1 << (inst.dtype.size * 8)) - 1
            true_value = Constant(mask, inst.dtype)
        self.block.append(
            Select(
                dtype=inst.dtype,
                dst=destination,
                a=true_value,
                b=Constant(0, inst.dtype),
                predicate=predicate,
            )
        )

    def _translate_selp(self, inst: PTXInstruction) -> None:
        destination = self._destination(inst.operands[0])
        a = self._value(inst.operands[1], inst.dtype)
        b = self._value(inst.operands[2], inst.dtype)
        predicate = self._value(inst.operands[3], DataType.pred)
        self.block.append(
            Select(
                dtype=inst.dtype,
                dst=destination,
                a=a,
                b=b,
                predicate=predicate,
            )
        )

    def _translate_slct(self, inst: PTXInstruction) -> None:
        destination = self._destination(inst.operands[0])
        a = self._value(inst.operands[1], inst.dtype)
        b = self._value(inst.operands[2], inst.dtype)
        selector_type = inst.source_type or DataType.f32
        c = self._value(inst.operands[3], selector_type)
        predicate = self._temp(DataType.pred)
        self.block.append(
            Compare(
                op="ge",
                dtype=selector_type,
                dst=predicate,
                a=c,
                b=Constant(0, selector_type),
            )
        )
        self.block.append(
            Select(
                dtype=inst.dtype,
                dst=destination,
                a=a,
                b=b,
                predicate=predicate,
            )
        )

    def _translate_branch(self, inst: PTXInstruction, labels) -> None:
        target = inst.operands[0]
        if not isinstance(target, LabelOperand):
            raise TranslationError(
                f"{self.kernel.name}: indirect branches are unsupported"
            )
        target_label = labels.get(target.name)
        if target_label is None:
            raise TranslationError(
                f"{self.kernel.name}: branch to unknown label "
                f"{target.name!r}"
            )
        if inst.guard is None:
            self.block.append(Branch(target_label))
            self.block = None
            return
        predicate = self._guard_register(inst)
        fallthrough = self._fresh_block_label("fall")
        self.block.append(
            CondBranch(
                predicate=predicate,
                taken=target_label,
                fallthrough=fallthrough,
            )
        )
        self.block = self.function.add_block(fallthrough)

    def _translate_atomic(self, inst: PTXInstruction) -> None:
        has_destination = inst.opcode is Opcode.atom
        operands = inst.operands
        destination = (
            self._destination(operands[0]) if has_destination else None
        )
        address = operands[1] if has_destination else operands[0]
        base, offset = self._address(address)
        space = self._resolve_space(inst, base)
        value_index = 2 if has_destination else 1
        value = self._value(operands[value_index], inst.dtype)
        compare = None
        if inst.atomic_op is not None and inst.atomic_op.name == "cas":
            compare = value
            value = self._value(operands[value_index + 1], inst.dtype)
        self.block.append(
            AtomicRMW(
                op=str(inst.atomic_op),
                dtype=inst.dtype,
                dst=destination,
                space=space,
                base=base,
                value=value,
                compare=compare,
                offset=offset,
            )
        )

    def _translate_vote(self, inst: PTXInstruction) -> None:
        destination = self._destination(inst.operands[0])
        source = self._value(inst.operands[1], DataType.pred)
        self.block.append(
            Reduce(op=inst.vote_mode.value, dst=destination, src=source)
        )


def _clone_without_guard(inst: PTXInstruction) -> PTXInstruction:
    clone = PTXInstruction(
        opcode=inst.opcode,
        dtype=inst.dtype,
        operands=list(inst.operands),
        guard=None,
        space=inst.space,
        compare=inst.compare,
        mul_mode=inst.mul_mode,
        atomic_op=inst.atomic_op,
        vote_mode=inst.vote_mode,
        source_type=inst.source_type,
        rounding=inst.rounding,
        approx=inst.approx,
        full=inst.full,
        vector_width=inst.vector_width,
        line=inst.line,
    )
    return clone


def translate_kernel(
    kernel: Kernel, global_symbols: Optional[Dict[str, int]] = None
) -> IRFunction:
    """Translate ``kernel`` to its scalar IR function."""
    return Translator(kernel, global_symbols=global_symbols).translate()
