"""Registration-time kernel analysis.

The paper's runtime "immediately parses and analyzes kernels within the
modules" (§3). This module computes the cheap structural facts the
execution manager and translation cache want before any translation
happens: barrier/atomic/vote usage, static instruction mix, potential
divergence sites, and shared/local segment sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..ptx.instructions import Label, Opcode, PTXInstruction
from ..ptx.module import Kernel
from ..ptx.types import AddressSpace


@dataclass
class KernelAnalysis:
    """Structural summary of one PTX kernel."""

    name: str
    static_instructions: int = 0
    basic_block_estimate: int = 0
    barrier_count: int = 0
    atomic_count: int = 0
    vote_count: int = 0
    #: Conditional branches — each is a *potential* divergence site.
    potential_divergence_sites: int = 0
    uses_shared_memory: bool = False
    uses_local_memory: bool = False
    shared_size: int = 0
    local_size: int = 0
    param_size: int = 0
    opcode_histogram: Dict[str, int] = field(default_factory=dict)

    @property
    def is_statically_convergent(self) -> bool:
        """True when no conditional branch exists, so every execution is
        convergent (§4.1: "some kernels may be statically proven to be
        entirely convergent")."""
        return self.potential_divergence_sites == 0

    @property
    def has_barriers(self) -> bool:
        return self.barrier_count > 0


def analyze_kernel(kernel: Kernel) -> KernelAnalysis:
    analysis = KernelAnalysis(name=kernel.name)
    analysis.shared_size = kernel.shared_size
    analysis.local_size = kernel.local_size
    analysis.param_size = kernel.param_size
    analysis.uses_shared_memory = analysis.shared_size > 0
    analysis.uses_local_memory = analysis.local_size > 0
    leaders = 1
    previous_was_terminator = False
    for statement in kernel.statements:
        if isinstance(statement, Label):
            leaders += 1
            previous_was_terminator = False
            continue
        instruction: PTXInstruction = statement
        analysis.static_instructions += 1
        name = str(instruction.opcode)
        analysis.opcode_histogram[name] = (
            analysis.opcode_histogram.get(name, 0) + 1
        )
        if instruction.opcode is Opcode.bar:
            analysis.barrier_count += 1
            leaders += 1
        elif instruction.opcode in (Opcode.atom, Opcode.red):
            analysis.atomic_count += 1
        elif instruction.opcode is Opcode.vote:
            analysis.vote_count += 1
        elif instruction.opcode is Opcode.bra:
            if instruction.guard is not None:
                analysis.potential_divergence_sites += 1
            leaders += 1
        if instruction.space is AddressSpace.shared:
            analysis.uses_shared_memory = True
        if instruction.space is AddressSpace.local:
            analysis.uses_local_memory = True
        if previous_was_terminator:
            leaders += 1
        previous_was_terminator = instruction.is_terminator
    analysis.basic_block_estimate = leaders
    return analysis


def analyze_module(module) -> List[KernelAnalysis]:
    return [analyze_kernel(kernel) for kernel in module.kernels.values()]
