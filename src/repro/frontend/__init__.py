"""Frontend: PTX -> scalar IR translation and registration-time kernel
analysis (§5.1). Predication lowering (predicated ops -> selects /
short diamonds) and barrier block-splitting happen inside the
translator, matching the paper's PTX->PTX pre-pass."""

from .analysis import KernelAnalysis, analyze_kernel, analyze_module
from .translator import Translator, translate_kernel

__all__ = [
    "KernelAnalysis",
    "Translator",
    "analyze_kernel",
    "analyze_module",
    "translate_kernel",
]
