"""``python -m repro.serve`` — run the multi-tenant kernel server.

Starts a :class:`~repro.runtime.pool.DevicePool` of persistent worker
processes behind the JSON/HTTP front-end of
:mod:`repro.runtime.service`. With ``REPRO_CACHE=1`` in the
environment the workers warm-start from the persistent translation
cache (pass ``--warm`` to pre-translate registered modules at boot).

Example::

    PYTHONPATH=src REPRO_CACHE=1 python -m repro.serve \
        --workers 4 --module kernels.ptx --warm --port 8420
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from .runtime.pool import DevicePool
from .runtime.service import KernelServer


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve kernel launches from a DevicePool over HTTP.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=8420,
        help="TCP port; 0 picks a free port (default %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes in the pool (default %(default)s)",
    )
    parser.add_argument(
        "--module", action="append", default=[], metavar="PTX_FILE",
        help="PTX module to register on every worker (repeatable)",
    )
    parser.add_argument(
        "--warm", action="store_true",
        help="pre-translate registered kernels before accepting clients",
    )
    args = parser.parse_args(argv)

    modules = []
    for path in args.module:
        with open(path, "r", encoding="utf-8") as handle:
            modules.append(handle.read())

    pool = DevicePool(
        workers=args.workers, modules=modules, warm=args.warm
    )
    server = KernelServer(pool, host=args.host, port=args.port)
    print(
        f"repro.serve: {args.workers} workers, "
        f"{len(modules)} modules, listening on "
        f"http://{server.host}:{server.port}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("repro.serve: shutting down", flush=True)
    finally:
        server.shutdown()
    return 0


if __name__ == "__main__":
    sys.exit(main())
