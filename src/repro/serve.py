"""``python -m repro.serve`` — run the multi-tenant kernel server.

Starts a :class:`~repro.runtime.pool.DevicePool` of persistent worker
processes behind the JSON/HTTP front-end of
:mod:`repro.runtime.service`. With ``REPRO_CACHE=1`` in the
environment the workers warm-start from the persistent translation
cache (pass ``--warm`` to pre-translate registered modules at boot).

The pool is self-healing: a supervisor respawns crashed or hung
workers warm, and the server sheds launches with 503 + ``Retry-After``
once ``--max-queue`` / ``--max-tenant-queue`` outstanding launches
are reached. SIGINT/SIGTERM trigger a graceful drain: new launches
are shed, queued work flushes (bounded by ``--drain-timeout``), then
the workers stop.

With ``--durability journal|checkpoint`` tenant sessions become
*durable*: the pool journals their state-mutating operations (and,
in checkpoint mode, periodically snapshots allocation contents to
``--state-dir``), so after a worker crash the supervisor restores
each tenant's guest memory bit-identically onto the respawned worker
and clients never observe ``DeviceLost``.

Example::

    PYTHONPATH=src REPRO_CACHE=1 python -m repro.serve \
        --workers 4 --module kernels.ptx --warm --port 8420 \
        --max-queue 256 --max-tenant-queue 32 --deadline 30
"""

from __future__ import annotations

import argparse
import signal
import sys
from typing import Optional, Sequence

from .runtime.pool import DevicePool
from .runtime.service import KernelServer


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve kernel launches from a DevicePool over HTTP.",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default %(default)s)"
    )
    parser.add_argument(
        "--port", type=int, default=8420,
        help="TCP port; 0 picks a free port (default %(default)s)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes in the pool (default %(default)s)",
    )
    parser.add_argument(
        "--module", action="append", default=[], metavar="PTX_FILE",
        help="PTX module to register on every worker (repeatable)",
    )
    parser.add_argument(
        "--warm", action="store_true",
        help="pre-translate registered kernels before accepting clients",
    )
    parser.add_argument(
        "--max-queue", type=int, default=None, metavar="N",
        help="global outstanding-launch limit before shedding with 503",
    )
    parser.add_argument(
        "--max-tenant-queue", type=int, default=None, metavar="N",
        help="per-tenant outstanding-launch limit before shedding",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="default queue-wait deadline applied to every launch",
    )
    parser.add_argument(
        "--drain-timeout", type=float, default=30.0, metavar="SECONDS",
        help="graceful-drain flush bound on shutdown (default %(default)s)",
    )
    parser.add_argument(
        "--no-respawn", action="store_true",
        help="disable supervisor respawn of lost workers",
    )
    parser.add_argument(
        "--durability", choices=("none", "journal", "checkpoint"),
        default="none",
        help="default session durability: journal ops (and, with "
             "'checkpoint', snapshot allocations to disk) so tenant "
             "state is restored transparently after a worker crash "
             "(default %(default)s)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=int, default=32, metavar="N",
        help="auto-checkpoint period in executed launches for "
             "checkpoint-durable sessions (default %(default)s)",
    )
    parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="checkpoint directory (default $REPRO_STATE_DIR or "
             "~/.cache/repro/state)",
    )
    args = parser.parse_args(argv)

    modules = []
    for path in args.module:
        with open(path, "r", encoding="utf-8") as handle:
            modules.append(handle.read())

    pool = DevicePool(
        workers=args.workers,
        modules=modules,
        warm=args.warm,
        respawn=not args.no_respawn,
        state_dir=args.state_dir,
    )
    server = KernelServer(
        pool,
        host=args.host,
        port=args.port,
        max_queue_depth=args.max_queue,
        max_tenant_queue=args.max_tenant_queue,
        default_deadline=args.deadline,
        durability=args.durability,
        checkpoint_interval=args.checkpoint_interval,
    )
    # SIGTERM (systemd/containers) drains like Ctrl-C does.
    signal.signal(
        signal.SIGTERM,
        lambda signum, frame: (_ for _ in ()).throw(KeyboardInterrupt),
    )
    print(
        f"repro.serve: {args.workers} workers, "
        f"{len(modules)} modules, listening on "
        f"http://{server.host}:{server.port}",
        flush=True,
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print(
            "repro.serve: draining (new launches shed with 503)",
            flush=True,
        )
    finally:
        server.shutdown(drain=True, drain_timeout=args.drain_timeout)
        print("repro.serve: stopped", flush=True)
    return 0


if __name__ == "__main__":
    sys.exit(main())
