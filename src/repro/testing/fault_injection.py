"""Seeded, deterministic fault injection for the containment runtime.

A :class:`FaultInjector` patches well-defined *sites* inside one
:class:`~repro.api.device.Device` so tests (and the CI fault matrix)
can drive every containment path on demand:

``memory_fault``
    Simulated loads/stores raise :class:`~repro.errors.MemoryFault`
    with the armed probability — exercising the KernelTrap boundary.
``interpreter_error``
    Warp executions raise a bare :class:`~repro.errors.ExecutionError`
    before running — a fault with no program counter attached.
``vectorization_failure``
    Building the specialization of one warp width raises
    :class:`~repro.errors.VectorizationError` — exercising the
    degradation ladder. The device's persistent cache tier is detached
    while armed (a disk hit would otherwise serve the "failing" width).
``cache_corruption``
    Persistent-tier entries are corrupted on disk just before they are
    read — exercising the store's corrupt-entry recovery path.
``slow_warp``
    Warp executions sleep before running — exercising the wall-clock
    watchdog deterministically.
``barrier_starvation``
    Barrier releases are suppressed, stranding arrived threads —
    exercising :class:`~repro.errors.BarrierDeadlock` reporting.
``oob_within_arena``
    Guest stores aimed inside one allocation are redirected to just
    past its end — still inside the arena, so only the sanitizer's
    redzones can tell. Sanitized devices trap with exact coordinates;
    unsanitized devices complete silently (corrupting the neighbour).
``use_after_free``
    Guest loads aimed inside one allocation are redirected to the
    corresponding offset of a buffer the test already freed. Sanitized
    devices fault on the quarantined bytes; unsanitized devices
    silently read whatever the arena holds there.
``shared_race``
    Fired shared-memory guest stores are redirected to byte 0 of the
    storing thread's CTA shared segment, manufacturing a same-interval
    write-write conflict between threads. Only the sanitizer's race
    detector can see it — the stores themselves are in bounds.

Process-level chaos sites target a
:class:`~repro.runtime.pool.DevicePool` instead of a Device — pass
the *pool* as the injector's first argument. They patch the
parent-side ``_Worker`` send hooks, so the worker process itself runs
unmodified code:

``kill_worker``
    The worker process is ``kill()``-ed around a matching request
    (``when="after_send"`` by default: the request was delivered, so
    its future resolves to :class:`~repro.errors.DeviceLost` with
    ``delivered=True``) — exercising crash detection, warm respawn,
    epoch bumping, and the retry path for launches still queued
    behind the casualty.
``hang_worker``
    A ``chaos_hang`` request is slipped into the pipe ahead of the
    real one, wedging the worker's serve loop for ``duration``
    seconds — exercising stuck-call supervision (and the stale-reply
    discard when the hang reply eventually surfaces).
``drop_pipe``
    The parent's end of the worker pipe is closed around a matching
    request — exercising broken-pipe loss detection
    (``delivered=False``: the request never left the parent).
``torn_checkpoint``
    A durability checkpoint that was just written is truncated to half
    its size — a torn write. Restore must fail its checksum, discard
    it, and fall back to the previous checkpoint (plus a longer
    journal replay).
``corrupt_checkpoint``
    Bytes in the middle of a just-written checkpoint manifest are
    overwritten — bit corruption. Same recovery contract as
    ``torn_checkpoint``.
``kill_during_restore``
    The worker being restored is ``kill()``-ed after ``after_steps``
    restore steps (checkpoint writes / journal replays) — exercising
    restore-crash recovery: the supervisor respawns again and the
    restore retries from scratch on the fresh epoch.

Determinism: every probabilistic decision comes from one
``random.Random`` seeded explicitly or from ``$REPRO_FAULT_SEED``
(default 0), so a failing CI seed reproduces locally bit-for-bit.

Injectors are context managers; on exit every patched site is restored
to the original bound behavior::

    with FaultInjector(device, seed=7) as inject:
        inject.arm("memory_fault", probability=0.05)
        ...
"""

from __future__ import annotations

import os
import random
import time
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ExecutionError, MemoryFault, VectorizationError


def _region(allocation) -> Tuple[int, int]:
    """``(base, size)`` of an Allocation-like object or a bare pair."""
    if isinstance(allocation, tuple):
        base, size = allocation
        return int(base), int(size)
    return int(allocation), int(allocation.size)


def fault_seed(default: int = 0) -> int:
    """The fault-injection seed for this process: ``$REPRO_FAULT_SEED``
    when set, otherwise ``default``."""
    try:
        return int(os.environ.get("REPRO_FAULT_SEED", default))
    except ValueError:
        return default


class FaultInjector:
    """Patches fault sites on one Device; seeded and restorable."""

    SITES = (
        "memory_fault",
        "interpreter_error",
        "vectorization_failure",
        "cache_corruption",
        "slow_warp",
        "barrier_starvation",
        "oob_within_arena",
        "use_after_free",
        "shared_race",
        "kill_worker",
        "hang_worker",
        "drop_pipe",
        "torn_checkpoint",
        "corrupt_checkpoint",
        "kill_during_restore",
    )

    #: Sites whose target is a DevicePool (parent-side process chaos),
    #: not a Device.
    PROCESS_SITES = (
        "kill_worker",
        "hang_worker",
        "drop_pipe",
        "torn_checkpoint",
        "corrupt_checkpoint",
        "kill_during_restore",
    )

    def __init__(self, device, seed: Optional[int] = None):
        self.device = device
        self.seed = fault_seed() if seed is None else seed
        self.rng = random.Random(self.seed)
        #: Per-site count of injections actually fired.
        self.fired: Dict[str, int] = {}
        self._restores: List[Tuple[object, str, bool, object]] = []
        self._armed = False

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "FaultInjector":
        return self

    def __exit__(self, *exc_info) -> None:
        self.restore()

    def restore(self) -> None:
        """Undo every patch, most recent first. Also disarms the
        injector outright: kernels lowered while armed hold pre-bound
        references to the patched methods, and those must stop firing
        too."""
        self._armed = False
        while self._restores:
            target, name, had_instance_attr, original = self._restores.pop()
            if had_instance_attr:
                setattr(target, name, original)
            else:
                try:
                    delattr(target, name)
                except AttributeError:  # pragma: no cover - already gone
                    pass

    # -- arming --------------------------------------------------------------

    def arm(self, site: str, probability: float = 1.0, **options) -> None:
        """Arm one fault site. ``probability`` is evaluated per call
        against this injector's seeded RNG."""
        if site not in self.SITES:
            raise ValueError(
                f"unknown fault site {site!r} (have {self.SITES})"
            )
        getattr(self, f"_arm_{site}")(probability, **options)
        self._armed = True

    # -- internals -----------------------------------------------------------

    def _fires(self, site: str, probability: float) -> bool:
        if not self._armed:
            return False
        if self.rng.random() >= probability:
            return False
        self.fired[site] = self.fired.get(site, 0) + 1
        return True

    def _patch(self, target, name: str, wrapper: Callable) -> None:
        had_instance_attr = name in target.__dict__
        original = target.__dict__.get(name)
        setattr(target, name, wrapper)
        self._restores.append((target, name, had_instance_attr, original))

    def _arm_memory_fault(
        self, probability: float, kind: str = "both"
    ) -> None:
        """``kind``: "load", "store", or "both". Must be armed before
        the kernel is translated: the lowered closures pre-bind the
        memory system's load/store methods."""
        memory = self.device.memory
        if kind in ("load", "both"):
            original_load = memory.load

            def load(dtype, address):
                if self._fires("memory_fault", probability):
                    raise MemoryFault(
                        int(address), dtype.size, reason="injected fault"
                    )
                return original_load(dtype, address)

            self._patch(memory, "load", load)
        if kind in ("store", "both"):
            original_store = memory.store

            def store(dtype, address, value):
                if self._fires("memory_fault", probability):
                    raise MemoryFault(
                        int(address), dtype.size, reason="injected fault"
                    )
                return original_store(dtype, address, value)

            self._patch(memory, "store", store)

    def _arm_interpreter_error(self, probability: float) -> None:
        interpreter = self.device.interpreter
        original = interpreter.execute

        def execute(*args, **kwargs):
            if self._fires("interpreter_error", probability):
                raise ExecutionError("injected interpreter fault")
            return original(*args, **kwargs)

        self._patch(interpreter, "execute", execute)

    def _arm_vectorization_failure(
        self, probability: float, width: int = 0
    ) -> None:
        """``width`` 0 fails every width > 1 (width 1 is the scalar
        floor and must stay buildable)."""
        cache = self.device.cache
        original = cache._build_specialization

        def build(kernel_name, warp_size):
            if (
                warp_size > 1
                and (width == 0 or warp_size == width)
                and self._fires("vectorization_failure", probability)
            ):
                raise VectorizationError(
                    f"injected vectorization failure at width {warp_size}"
                )
            return original(kernel_name, warp_size)

        self._patch(cache, "_build_specialization", build)
        # A persistent-tier hit would serve the "failing" width without
        # ever building it; detach the store while armed.
        self._patch(cache, "store", None)

    def _arm_cache_corruption(self, probability: float) -> None:
        store = self.device.cache.store
        if store is None:
            raise ValueError(
                "cache_corruption needs a device with a persistent "
                "cache store attached"
            )
        original = store.load

        def load(digest, statistics=None):
            if self._fires("cache_corruption", probability):
                path = store.path(digest)
                try:
                    with open(path, "r+b") as handle:
                        handle.write(b"\x00corrupt\x00")
                except OSError:
                    pass
            return original(digest, statistics=statistics)

        self._patch(store, "load", load)

    def _arm_slow_warp(
        self, probability: float, delay_s: float = 0.05
    ) -> None:
        interpreter = self.device.interpreter
        original = interpreter.execute

        def execute(*args, **kwargs):
            if self._fires("slow_warp", probability):
                time.sleep(delay_s)
            return original(*args, **kwargs)

        self._patch(interpreter, "execute", execute)

    def _arm_oob_within_arena(
        self, probability: float, allocation=None, delta: int = 4
    ) -> None:
        """Redirect stores aimed inside ``allocation`` (an
        :class:`~repro.machine.memory.Allocation` or ``(base, size)``)
        to ``delta`` bytes past its end. On a sanitized device the
        checked store path is patched (works even after translation:
        checked closures late-bind the sanitizer); on an unsanitized
        device the raw ``memory.store`` is patched, which — like
        ``memory_fault`` — must happen before translation."""
        if allocation is None:
            raise ValueError("oob_within_arena needs allocation=")
        base, size = _region(allocation)
        sanitizer = getattr(self.device, "sanitizer", None)
        if sanitizer is not None:
            original = sanitizer.guest_store

            def guest_store(
                state, lane, address, dtype, value, shared, label,
                index, atomic=False,
            ):
                address = int(address)
                if (
                    not shared
                    and base <= address < base + size
                    and self._fires("oob_within_arena", probability)
                ):
                    address = base + size + delta
                return original(
                    state, lane, address, dtype, value, shared, label,
                    index, atomic=atomic,
                )

            self._patch(sanitizer, "guest_store", guest_store)
            return
        memory = self.device.memory
        original = memory.store

        def store(dtype, address, value):
            address = int(address)
            if base <= address < base + size and self._fires(
                "oob_within_arena", probability
            ):
                address = base + size + delta
            return original(dtype, address, value)

        self._patch(memory, "store", store)

    def _arm_use_after_free(
        self, probability: float, allocation=None, freed=None
    ) -> None:
        """Redirect loads aimed inside ``allocation`` to the matching
        offset of ``freed`` — a buffer the test has already freed.
        Same patch points and arming caveats as ``oob_within_arena``,
        on the load side."""
        if allocation is None or freed is None:
            raise ValueError(
                "use_after_free needs allocation= and freed="
            )
        base, size = _region(allocation)
        victim = int(freed)
        sanitizer = getattr(self.device, "sanitizer", None)
        if sanitizer is not None:
            original = sanitizer.guest_load

            def guest_load(
                state, lane, address, dtype, shared, label, index,
                atomic=False,
            ):
                address = int(address)
                if (
                    not shared
                    and base <= address < base + size
                    and self._fires("use_after_free", probability)
                ):
                    address = victim + (address - base)
                return original(
                    state, lane, address, dtype, shared, label, index,
                    atomic=atomic,
                )

            self._patch(sanitizer, "guest_load", guest_load)
            return
        memory = self.device.memory
        original = memory.load

        def load(dtype, address):
            address = int(address)
            if base <= address < base + size and self._fires(
                "use_after_free", probability
            ):
                address = victim + (address - base)
            return original(dtype, address)

        self._patch(memory, "load", load)

    def _arm_shared_race(self, probability: float) -> None:
        """Redirect fired shared-memory stores to byte 0 of the storing
        thread's CTA shared segment: two different threads firing
        within one barrier interval manufacture a W-W race. On an
        unsanitized device shared stores are recognized by address
        (the managers' slab ranges) and silently complete."""
        sanitizer = getattr(self.device, "sanitizer", None)
        if sanitizer is not None:
            original = sanitizer.guest_store

            def guest_store(
                state, lane, address, dtype, value, shared, label,
                index, atomic=False,
            ):
                if shared and self._fires("shared_race", probability):
                    address = state.contexts[lane].shared_base
                return original(
                    state, lane, address, dtype, value, shared, label,
                    index, atomic=atomic,
                )

            self._patch(sanitizer, "guest_store", guest_store)
            return
        managers = self.device.launcher.managers
        memory = self.device.memory
        original = memory.store

        def store(dtype, address, value):
            address = int(address)
            for manager in managers:
                slab_bytes = manager._shared_slab_bytes
                for slab in manager._shared_slabs:
                    if slab <= address < slab + slab_bytes:
                        if self._fires("shared_race", probability):
                            address = slab
                        return original(dtype, address, value)
            return original(dtype, address, value)

        self._patch(memory, "store", store)

    def _arm_barrier_starvation(self, probability: float) -> None:
        for manager in self.device.launcher.managers:
            original = manager._maybe_release_barrier

            def released(
                cta, ready, live_counts, barrier_pools, _original=original
            ):
                if self._fires("barrier_starvation", probability):
                    return
                _original(cta, ready, live_counts, barrier_pools)

            self._patch(manager, "_maybe_release_barrier", released)

    # -- process-level chaos (target: DevicePool) ----------------------------

    def _pool_workers(self, worker: Optional[int]) -> list:
        workers = getattr(self.device, "_workers", None)
        if workers is None:
            raise ValueError(
                "process chaos sites need a DevicePool as the "
                "injector target, not a Device"
            )
        if worker is None:
            return list(workers)
        return [workers[worker]]

    def _arm_kill_worker(
        self,
        probability: float,
        worker: Optional[int] = None,
        op: Optional[str] = "launch",
        when: str = "after_send",
        kernel: Optional[str] = None,
    ) -> None:
        """``kill()`` the worker process around a matching request.
        ``op`` filters which RPC triggers the decision (None = any)
        and ``kernel`` narrows launch requests to one kernel name;
        ``when`` is ``"after_send"`` (request delivered — the future
        fails with ``DeviceLost(delivered=True)``) or
        ``"before_send"``."""
        hook = (
            "_hook_after_send" if when == "after_send"
            else "_hook_before_send"
        )
        for target in self._pool_workers(worker):
            original = getattr(target, hook)

            def fire(op_, payload, _target=target, _original=original):
                if (
                    (op is None or op_ == op)
                    and (
                        kernel is None
                        or payload.get("kernel") == kernel
                    )
                    and self._fires("kill_worker", probability)
                ):
                    _target.process.kill()
                _original(op_, payload)

            self._patch(target, hook, fire)

    def _arm_hang_worker(
        self,
        probability: float,
        worker: Optional[int] = None,
        op: Optional[str] = "launch",
        duration: float = 5.0,
    ) -> None:
        """Wedge the worker's serve loop by slipping a ``chaos_hang``
        request (request id 0 — its reply is never pending, so the
        parent discards it as stale) into the pipe ahead of the real
        request, which then sits unanswered for ``duration`` seconds."""
        for target in self._pool_workers(worker):
            original = target._hook_before_send

            def fire(op_, payload, _target=target, _original=original):
                if (op is None or op_ == op) and self._fires(
                    "hang_worker", probability
                ):
                    try:
                        _target.conn.send(
                            (0, "chaos_hang", {"duration": duration})
                        )
                    except (OSError, ValueError):
                        pass
                _original(op_, payload)

            self._patch(target, "_hook_before_send", fire)

    def _pool_state_store(self):
        store = getattr(self.device, "_state_store", None)
        if store is None:
            raise ValueError(
                "checkpoint chaos sites need a DevicePool that has a "
                "checkpoint-durable session (the state store is "
                "created with the first one)"
            )
        return store

    def _arm_torn_checkpoint(self, probability: float) -> None:
        """Truncate a just-written checkpoint manifest to half its
        size: a torn write. ``load_latest`` must reject it on checksum
        and fall back to the previous checkpoint."""
        store = self._pool_state_store()
        original = store.store_checkpoint

        def store_checkpoint(tenant, journal_index, allocations):
            seq = original(tenant, journal_index, allocations)
            if seq is not None and self._fires(
                "torn_checkpoint", probability
            ):
                path = store.manifest_path(tenant, seq)
                try:
                    size = os.path.getsize(path)
                    with open(path, "r+b") as handle:
                        handle.truncate(size // 2)
                except OSError:
                    pass
            return seq

        self._patch(store, "store_checkpoint", store_checkpoint)

    def _arm_corrupt_checkpoint(self, probability: float) -> None:
        """Overwrite bytes in the middle of a just-written checkpoint
        manifest: bit corruption that keeps the file length intact, so
        only the checksum can tell."""
        store = self._pool_state_store()
        original = store.store_checkpoint

        def store_checkpoint(tenant, journal_index, allocations):
            seq = original(tenant, journal_index, allocations)
            if seq is not None and self._fires(
                "corrupt_checkpoint", probability
            ):
                path = store.manifest_path(tenant, seq)
                try:
                    size = os.path.getsize(path)
                    with open(path, "r+b") as handle:
                        handle.seek(size // 2)
                        handle.write(b"\x00corrupt\x00")
                except OSError:
                    pass
            return seq

        self._patch(store, "store_checkpoint", store_checkpoint)

    def _arm_kill_during_restore(
        self,
        probability: float,
        worker: Optional[int] = None,
        after_steps: int = 1,
        times: int = 1,
    ) -> None:
        """Kill the worker being restored after ``after_steps``
        restore steps (checkpoint-allocation writes or journal
        replays) have been applied to it, at most ``times`` times
        overall (so the retried restore eventually converges). The
        in-progress restore fails with ``DeviceLost``; the supervisor
        respawns the worker again and retries the restore from
        scratch on the fresh epoch (a fresh arena — nothing is
        double-applied)."""
        pool = self.device
        if not hasattr(pool, "_hook_restore_step"):
            raise ValueError(
                "kill_during_restore needs a DevicePool as the "
                "injector target, not a Device"
            )
        original = pool._hook_restore_step
        state = {"applied": 0, "kills": 0}

        def fire(worker_, op, _original=original):
            if worker is None or worker_.index == worker:
                state["applied"] += 1
                if (
                    state["applied"] > after_steps
                    and state["kills"] < times
                    and self._fires("kill_during_restore", probability)
                ):
                    state["applied"] = 0
                    state["kills"] += 1
                    try:
                        worker_.process.kill()
                    except OSError:  # pragma: no cover - defensive
                        pass
            _original(worker_, op)

        self._patch(pool, "_hook_restore_step", fire)

    def _arm_drop_pipe(
        self,
        probability: float,
        worker: Optional[int] = None,
        op: Optional[str] = "launch",
    ) -> None:
        """Close the parent's end of the worker pipe just before a
        matching request is sent: the send fails, the worker is marked
        lost with ``delivered=False`` (the request never left the
        parent), and the supervisor recycles the process."""
        for target in self._pool_workers(worker):
            original = target._hook_before_send

            def fire(op_, payload, _target=target, _original=original):
                if (op is None or op_ == op) and self._fires(
                    "drop_pipe", probability
                ):
                    try:
                        _target.conn.close()
                    except OSError:
                        pass
                _original(op_, payload)

            self._patch(target, "_hook_before_send", fire)
