"""Test-support utilities: deterministic fault injection for the
containment runtime (traps, watchdog, degradation, cache recovery)."""

from .fault_injection import FaultInjector, fault_seed

__all__ = ["FaultInjector", "fault_seed"]
