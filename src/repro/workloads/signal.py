"""Signal-processing workloads: FastWalshTransform, DwtHaar1D,
BitonicSort — butterfly-structured kernels with per-stage barriers.
"""

from __future__ import annotations

import numpy as np

from .base import Category, Workload
from .registry import register

_FWT_PTX = r"""
.version 2.3
.target sim
.entry fwtKernel (.param .u64 data)
{
  .reg .u32 %r<16>;
  .reg .u64 %rd<6>;
  .reg .f32 %f<8>;
  .reg .pred %p<4>;
  .shared .f32 sdata[@BLOCK@];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [data];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  mov.u32 %r5, sdata;
  shl.b32 %r6, %r1, 2;
  add.u32 %r7, %r5, %r6;
  st.shared.f32 [%r7], %f1;
  bar.sync 0;
  mov.u32 %r8, 1;
WLOOP:
  // partner = tid ^ stride; butterfly on the lower index
  xor.b32 %r9, %r1, %r8;
  and.b32 %r10, %r1, %r8;
  setp.ne.u32 %p1, %r10, 0;
  @%p1 bra SKIP;
  shl.b32 %r11, %r9, 2;
  add.u32 %r12, %r5, %r11;
  ld.shared.f32 %f2, [%r7];
  ld.shared.f32 %f3, [%r12];
  add.f32 %f4, %f2, %f3;
  sub.f32 %f5, %f2, %f3;
  st.shared.f32 [%r7], %f4;
  st.shared.f32 [%r12], %f5;
SKIP:
  bar.sync 0;
  shl.b32 %r8, %r8, 1;
  setp.lt.u32 %p2, %r8, @BLOCK@;
  @%p2 bra WLOOP;
  ld.shared.f32 %f6, [%r7];
  st.global.f32 [%rd3], %f6;
  exit;
}
"""


@register
class FastWalshTransform(Workload):
    """SDK ``fastWalshTransform``: per-CTA Walsh-Hadamard butterfly."""

    name = "FastWalshTransform"
    category = Category.BARRIER_HEAVY
    description = "Walsh-Hadamard butterflies with per-stage barriers"

    BLOCK = 64

    def module_source(self) -> str:
        return _FWT_PTX.replace("@BLOCK@", str(self.BLOCK))

    def reference(self, data: np.ndarray) -> np.ndarray:
        out = data.reshape(-1, self.BLOCK).astype(np.float32).copy()
        stride = 1
        while stride < self.BLOCK:
            for base in range(0, self.BLOCK, 2 * stride):
                for index in range(base, base + stride):
                    a = out[:, index].copy()
                    b = out[:, index + stride].copy()
                    out[:, index] = a + b
                    out[:, index + stride] = a - b
            stride *= 2
        return out.reshape(-1)

    def execute(self, device, scale: float = 1.0, check: bool = True):
        ctas = max(2, int(4 * scale))
        n = ctas * self.BLOCK
        data = self.rng().standard_normal(n).astype(np.float32)
        buffer = device.upload(data)
        result = device.launch(
            "fwtKernel",
            grid=(ctas, 1, 1),
            block=(self.BLOCK, 1, 1),
            args=[buffer],
        )
        correct = None
        if check:
            got = buffer.read(np.float32, n)
            correct = np.allclose(
                got, self.reference(data), rtol=1e-3, atol=1e-3
            )
        return self._finish([result], correct, check)


_DWT_PTX = r"""
.version 2.3
.target sim
.entry dwtHaar1D (.param .u64 in, .param .u64 approx, .param .u64 detail)
{
  .reg .u32 %r<10>;
  .reg .u64 %rd<12>;
  .reg .f32 %f<8>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  shl.b32 %r5, %r4, 1;
  mul.wide.u32 %rd1, %r5, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  ld.global.f32 %f2, [%rd3+4];
  add.f32 %f3, %f1, %f2;
  mul.f32 %f3, %f3, 0.70710678;
  sub.f32 %f4, %f1, %f2;
  mul.f32 %f4, %f4, 0.70710678;
  mul.wide.u32 %rd4, %r4, 4;
  ld.param.u64 %rd5, [approx];
  add.u64 %rd6, %rd5, %rd4;
  st.global.f32 [%rd6], %f3;
  ld.param.u64 %rd7, [detail];
  add.u64 %rd8, %rd7, %rd4;
  st.global.f32 [%rd8], %f4;
  exit;
}
"""


@register
class DwtHaar1D(Workload):
    """SDK ``dwtHaar1D``: one level of the Haar wavelet transform."""

    name = "DwtHaar1D"
    category = Category.MEMORY_BOUND
    description = "single-level Haar wavelet decomposition"

    def module_source(self) -> str:
        return _DWT_PTX

    def execute(self, device, scale: float = 1.0, check: bool = True):
        pairs = max(128, int(256 * scale))
        n = pairs * 2
        data = self.rng().standard_normal(n).astype(np.float32)
        source = device.upload(data)
        approx = device.malloc(pairs * 4)
        detail = device.malloc(pairs * 4)
        block = 64
        result = device.launch(
            "dwtHaar1D",
            grid=(-(-pairs // block), 1, 1),
            block=(block, 1, 1),
            args=[source, approx, detail],
        )
        correct = None
        if check:
            inv_sqrt2 = np.float32(0.70710678)
            even = data[0::2]
            odd = data[1::2]
            correct = np.allclose(
                approx.read(np.float32, pairs),
                (even + odd) * inv_sqrt2,
                rtol=1e-4,
            ) and np.allclose(
                detail.read(np.float32, pairs),
                (even - odd) * inv_sqrt2,
                rtol=1e-4,
            )
        return self._finish([result], correct, check)


_BITONIC_PTX = r"""
.version 2.3
.target sim
.entry bitonicSort (.param .u64 data)
{
  .reg .u32 %r<20>;
  .reg .u64 %rd<6>;
  .reg .pred %p<6>;
  .shared .u32 svals[@BLOCK@];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [data];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r5, [%rd3];
  mov.u32 %r6, svals;
  shl.b32 %r7, %r1, 2;
  add.u32 %r8, %r6, %r7;
  st.shared.u32 [%r8], %r5;
  bar.sync 0;
  mov.u32 %r9, 2;
KLOOP:
  shr.u32 %r10, %r9, 1;
JLOOP:
  xor.b32 %r11, %r1, %r10;
  setp.le.u32 %p1, %r11, %r1;
  @%p1 bra SKIP;
  // load both elements
  shl.b32 %r12, %r11, 2;
  add.u32 %r13, %r6, %r12;
  ld.shared.u32 %r14, [%r8];
  ld.shared.u32 %r15, [%r13];
  // ascending if (tid & k) == 0; selp-based compare-exchange keeps
  // the comparator convergent (conditional data flow)
  and.b32 %r16, %r1, %r9;
  setp.eq.u32 %p2, %r16, 0;
  setp.gt.u32 %p3, %r14, %r15;
  // p4 true -> values already ordered for this direction
  xor.pred %p4, %p2, %p3;
  selp.u32 %r18, %r14, %r15, %p4;
  selp.u32 %r19, %r15, %r14, %p4;
  st.shared.u32 [%r8], %r18;
  st.shared.u32 [%r13], %r19;
SKIP:
  bar.sync 0;
  shr.u32 %r10, %r10, 1;
  setp.gt.u32 %p1, %r10, 0;
  @%p1 bra JLOOP;
  shl.b32 %r9, %r9, 1;
  setp.le.u32 %p1, %r9, @BLOCK@;
  @%p1 bra KLOOP;
  ld.shared.u32 %r17, [%r8];
  st.global.u32 [%rd3], %r17;
  exit;
}
"""


@register
class BitonicSort(Workload):
    """SDK ``bitonic``: in-shared-memory bitonic sort of one CTA's
    elements, exchanging through predicated compare-and-swap."""

    name = "BitonicSort"
    category = Category.DIVERGENT
    description = "bitonic sorting network per CTA"

    BLOCK = 32

    def module_source(self) -> str:
        return _BITONIC_PTX.replace("@BLOCK@", str(self.BLOCK))

    def execute(self, device, scale: float = 1.0, check: bool = True):
        ctas = max(2, int(4 * scale))
        n = ctas * self.BLOCK
        data = self.rng().integers(0, 1 << 30, n).astype(np.uint32)
        buffer = device.upload(data)
        result = device.launch(
            "bitonicSort",
            grid=(ctas, 1, 1),
            block=(self.BLOCK, 1, 1),
            args=[buffer],
        )
        correct = None
        if check:
            got = buffer.read(np.uint32, n).reshape(ctas, self.BLOCK)
            expected = np.sort(
                data.reshape(ctas, self.BLOCK), axis=1
            )
            correct = np.array_equal(got, expected)
        return self._finish([result], correct, check)
