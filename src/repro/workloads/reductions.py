"""Reduction-style workloads: Reduction, Scan, Histogram64,
ThreadFenceReduction.

Tree reductions and scans interleave short compute phases with CTA
barriers and mildly divergent guards (the shrinking active set), so the
execution manager is entered often — the behaviour Fig. 9 shows for
synchronization-intensive applications.
"""

from __future__ import annotations

import numpy as np

from .base import Category, Workload, grid_for
from .registry import register

_REDUCTION_PTX = r"""
.version 2.3
.target sim
.entry reduceKernel (.param .u64 src, .param .u64 dst)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<4>;
  .shared .f32 sdata[@BLOCK@];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [src];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  mov.u32 %r5, sdata;
  shl.b32 %r6, %r1, 2;
  add.u32 %r7, %r5, %r6;
  st.shared.f32 [%r7], %f1;
  bar.sync 0;
  mov.u32 %r8, @HALF@;
RLOOP:
  setp.ge.u32 %p1, %r1, %r8;
  @%p1 bra SKIP;
  shl.b32 %r9, %r8, 2;
  add.u32 %r10, %r7, %r9;
  ld.shared.f32 %f2, [%r7];
  ld.shared.f32 %f3, [%r10];
  add.f32 %f2, %f2, %f3;
  st.shared.f32 [%r7], %f2;
SKIP:
  bar.sync 0;
  shr.u32 %r8, %r8, 1;
  setp.gt.u32 %p2, %r8, 0;
  @%p2 bra RLOOP;
  setp.ne.u32 %p3, %r1, 0;
  @%p3 bra DONE;
  ld.shared.f32 %f2, [%r5];
  ld.param.u64 %rd4, [dst];
  mul.wide.u32 %rd5, %r3, 4;
  add.u64 %rd6, %rd4, %rd5;
  st.global.f32 [%rd6], %f2;
DONE:
  exit;
}
"""


@register
class Reduction(Workload):
    """SDK ``reduction``: shared-memory tree sum, one partial per CTA."""

    name = "Reduction"
    category = Category.BARRIER_HEAVY
    description = "shared-memory tree reduction with per-step barriers"

    BLOCK = 64

    def module_source(self) -> str:
        return _REDUCTION_PTX.replace("@BLOCK@", str(self.BLOCK)).replace(
            "@HALF@", str(self.BLOCK // 2)
        )

    def execute(self, device, scale: float = 1.0, check: bool = True):
        ctas = max(4, int(8 * scale))
        n = ctas * self.BLOCK
        data = self.rng().standard_normal(n).astype(np.float32)
        src = device.upload(data)
        dst = device.malloc(ctas * 4)
        result = device.launch(
            "reduceKernel",
            grid=(ctas, 1, 1),
            block=(self.BLOCK, 1, 1),
            args=[src, dst],
        )
        correct = None
        if check:
            got = dst.read(np.float32, ctas)
            expected = data.reshape(ctas, self.BLOCK).sum(axis=1)
            correct = np.allclose(got, expected, rtol=1e-4, atol=1e-4)
        return self._finish([result], correct, check)


_SCAN_PTX = r"""
.version 2.3
.target sim
.entry scanKernel (.param .u64 src, .param .u64 dst)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<6>;
  .reg .pred %p<6>;
  .shared .f32 sdata[@BLOCK@];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [src];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  mov.u32 %r5, sdata;
  shl.b32 %r6, %r1, 2;
  add.u32 %r7, %r5, %r6;
  st.shared.f32 [%r7], %f1;
  bar.sync 0;
  mov.u32 %r8, 1;
SLOOP:
  setp.lt.u32 %p1, %r1, %r8;
  mov.f32 %f2, 0.0;
  @%p1 bra NOREAD;
  shl.b32 %r9, %r8, 2;
  sub.u32 %r10, %r7, %r9;
  ld.shared.f32 %f2, [%r10];
NOREAD:
  bar.sync 0;
  setp.lt.u32 %p2, %r1, %r8;
  @%p2 bra NOWRITE;
  ld.shared.f32 %f3, [%r7];
  add.f32 %f3, %f3, %f2;
  st.shared.f32 [%r7], %f3;
NOWRITE:
  bar.sync 0;
  shl.b32 %r8, %r8, 1;
  setp.lt.u32 %p3, %r8, @BLOCK@;
  @%p3 bra SLOOP;
  ld.shared.f32 %f4, [%r7];
  ld.param.u64 %rd4, [dst];
  add.u64 %rd5, %rd4, %rd1;
  st.global.f32 [%rd5], %f4;
  exit;
}
"""


@register
class Scan(Workload):
    """SDK ``scan``: Hillis-Steele inclusive prefix sum per CTA."""

    name = "Scan"
    category = Category.BARRIER_HEAVY
    description = "Hillis-Steele inclusive scan, two barriers per step"

    BLOCK = 64

    def module_source(self) -> str:
        return _SCAN_PTX.replace("@BLOCK@", str(self.BLOCK))

    def execute(self, device, scale: float = 1.0, check: bool = True):
        ctas = max(2, int(4 * scale))
        n = ctas * self.BLOCK
        data = self.rng().standard_normal(n).astype(np.float32)
        src = device.upload(data)
        dst = device.malloc(n * 4)
        result = device.launch(
            "scanKernel",
            grid=(ctas, 1, 1),
            block=(self.BLOCK, 1, 1),
            args=[src, dst],
        )
        correct = None
        if check:
            got = dst.read(np.float32, n)
            expected = np.concatenate(
                [
                    np.cumsum(chunk, dtype=np.float32)
                    for chunk in data.reshape(ctas, self.BLOCK)
                ]
            )
            correct = np.allclose(got, expected, rtol=1e-3, atol=1e-3)
        return self._finish([result], correct, check)


_HISTOGRAM_PTX = r"""
.version 2.3
.target sim
.entry histogram64 (.param .u64 data, .param .u64 bins, .param .u32 n)
{
  .reg .u32 %r<14>;
  .reg .u64 %rd<10>;
  .reg .pred %p<4>;
  .shared .u32 sbins[64];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  // zero this thread's shared bin (BLOCK == 64 bins)
  mov.u32 %r5, sbins;
  shl.b32 %r6, %r1, 2;
  add.u32 %r7, %r5, %r6;
  mov.u32 %r8, 0;
  st.shared.u32 [%r7], %r8;
  bar.sync 0;
  ld.param.u32 %r9, [n];
  setp.ge.u32 %p1, %r4, %r9;
  @%p1 bra MERGE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [data];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r10, [%rd3];
  and.b32 %r11, %r10, 63;
  shl.b32 %r12, %r11, 2;
  add.u32 %r13, %r5, %r12;
  atom.shared.add.u32 %r8, [%r13], 1;
MERGE:
  bar.sync 0;
  // merge shared bins into the global histogram
  ld.shared.u32 %r10, [%r7];
  setp.eq.u32 %p2, %r10, 0;
  @%p2 bra DONE;
  ld.param.u64 %rd4, [bins];
  mul.wide.u32 %rd5, %r1, 4;
  add.u64 %rd6, %rd4, %rd5;
  red.global.add.u32 [%rd6], %r10;
DONE:
  exit;
}
"""


@register
class Histogram64(Workload):
    """SDK ``histogram64``: shared-memory bins updated with atomics,
    merged into a global histogram."""

    name = "Histogram64"
    category = Category.ATOMIC
    description = "64-bin histogram via shared + global atomics"

    BLOCK = 64

    def module_source(self) -> str:
        return _HISTOGRAM_PTX

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(256, int(512 * scale))
        data = self.rng().integers(0, 1 << 16, n).astype(np.uint32)
        src = device.upload(data)
        bins = device.malloc(64 * 4)
        device.memset(bins, 0)
        result = device.launch(
            "histogram64",
            grid=(grid_for(n, self.BLOCK), 1, 1),
            block=(self.BLOCK, 1, 1),
            args=[src, bins, n],
        )
        correct = None
        if check:
            got = bins.read(np.uint32, 64)
            expected = np.bincount(
                (data & 63).astype(np.int64), minlength=64
            ).astype(np.uint32)
            correct = np.array_equal(got, expected)
        return self._finish([result], correct, check)


_TFR_PTX = r"""
.version 2.3
.target sim
.entry threadFenceReduce (.param .u64 src, .param .u64 total,
                          .param .u32 n)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<6>;
  .reg .s32 %s<4>;
  .reg .pred %p<4>;
  .shared .f32 sdata[@BLOCK@];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  mov.f32 %f1, 0.0;
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra STORE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [src];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
STORE:
  mov.u32 %r6, sdata;
  shl.b32 %r7, %r1, 2;
  add.u32 %r8, %r6, %r7;
  st.shared.f32 [%r8], %f1;
  bar.sync 0;
  mov.u32 %r9, @HALF@;
RLOOP:
  setp.ge.u32 %p2, %r1, %r9;
  @%p2 bra SKIP;
  shl.b32 %r10, %r9, 2;
  add.u32 %r11, %r8, %r10;
  ld.shared.f32 %f2, [%r8];
  ld.shared.f32 %f3, [%r11];
  add.f32 %f2, %f2, %f3;
  st.shared.f32 [%r8], %f2;
SKIP:
  bar.sync 0;
  shr.u32 %r9, %r9, 1;
  setp.gt.u32 %p3, %r9, 0;
  @%p3 bra RLOOP;
  setp.ne.u32 %p1, %r1, 0;
  @%p1 bra DONE;
  // publish the CTA partial with a fence + scaled integer atomic
  ld.shared.f32 %f4, [%r6];
  membar.gl;
  mul.f32 %f5, %f4, 65536.0;
  cvt.rni.s32.f32 %s1, %f5;
  ld.param.u64 %rd4, [total];
  red.global.add.s32 [%rd4], %s1;
DONE:
  exit;
}
"""


@register
class ThreadFenceReduction(Workload):
    """SDK ``threadFenceReduction``: single-kernel global sum —
    per-CTA tree reduction, then a fence and a global atomic add of
    the (fixed-point scaled) partial."""

    name = "ThreadFenceReduction"
    category = Category.ATOMIC
    description = "tree reduction + membar + global atomic accumulate"

    BLOCK = 64

    def module_source(self) -> str:
        return _TFR_PTX.replace("@BLOCK@", str(self.BLOCK)).replace(
            "@HALF@", str(self.BLOCK // 2)
        )

    def execute(self, device, scale: float = 1.0, check: bool = True):
        ctas = max(4, int(8 * scale))
        n = ctas * self.BLOCK - 17  # ragged tail exercises the guard
        data = (
            self.rng().uniform(-1.0, 1.0, n).astype(np.float32)
        )
        src = device.upload(data)
        total = device.malloc(4)
        device.memset(total, 0)
        result = device.launch(
            "threadFenceReduce",
            grid=(ctas, 1, 1),
            block=(self.BLOCK, 1, 1),
            args=[src, total, n],
        )
        correct = None
        if check:
            got = total.read(np.int32, 1)[0] / 65536.0
            # Fixed-point rounding of each CTA partial bounds the error.
            expected = 0.0
            padded = np.zeros(ctas * self.BLOCK, dtype=np.float32)
            padded[:n] = data
            for chunk in padded.reshape(ctas, self.BLOCK):
                stride = self.BLOCK // 2
                values = chunk.copy()
                while stride > 0:
                    values[:stride] += values[stride : 2 * stride]
                    stride //= 2
                expected += np.rint(values[0] * 65536.0) / 65536.0
            correct = abs(got - expected) < 1e-3
        return self._finish([result], correct, check)
