"""Microbenchmarks.

``throughput`` is the Table 1 microbenchmark: "back-to-back floating
point multiply and adds within a heavily unrolled loop launched over
576 threads" (§6). Ten independent FMA chains keep the FPU saturated
while staying inside the 16-entry vector register file at the machine
width — and overflowing it at twice the machine width, which is the
paper's explanation for the warp-size-8 cliff.

``Clock`` mirrors the SDK's trivial cycle-counter sample.
"""

from __future__ import annotations

import numpy as np

from ..ptx.types import DataType
from .base import Category, Workload, WorkloadRun
from .registry import register

_CHAINS = 10
_UNROLL = 16
#: FMA chain constants (arbitrary, fixed).
_MULTIPLIER = 0.9995
_ADDENDS = [0.001 + 0.0001 * k for k in range(_CHAINS)]


def _throughput_ptx() -> str:
    lines = [
        ".version 2.3",
        ".target sim",
        "",
        ".entry throughput (.param .u64 out, .param .u32 iters)",
        "{",
        "  .reg .u32 %r<8>;",
        "  .reg .u64 %rd<4>;",
        f"  .reg .f32 %acc<{_CHAINS}>;",
        "  .reg .f32 %f<4>;",
        "  .reg .pred %p<2>;",
        "",
        "  mov.u32 %r1, %tid.x;",
        "  mov.u32 %r2, %ntid.x;",
        "  mov.u32 %r3, %ctaid.x;",
        "  mad.lo.u32 %r4, %r3, %r2, %r1;",
        "  cvt.rn.f32.u32 %f1, %r4;",
    ]
    for k in range(_CHAINS):
        lines.append(
            f"  add.f32 %acc{k}, %f1, {float(k)};"
        )
    lines += [
        "  mov.u32 %r5, 0;",
        "  ld.param.u32 %r6, [iters];",
        "LOOP:",
    ]
    for _ in range(_UNROLL):
        for k in range(_CHAINS):
            lines.append(
                f"  fma.rn.f32 %acc{k}, %acc{k}, {_MULTIPLIER}, "
                f"{_ADDENDS[k]};"
            )
    lines += [
        "  add.u32 %r5, %r5, 1;",
        "  setp.lt.u32 %p1, %r5, %r6;",
        "  @%p1 bra LOOP;",
        "  mov.f32 %f2, 0.0;",
    ]
    for k in range(_CHAINS):
        lines.append(f"  add.f32 %f2, %f2, %acc{k};")
    lines += [
        "  mul.wide.u32 %rd1, %r4, 4;",
        "  ld.param.u64 %rd2, [out];",
        "  add.u64 %rd3, %rd2, %rd1;",
        "  st.global.f32 [%rd3], %f2;",
        "  exit;",
        "}",
    ]
    return "\n".join(lines)


@register
class Throughput(Workload):
    """Peak-FLOP microbenchmark (Table 1)."""

    name = "throughput"
    category = Category.MICRO
    description = (
        "heavily unrolled independent FMA chains over 576 threads"
    )

    #: Matches the paper's 576 threads on the 4-core machine (the
    #: grid scales with the core count so wider machines stay fed).
    CTAS_PER_CORE = 2
    BLOCK = 72
    ITERATIONS = 12

    def module_source(self) -> str:
        return _throughput_ptx()

    def reference(self, iterations: int, threads: int) -> np.ndarray:
        gid = np.arange(threads, dtype=np.float32)
        accumulators = [
            (gid + np.float32(k)).astype(np.float32)
            for k in range(_CHAINS)
        ]
        multiplier = np.float32(_MULTIPLIER)
        addends = [np.float32(a) for a in _ADDENDS]
        for _ in range(iterations * _UNROLL):
            for k in range(_CHAINS):
                accumulators[k] = (
                    accumulators[k] * multiplier + addends[k]
                ).astype(np.float32)
        total = np.zeros(threads, dtype=np.float32)
        for k in range(_CHAINS):
            total = (total + accumulators[k]).astype(np.float32)
        return total

    def execute(self, device, scale: float = 1.0, check: bool = True):
        iterations = max(1, int(self.ITERATIONS * scale))
        grid = self.CTAS_PER_CORE * device.machine.cores
        # The paper's 72-thread CTAs divide evenly into warps up to
        # width 8; on wider machines use a block that keeps every warp
        # full (a ragged remainder warp would yield at each branch).
        block = self.BLOCK
        max_ws = device.config.max_warp_size
        if block % max_ws:
            block = (block // max_ws) * max_ws or max_ws
        threads = grid * block
        out = device.malloc(threads * 4)
        result = device.launch(
            "throughput",
            grid=(grid, 1, 1),
            block=(block, 1, 1),
            args=[out, iterations],
        )
        correct = None
        if check:
            measured = out.read(np.float32, threads)
            correct = np.allclose(
                measured, self.reference(iterations, threads),
                rtol=1e-4,
            )
        return self._finish([result], correct, check)


@register
class Clock(Workload):
    """SDK ``clock`` sample: record the cycle counter per CTA."""

    name = "Clock"
    category = Category.MICRO
    description = "read the cycle counter at CTA start and end"

    def module_source(self) -> str:
        return r"""
.version 2.3
.target sim
.entry clockKernel (.param .u64 timers, .param .u64 data, .param .u32 n)
{
  .reg .u32 %r<10>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mov.u32 %r3, %clock;
  mov.u32 %r4, %ntid.x;
  mad.lo.u32 %r5, %r2, %r4, %r1;
  ld.param.u32 %r6, [n];
  setp.ge.u32 %p1, %r5, %r6;
  @%p1 bra SKIP;
  mul.wide.u32 %rd1, %r5, 4;
  ld.param.u64 %rd2, [data];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  mul.f32 %f1, %f1, 2.0;
  st.global.f32 [%rd3], %f1;
SKIP:
  mov.u32 %r7, %clock;
  sub.u32 %r8, %r7, %r3;
  setp.ne.u32 %p2, %r1, 0;
  @%p2 bra DONE;
  mul.wide.u32 %rd4, %r2, 4;
  ld.param.u64 %rd5, [timers];
  add.u64 %rd6, %rd5, %rd4;
  st.global.u32 [%rd6], %r8;
DONE:
  exit;
}
"""

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(32, int(128 * scale))
        block = 32
        grid = -(-n // block)
        data = self.rng().standard_normal(n).astype(np.float32)
        data_buffer = device.upload(data)
        timers = device.malloc(grid * 4)
        result = device.launch(
            "clockKernel",
            grid=(grid, 1, 1),
            block=(block, 1, 1),
            args=[timers, data_buffer, n],
        )
        correct = None
        if check:
            doubled = data_buffer.read(np.float32, n)
            elapsed = timers.read(np.uint32, grid)
            correct = np.allclose(doubled, data * 2) and bool(
                (elapsed >= 0).all()
            )
        return self._finish([result], correct, check)
