"""Random / quasirandom number workloads: SobolQRNG,
QuasirandomGenerator, MersenneTwister.

``MersenneTwister`` models the paper's observation that generators with
uncorrelated, data-dependent control flow *lose* performance under
dynamic warp formation (Fig. 6 shows a slowdown; Fig. 10 shows static
formation recovering it): its rejection-sampling loop diverges at
nearly every branch.
"""

from __future__ import annotations

import numpy as np

from .base import Category, Workload, grid_for
from .registry import register

_SOBOL_PTX = r"""
.version 2.3
.target sim
.entry sobolQRNG (.param .u64 directions, .param .u64 out,
                  .param .u32 n)
{
  .reg .u32 %r<16>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  // gray code of the point index
  shr.u32 %r6, %r4, 1;
  xor.b32 %r7, %r4, %r6;
  mov.u32 %r8, 0;          // accumulator
  mov.u32 %r9, 0;          // bit index
BITLOOP:
  and.b32 %r10, %r7, 1;
  mul.wide.u32 %rd1, %r9, 4;
  ld.param.u64 %rd2, [directions];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r11, [%rd3];
  // conditional data flow (selp) keeps the loop convergent
  setp.ne.u32 %p2, %r10, 0;
  selp.u32 %r12, %r11, 0, %p2;
  xor.b32 %r8, %r8, %r12;
  shr.u32 %r7, %r7, 1;
  add.u32 %r9, %r9, 1;
  setp.lt.u32 %p3, %r9, 20;
  @%p3 bra BITLOOP;
  cvt.rn.f32.u32 %f1, %r8;
  mul.f32 %f2, %f1, 0.00000000023283064;
  mul.wide.u32 %rd4, %r4, 4;
  ld.param.u64 %rd5, [out];
  add.u64 %rd6, %rd5, %rd4;
  st.global.f32 [%rd6], %f2;
DONE:
  exit;
}
"""


@register
class SobolQRNG(Workload):
    """SDK ``SobolQRNG``: Sobol sequence via gray-code XOR of
    direction vectors — short data-dependent loop, memory-light."""

    name = "SobolQRNG"
    category = Category.MEMORY_BOUND
    description = "Sobol quasirandom points from direction vectors"

    def module_source(self) -> str:
        return _SOBOL_PTX

    def directions(self) -> np.ndarray:
        # Standard first-dimension Sobol direction numbers: v_j = 2^(31-j)
        return (np.uint32(1) << (31 - np.arange(32, dtype=np.uint32)))

    def reference(self, n: int) -> np.ndarray:
        directions = self.directions()
        indices = np.arange(n, dtype=np.uint32)
        gray = indices ^ (indices >> np.uint32(1))
        acc = np.zeros(n, dtype=np.uint32)
        for bit in range(20):
            mask = ((gray >> np.uint32(bit)) & np.uint32(1)).astype(bool)
            acc[mask] ^= directions[bit]
        return acc.astype(np.float32) * np.float32(0.00000000023283064)

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(128, int(512 * scale))
        directions = device.upload(self.directions())
        out = device.malloc(n * 4)
        block = 64
        result = device.launch(
            "sobolQRNG",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[directions, out, n],
        )
        correct = None
        if check:
            got = out.read(np.float32, n)
            correct = np.allclose(got, self.reference(n), rtol=1e-5)
        return self._finish([result], correct, check)


_QRNG_PTX = r"""
.version 2.3
.target sim
.entry quasirandom (.param .u64 table, .param .u64 out, .param .u32 n)
{
  .reg .u32 %r<16>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mov.u32 %r6, %r4;
  mov.u32 %r7, 0;          // accumulator
  mov.u32 %r8, 0;          // bit index (fixed 20-iteration loop)
BITLOOP:
  and.b32 %r9, %r6, 1;
  mul.wide.u32 %rd1, %r8, 4;
  ld.param.u64 %rd2, [table];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r10, [%rd3];
  // selp keeps control flow uniform (conditional data flow)
  setp.ne.u32 %p2, %r9, 0;
  selp.u32 %r11, %r10, 0, %p2;
  xor.b32 %r7, %r7, %r11;
  shr.u32 %r6, %r6, 1;
  add.u32 %r8, %r8, 1;
  setp.lt.u32 %p3, %r8, 20;
  @%p3 bra BITLOOP;
  cvt.rn.f32.u32 %f1, %r7;
  mul.f32 %f2, %f1, 0.00000000023283064;
  mul.wide.u32 %rd4, %r4, 4;
  ld.param.u64 %rd5, [out];
  add.u64 %rd6, %rd5, %rd4;
  st.global.f32 [%rd6], %f2;
DONE:
  exit;
}
"""


@register
class QuasirandomGenerator(Workload):
    """SDK ``quasirandomGenerator``: Niederreiter-style table XOR with
    a fixed-trip loop and selp — fully uniform control flow."""

    name = "QuasirandomGenerator"
    category = Category.COMPUTE_UNIFORM
    description = "table-driven quasirandom generator, selp-based"

    BITS = 20

    def table(self) -> np.ndarray:
        rng = np.random.default_rng(7)
        return rng.integers(0, 1 << 32, self.BITS, dtype=np.uint32)

    def module_source(self) -> str:
        return _QRNG_PTX

    def reference(self, n: int) -> np.ndarray:
        table = self.table()
        indices = np.arange(n, dtype=np.uint32)
        acc = np.zeros(n, dtype=np.uint32)
        for bit in range(self.BITS):
            mask = ((indices >> np.uint32(bit)) & np.uint32(1)).astype(
                bool
            )
            acc[mask] ^= table[bit]
        return acc.astype(np.float32) * np.float32(0.00000000023283064)

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(128, int(512 * scale))
        table = device.upload(self.table())
        out = device.malloc(n * 4)
        block = 64
        result = device.launch(
            "quasirandom",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[table, out, n],
        )
        correct = None
        if check:
            got = out.read(np.float32, n)
            correct = np.allclose(got, self.reference(n), rtol=1e-5)
        return self._finish([result], correct, check)


_MT_PTX = r"""
.version 2.3
.target sim
.entry mersenneTwister (.param .u64 out, .param .u64 counts,
                        .param .u32 n)
{
  .reg .u32 %r<16>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<6>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  // per-thread twisted seed
  mul.lo.u32 %r6, %r4, 1812433253;
  add.u32 %r6, %r6, 1;
  mov.u32 %r7, 0;          // rejection count
REJECT:
  // xorshift step (MT-flavoured tempering)
  shl.b32 %r8, %r6, 13;
  xor.b32 %r6, %r6, %r8;
  shr.u32 %r8, %r6, 17;
  xor.b32 %r6, %r6, %r8;
  shl.b32 %r8, %r6, 5;
  xor.b32 %r6, %r6, %r8;
  add.u32 %r7, %r7, 1;
  // accept only samples whose low bits clear a data-dependent test:
  // uncorrelated across threads -> divergence at nearly every branch
  and.b32 %r9, %r6, 3;
  setp.ne.u32 %p2, %r9, 0;
  @%p2 bra REJECT;
  cvt.rn.f32.u32 %f1, %r6;
  mul.f32 %f2, %f1, 0.00000000023283064;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.f32 [%rd3], %f2;
  ld.param.u64 %rd4, [counts];
  add.u64 %rd5, %rd4, %rd1;
  st.global.u32 [%rd5], %r7;
DONE:
  exit;
}
"""


@register
class MersenneTwister(Workload):
    """SDK ``MersenneTwister`` stand-in: per-thread tempered xorshift
    with rejection sampling. The accept/reject loop is uncorrelated
    across threads — the irregular-control-flow case for which the
    paper measures a slowdown under dynamic warp formation."""

    name = "MersenneTwister"
    category = Category.DIVERGENT
    description = "rejection-sampling RNG with uncorrelated divergence"

    def module_source(self) -> str:
        return _MT_PTX

    def reference(self, n: int):
        state = (
            np.arange(n, dtype=np.uint32) * np.uint32(1812433253)
            + np.uint32(1)
        )
        counts = np.zeros(n, dtype=np.uint32)
        pending = np.ones(n, dtype=bool)
        values = np.zeros(n, dtype=np.uint32)
        while pending.any():
            s = state[pending]
            s = s ^ (s << np.uint32(13))
            s = s ^ (s >> np.uint32(17))
            s = s ^ (s << np.uint32(5))
            state[pending] = s
            counts[pending] += 1
            accepted = (s & np.uint32(3)) == 0
            indices = np.flatnonzero(pending)[accepted]
            values[indices] = s[accepted]
            pending[indices] = False
        floats = values.astype(np.float32) * np.float32(
            0.00000000023283064
        )
        return floats, counts

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(128, int(256 * scale))
        out = device.malloc(n * 4)
        counts = device.malloc(n * 4)
        block = 64
        result = device.launch(
            "mersenneTwister",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[out, counts, n],
        )
        correct = None
        if check:
            expected_values, expected_counts = self.reference(n)
            correct = np.allclose(
                out.read(np.float32, n), expected_values, rtol=1e-5
            ) and np.array_equal(
                counts.read(np.uint32, n), expected_counts
            )
        return self._finish([result], correct, check)
