"""Intrinsic-exercising samples: SimpleAtomicIntrinsics and
SimpleVoteIntrinsics.

``SimpleVoteIntrinsics`` launches with two-thread CTAs, so the
execution manager can never assemble more than two threads per warp —
reproducing Fig. 7's observation that it "is only ever able to form
warps of 2 threads at most".
"""

from __future__ import annotations

import numpy as np

from .base import Category, Workload, grid_for
from .registry import register

_ATOMIC_PTX = r"""
.version 2.3
.target sim
.entry simpleAtomics (.param .u64 counters, .param .u32 n)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  ld.param.u64 %rd1, [counters];
  // counters[0] += 1
  atom.global.add.u32 %r6, [%rd1], 1;
  // counters[1] = max(counters[1], gid)
  atom.global.max.u32 %r7, [%rd1+4], %r4;
  // counters[2] = min(counters[2], gid)
  atom.global.min.u32 %r8, [%rd1+8], %r4;
  // counters[3] &= mask-of-low-bits
  and.b32 %r9, %r4, 255;
  atom.global.and.b32 %r10, [%rd1+12], %r9;
  // counters[4] |= bits
  atom.global.or.b32 %r11, [%rd1+16], %r9;
DONE:
  exit;
}
"""


@register
class SimpleAtomicIntrinsics(Workload):
    """SDK ``simpleAtomicIntrinsics``: every atomic operator against a
    small set of global counters."""

    name = "SimpleAtomicIntrinsics"
    category = Category.ATOMIC
    description = "add/max/min/and/or atomics on global counters"

    def module_source(self) -> str:
        return _ATOMIC_PTX

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(64, int(128 * scale))
        counters = device.malloc(5 * 4)
        initial = np.array(
            [0, 0, 0xFFFFFFFF, 0xFFFFFFFF, 0], dtype=np.uint32
        )
        counters.write(initial)
        block = 32
        result = device.launch(
            "simpleAtomics",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[counters, n],
        )
        correct = None
        if check:
            got = counters.read(np.uint32, 5)
            gids = np.arange(n, dtype=np.uint32)
            masks = gids & np.uint32(255)
            expected_and = np.uint32(0xFFFFFFFF)
            expected_or = np.uint32(0)
            for mask in masks:
                expected_and &= mask
                expected_or |= mask
            expected = np.array(
                [n, n - 1, 0, expected_and, expected_or],
                dtype=np.uint32,
            )
            correct = np.array_equal(got, expected)
        return self._finish([result], correct, check)


_VOTE_PTX = r"""
.version 2.3
.target sim
.entry simpleVote (.param .u64 values, .param .u64 results,
                   .param .u32 threshold, .param .u32 n)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<8>;
  .reg .pred %p<6>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [values];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r6, [%rd3];
  ld.param.u32 %r7, [threshold];
  // uniform predicate: every thread compares the same CTA-wide value
  setp.ge.u32 %p2, %r6, %r7;
  vote.all.pred %p3, %p2;
  vote.any.pred %p4, %p2;
  selp.u32 %r8, 1, 0, %p3;
  selp.u32 %r9, 2, 0, %p4;
  or.b32 %r10, %r8, %r9;
  ld.param.u64 %rd4, [results];
  add.u64 %rd5, %rd4, %rd1;
  st.global.u32 [%rd5], %r10;
DONE:
  exit;
}
"""


@register
class SimpleVoteIntrinsics(Workload):
    """SDK ``simpleVoteIntrinsics``: warp-wide vote.all/vote.any over
    a (deterministically uniform) predicate. Two-thread CTAs on a
    single CTA grid cap warp formation at 2."""

    name = "SimpleVoteIntrinsics"
    category = Category.MICRO
    description = "vote.all / vote.any over two-thread CTAs"

    def module_source(self) -> str:
        return _VOTE_PTX

    def execute(self, device, scale: float = 1.0, check: bool = True):
        ctas = max(2, int(4 * scale))
        block = 2
        n = ctas * block
        threshold = 100
        # All threads of a CTA load the same value, so the vote result
        # is independent of how warps are formed.
        per_cta = self.rng().integers(0, 200, ctas).astype(np.uint32)
        values = np.repeat(per_cta, block).astype(np.uint32)
        value_buffer = device.upload(values)
        results = device.malloc(n * 4)
        result = device.launch(
            "simpleVote",
            grid=(ctas, 1, 1),
            block=(block, 1, 1),
            args=[value_buffer, results, threshold, n],
        )
        correct = None
        if check:
            got = results.read(np.uint32, n)
            passed = values >= threshold
            expected = np.where(passed, 3, 0).astype(np.uint32)
            correct = np.array_equal(got, expected)
        return self._finish([result], correct, check)
