"""Workload registry.

Workload classes self-register via the :func:`register` decorator; the
benchmark harness iterates :func:`all_workloads` to reproduce the
paper's figures over the full suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from .base import Workload

_REGISTRY: Dict[str, Workload] = {}


def register(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator adding one instance of ``cls`` to the registry."""
    instance = cls()
    if not instance.name:
        raise ValueError(f"workload class {cls.__name__} has no name")
    if instance.name in _REGISTRY:
        raise ValueError(f"duplicate workload {instance.name!r}")
    _REGISTRY[instance.name] = instance
    return cls


def get_workload(name: str) -> Workload:
    _ensure_loaded()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; have {sorted(_REGISTRY)}"
        ) from None


def all_workloads(category: Optional[str] = None) -> List[Workload]:
    _ensure_loaded()
    workloads = sorted(_REGISTRY.values(), key=lambda w: w.name)
    if category is not None:
        workloads = [w for w in workloads if w.category == category]
    return workloads


def workload_names() -> List[str]:
    _ensure_loaded()
    return sorted(_REGISTRY)


_LOADED = False

#: Submodules containing @register-ed workloads.
_WORKLOAD_MODULES = (
    "microbench",
    "simple",
    "finance",
    "linear_algebra",
    "reductions",
    "signal",
    "random_numbers",
    "imaging",
    "physics",
    "parboil",
    "intrinsics",
    "extra_sdk",
    "branchy",
)


def _ensure_loaded() -> None:
    global _LOADED
    if _LOADED:
        return
    import importlib

    for module_name in _WORKLOAD_MODULES:
        importlib.import_module(f"{__package__}.{module_name}")
    _LOADED = True
