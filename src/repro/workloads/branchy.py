"""Divergence-heavy workloads built around data-dependent diamonds.

The paper's suite is light on *structured* divergence: its divergent
applications mostly carry data-dependent loop trip counts, where the
only cure is warp re-formation. This family exercises the other shape
— if/else diamonds whose arms do similar work — which is exactly what
control-flow melding (:mod:`repro.transforms.melding`) targets, so
these workloads anchor the ``--meld`` ablation axis of the benchmark
suite alongside the yield-on-diverge baseline.
"""

from __future__ import annotations

import numpy as np

from .base import Category, Workload, grid_for
from .registry import register


@register
class Collatz(Workload):
    """Collatz step counts: a data-dependent loop wrapping an
    odd/even diamond with unbalanced pure arms."""

    name = "Collatz"
    category = Category.DIVERGENT
    description = "3n+1 step counts (loop around an odd/even diamond)"

    def module_source(self) -> str:
        return r"""
.version 2.3
.target sim
.entry collatzSteps (.param .u64 src, .param .u64 dst, .param .u32 n)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<8>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [src];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r6, [%rd3];
  mov.u32 %r7, 0;
LOOP:
  setp.le.u32 %p2, %r6, 1;
  @%p2 bra EXITLOOP;
  and.b32 %r8, %r6, 1;
  setp.eq.u32 %p3, %r8, 0;
  @%p3 bra EVEN;
  mul.lo.u32 %r6, %r6, 3;
  add.u32 %r6, %r6, 1;
  bra NEXT;
EVEN:
  shr.u32 %r6, %r6, 1;
NEXT:
  add.u32 %r7, %r7, 1;
  bra LOOP;
EXITLOOP:
  ld.param.u64 %rd4, [dst];
  add.u64 %rd5, %rd4, %rd1;
  st.global.u32 [%rd5], %r7;
DONE:
  exit;
}
"""

    @staticmethod
    def reference(values: np.ndarray) -> np.ndarray:
        steps = np.zeros_like(values)
        for index, value in enumerate(values):
            value = int(value)
            count = 0
            while value > 1:
                value = 3 * value + 1 if value % 2 else value // 2
                count += 1
            steps[index] = count
        return steps

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(64, int(256 * scale))
        block = 64
        data = self.rng().integers(1, 500, size=n, dtype=np.uint32)
        source = device.upload(data)
        destination = device.malloc(n * 4)
        result = device.launch(
            "collatzSteps",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[source, destination, n],
        )
        correct = None
        if check:
            correct = np.array_equal(
                destination.read(np.uint32, n), self.reference(data)
            )
        return self._finish([result], correct, check)


@register
class AbsDiff(Workload):
    """Branchy |a - b|: both arms subtract (swapped operands) and
    store to the same address — the melding pass aligns the stores and
    selects between the two differences."""

    name = "AbsDiff"
    category = Category.DIVERGENT
    description = "elementwise |a-b| via a diamond with stores in arms"

    def module_source(self) -> str:
        return r"""
.version 2.3
.target sim
.entry absDiff (.param .u64 a, .param .u64 b, .param .u64 out,
                .param .u32 n)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<12>;
  .reg .f32 %f<8>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [a];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  ld.param.u64 %rd4, [b];
  add.u64 %rd5, %rd4, %rd1;
  ld.global.f32 %f2, [%rd5];
  ld.param.u64 %rd6, [out];
  add.u64 %rd7, %rd6, %rd1;
  setp.gt.f32 %p2, %f1, %f2;
  @%p2 bra BIG;
  sub.f32 %f3, %f2, %f1;
  st.global.f32 [%rd7], %f3;
  bra JOIN;
BIG:
  sub.f32 %f4, %f1, %f2;
  st.global.f32 [%rd7], %f4;
JOIN:
DONE:
  exit;
}
"""

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(64, int(1024 * scale))
        block = 64
        rng = self.rng()
        a = rng.standard_normal(n).astype(np.float32)
        b = rng.standard_normal(n).astype(np.float32)
        source_a = device.upload(a)
        source_b = device.upload(b)
        destination = device.malloc(n * 4)
        result = device.launch(
            "absDiff",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[source_a, source_b, destination, n],
        )
        correct = None
        if check:
            correct = np.array_equal(
                destination.read(np.float32, n), np.abs(a - b)
            )
        return self._finish([result], correct, check)


@register
class OptionPayoff(Workload):
    """Interleaved call/put payoffs: odd threads price puts (with an
    extra scaling op — unbalanced arms), even threads price calls."""

    name = "OptionPayoff"
    category = Category.DIVERGENT
    description = "call/put payoff diamond with unbalanced arms"

    STRIKE = 1.0

    def module_source(self) -> str:
        return r"""
.version 2.3
.target sim
.entry payoff (.param .u64 in, .param .u64 out, .param .u32 n)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<10>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  ld.param.u64 %rd4, [out];
  add.u64 %rd5, %rd4, %rd1;
  and.b32 %r6, %r4, 1;
  setp.eq.u32 %p2, %r6, 0;
  @%p2 bra CALL;
  sub.f32 %f2, 1.0, %f1;
  max.f32 %f3, %f2, 0.0;
  mul.f32 %f4, %f3, 2.0;
  st.global.f32 [%rd5], %f4;
  bra JOIN;
CALL:
  sub.f32 %f5, %f1, 1.0;
  max.f32 %f6, %f5, 0.0;
  st.global.f32 [%rd5], %f6;
JOIN:
DONE:
  exit;
}
"""

    def reference(self, prices: np.ndarray) -> np.ndarray:
        indices = np.arange(prices.size)
        call = np.maximum(prices - np.float32(1.0), np.float32(0.0))
        put = np.maximum(np.float32(1.0) - prices, np.float32(0.0))
        put = (put * np.float32(2.0)).astype(np.float32)
        return np.where(indices % 2 == 0, call, put).astype(np.float32)

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(64, int(1024 * scale))
        block = 64
        prices = (
            self.rng().uniform(0.25, 2.0, size=n).astype(np.float32)
        )
        source = device.upload(prices)
        destination = device.malloc(n * 4)
        result = device.launch(
            "payoff",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[source, destination, n],
        )
        correct = None
        if check:
            correct = np.array_equal(
                destination.read(np.float32, n), self.reference(prices)
            )
        return self._finish([result], correct, check)


@register
class GradClamp(Workload):
    """One clipped gradient-descent step: over-the-bound threads take
    a damped arm, the rest a plain-update arm — both arms are fma
    chains the melding pass can pair."""

    name = "GradClamp"
    category = Category.DIVERGENT
    description = "clamped gradient step via an fma diamond"

    def module_source(self) -> str:
        return r"""
.version 2.3
.target sim
.entry gradClamp (.param .u64 x, .param .u64 g, .param .u64 out,
                  .param .u32 n)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<12>;
  .reg .f32 %f<10>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [x];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  ld.param.u64 %rd4, [g];
  add.u64 %rd5, %rd4, %rd1;
  ld.global.f32 %f2, [%rd5];
  fma.rn.f32 %f3, %f2, -0.5, %f1;
  ld.param.u64 %rd6, [out];
  add.u64 %rd7, %rd6, %rd1;
  setp.gt.f32 %p2, %f3, 1.0;
  @%p2 bra OVER;
  fma.rn.f32 %f4, %f3, 0.9, 0.05;
  st.global.f32 [%rd7], %f4;
  bra JOIN;
OVER:
  sub.f32 %f5, %f3, 1.0;
  fma.rn.f32 %f6, %f5, 0.1, 1.0;
  st.global.f32 [%rd7], %f6;
JOIN:
DONE:
  exit;
}
"""

    def reference(
        self, x: np.ndarray, g: np.ndarray
    ) -> np.ndarray:
        stepped = x + g * np.float32(-0.5)
        under = stepped * np.float32(0.9) + np.float32(0.05)
        over = (stepped - np.float32(1.0)) * np.float32(0.1) + np.float32(
            1.0
        )
        return np.where(stepped > 1.0, over, under).astype(np.float32)

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(64, int(1024 * scale))
        block = 64
        rng = self.rng()
        x = rng.uniform(0.0, 2.0, size=n).astype(np.float32)
        g = rng.standard_normal(n).astype(np.float32)
        source_x = device.upload(x)
        source_g = device.upload(g)
        destination = device.malloc(n * 4)
        result = device.launch(
            "gradClamp",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[source_x, source_g, destination, n],
        )
        correct = None
        if check:
            correct = np.allclose(
                destination.read(np.float32, n),
                self.reference(x, g),
                rtol=1e-6,
            )
        return self._finish([result], correct, check)


@register
class SharedToggle(Workload):
    """Odd/even threads publish differently-transformed values into
    shared memory inside a divergent diamond, synchronize, and read
    their neighbour's slot — shared-memory stores inside melded arms."""

    name = "SharedToggle"
    category = Category.DIVERGENT
    description = "diamond with shared stores, barrier, neighbour read"

    def module_source(self) -> str:
        return r"""
.version 2.3
.target sim
.entry sharedToggle (.param .u64 in, .param .u64 out, .param .u32 n)
{
  .reg .u32 %r<16>;
  .reg .u64 %rd<10>;
  .reg .pred %p<4>;
  .shared .u32 slots[64];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r6, [%rd3];
  shl.b32 %r7, %r1, 2;
  mov.u32 %r8, slots;
  add.u32 %r9, %r8, %r7;
  and.b32 %r10, %r1, 1;
  setp.eq.u32 %p2, %r10, 0;
  @%p2 bra EVEN;
  mul.lo.u32 %r11, %r6, 3;
  st.shared.u32 [%r9], %r11;
  bra JOIN;
EVEN:
  add.u32 %r12, %r6, 7;
  st.shared.u32 [%r9], %r12;
JOIN:
  bar.sync 0;
  xor.b32 %r13, %r1, 1;
  shl.b32 %r14, %r13, 2;
  add.u32 %r15, %r8, %r14;
  ld.shared.u32 %r5, [%r15];
  ld.param.u64 %rd4, [out];
  add.u64 %rd5, %rd4, %rd1;
  st.global.u32 [%rd5], %r5;
  exit;
}
"""

    def reference(self, values: np.ndarray) -> np.ndarray:
        lanes = np.arange(values.size)
        published = np.where(
            lanes % 2 == 0, values + 7, values * 3
        ).astype(np.uint32)
        return published[lanes ^ 1]

    def execute(self, device, scale: float = 1.0, check: bool = True):
        block = 64
        ctas = max(1, int(4 * scale))
        n = block * ctas
        data = self.rng().integers(
            0, 10_000, size=n, dtype=np.uint32
        )
        source = device.upload(data)
        destination = device.malloc(n * 4)
        result = device.launch(
            "sharedToggle",
            grid=(ctas, 1, 1),
            block=(block, 1, 1),
            args=[source, destination, n],
        )
        correct = None
        if check:
            correct = np.array_equal(
                destination.read(np.uint32, n), self.reference(data)
            )
        return self._finish([result], correct, check)


@register
class Bisect(Workload):
    """Square roots by fixed-iteration bisection: every iteration
    branches on the residual's sign to move one interval endpoint — a
    one-instruction diamond executed 24 times per thread."""

    name = "Bisect"
    category = Category.DIVERGENT
    description = "sqrt via bisection (per-iteration lo/hi diamond)"

    ITERATIONS = 24

    def module_source(self) -> str:
        return r"""
.version 2.3
.target sim
.entry bisectSqrt (.param .u64 in, .param .u64 out, .param .u32 n)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<10>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  mov.f32 %f2, 0.0;
  mov.f32 %f3, 2.0;
  mov.u32 %r6, 0;
LOOP:
  add.f32 %f4, %f2, %f3;
  mul.f32 %f5, %f4, 0.5;
  mul.f32 %f6, %f5, %f5;
  sub.f32 %f7, %f6, %f1;
  setp.gt.f32 %p2, %f7, 0.0;
  @%p2 bra HIGH;
  mov.f32 %f2, %f5;
  bra NEXT;
HIGH:
  mov.f32 %f3, %f5;
NEXT:
  add.u32 %r6, %r6, 1;
  setp.lt.u32 %p3, %r6, 24;
  @%p3 bra LOOP;
  ld.param.u64 %rd4, [out];
  add.u64 %rd5, %rd4, %rd1;
  st.global.f32 [%rd5], %f2;
DONE:
  exit;
}
"""

    def reference(self, values: np.ndarray) -> np.ndarray:
        lo = np.zeros_like(values)
        hi = np.full_like(values, np.float32(2.0))
        for _ in range(self.ITERATIONS):
            mid = ((lo + hi) * np.float32(0.5)).astype(np.float32)
            residual = (mid * mid - values).astype(np.float32)
            high = residual > 0.0
            hi = np.where(high, mid, hi).astype(np.float32)
            lo = np.where(high, lo, mid).astype(np.float32)
        return lo

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(64, int(512 * scale))
        block = 64
        values = (
            self.rng().uniform(0.0, 4.0, size=n).astype(np.float32)
        )
        source = device.upload(values)
        destination = device.malloc(n * 4)
        result = device.launch(
            "bisectSqrt",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[source, destination, n],
        )
        correct = None
        if check:
            correct = np.array_equal(
                destination.read(np.float32, n), self.reference(values)
            )
        return self._finish([result], correct, check)
