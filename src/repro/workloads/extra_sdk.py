"""Additional CUDA SDK applications: AsyncAPI, Histogram256,
TransposeNew, RecursiveGaussian, BicubicTexture, ScanLargeArray.

ScanLargeArray is the suite's multi-launch workload: a block-level
scan, a scan of the block sums, and an offset-add kernel — three
dependent launches through the same translation cache, like the SDK
sample's kernel pipeline.
"""

from __future__ import annotations

import numpy as np

from .base import Category, Workload, grid_for
from .registry import register

_ASYNC_PTX = r"""
.version 2.3
.target sim
.entry incrementKernel (.param .u64 data, .param .u32 value,
                        .param .u32 n)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<4>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [data];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r6, [%rd3];
  ld.param.u32 %r7, [value];
  add.u32 %r6, %r6, %r7;
  st.global.u32 [%rd3], %r6;
DONE:
  exit;
}
"""


@register
class AsyncAPI(Workload):
    """SDK ``asyncAPI``: the increment kernel (the async machinery is
    host-side; the device work is this memory-bound sweep)."""

    name = "AsyncAPI"
    category = Category.MEMORY_BOUND
    description = "in-place integer increment sweep"

    def module_source(self) -> str:
        return _ASYNC_PTX

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(128, int(512 * scale))
        data = self.rng().integers(0, 1 << 20, n).astype(np.uint32)
        buffer = device.upload(data)
        block = 64
        result = device.launch(
            "incrementKernel",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[buffer, 26, n],
        )
        correct = None
        if check:
            correct = np.array_equal(
                buffer.read(np.uint32, n), data + 26
            )
        return self._finish([result], correct, check)


_HISTOGRAM256_PTX = r"""
.version 2.3
.target sim
.entry histogram256 (.param .u64 data, .param .u64 bins,
                     .param .u32 n)
{
  .reg .u32 %r<14>;
  .reg .u64 %rd<8>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [data];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.u32 %r6, [%rd3];
  and.b32 %r7, %r6, 255;
  mul.wide.u32 %rd4, %r7, 4;
  ld.param.u64 %rd5, [bins];
  add.u64 %rd6, %rd5, %rd4;
  red.global.add.u32 [%rd6], 1;
DONE:
  exit;
}
"""


@register
class Histogram256(Workload):
    """SDK ``histogram256``: straight global-atomic binning (the
    64-bin variant stages through shared memory; this one contends on
    the global array directly)."""

    name = "Histogram256"
    category = Category.ATOMIC
    description = "256-bin histogram with global atomics"

    def module_source(self) -> str:
        return _HISTOGRAM256_PTX

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(256, int(512 * scale))
        data = self.rng().integers(0, 1 << 24, n).astype(np.uint32)
        src = device.upload(data)
        bins = device.malloc(256 * 4)
        device.memset(bins, 0)
        block = 64
        result = device.launch(
            "histogram256",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[src, bins, n],
        )
        correct = None
        if check:
            expected = np.bincount(
                (data & 255).astype(np.int64), minlength=256
            ).astype(np.uint32)
            correct = np.array_equal(
                bins.read(np.uint32, 256), expected
            )
        return self._finish([result], correct, check)


_TRANSPOSE_NAIVE_PTX = r"""
.version 2.3
.target sim
.entry transposeNaive (.param .u64 in, .param .u64 out,
                       .param .u32 width, .param .u32 height)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<2>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [width];
  ld.param.u32 %r6, [height];
  mul.lo.u32 %r7, %r5, %r6;
  setp.ge.u32 %p1, %r4, %r7;
  @%p1 bra DONE;
  div.u32 %r8, %r4, %r5;
  mul.lo.u32 %r9, %r8, %r5;
  sub.u32 %r10, %r4, %r9;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  mad.lo.u32 %r11, %r10, %r6, %r8;
  mul.wide.u32 %rd4, %r11, 4;
  ld.param.u64 %rd5, [out];
  add.u64 %rd6, %rd5, %rd4;
  st.global.f32 [%rd6], %f1;
DONE:
  exit;
}
"""


@register
class TransposeNew(Workload):
    """SDK ``transposeNew``'s naive variant: no shared-memory tile, no
    barriers — contrasts with the tiled ``Transpose`` workload."""

    name = "TransposeNew"
    category = Category.MEMORY_BOUND
    description = "naive (untiled) matrix transpose"

    def module_source(self) -> str:
        return _TRANSPOSE_NAIVE_PTX

    def execute(self, device, scale: float = 1.0, check: bool = True):
        size = max(16, int(32 * scale))
        matrix = (
            self.rng()
            .standard_normal(size * size)
            .astype(np.float32)
            .reshape(size, size)
        )
        src = device.upload(matrix)
        dst = device.malloc(size * size * 4)
        block = 64
        result = device.launch(
            "transposeNaive",
            grid=(grid_for(size * size, block), 1, 1),
            block=(block, 1, 1),
            args=[src, dst, size, size],
        )
        correct = None
        if check:
            got = dst.read(np.float32, size * size)
            correct = np.array_equal(
                got.reshape(size, size), matrix.T
            )
        return self._finish([result], correct, check)


_RECURSIVE_GAUSSIAN_PTX = r"""
.version 2.3
.target sim
.entry recursiveGaussian (.param .u64 in, .param .u64 out,
                          .param .u32 width, .param .u32 rows)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<8>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [rows];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  ld.param.u32 %r6, [width];
  mul.lo.u32 %r7, %r4, %r6;         // row base index
  // forward IIR pass: y[i] = a*x[i] + (1-a)*y[i-1]
  mov.f32 %f1, 0.0;                 // y[-1]
  mov.u32 %r8, 0;
LOOP:
  add.u32 %r9, %r7, %r8;
  mul.wide.u32 %rd1, %r9, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f2, [%rd3];
  mul.f32 %f3, %f2, 0.25;
  fma.rn.f32 %f1, %f1, 0.75, %f3;
  ld.param.u64 %rd4, [out];
  add.u64 %rd5, %rd4, %rd1;
  st.global.f32 [%rd5], %f1;
  add.u32 %r8, %r8, 1;
  setp.lt.u32 %p2, %r8, %r6;
  @%p2 bra LOOP;
DONE:
  exit;
}
"""


@register
class RecursiveGaussian(Workload):
    """SDK ``recursiveGaussian``: a causal IIR smoothing pass, one row
    per thread (loop-carried dependence -> purely thread-serial work,
    uniform across threads)."""

    name = "RecursiveGaussian"
    category = Category.COMPUTE_UNIFORM
    description = "recursive (IIR) Gaussian row filter"

    WIDTH = 32

    def module_source(self) -> str:
        return _RECURSIVE_GAUSSIAN_PTX

    def reference(self, image: np.ndarray) -> np.ndarray:
        rows, width = image.shape
        out = np.zeros_like(image)
        state = np.zeros(rows, dtype=np.float32)
        for column in range(width):
            state = (
                state * np.float32(0.75)
                + image[:, column] * np.float32(0.25)
            ).astype(np.float32)
            out[:, column] = state
        return out

    def execute(self, device, scale: float = 1.0, check: bool = True):
        rows = max(64, int(128 * scale))
        image = (
            self.rng()
            .standard_normal(rows * self.WIDTH)
            .astype(np.float32)
            .reshape(rows, self.WIDTH)
        )
        src = device.upload(image)
        dst = device.malloc(rows * self.WIDTH * 4)
        block = 64
        result = device.launch(
            "recursiveGaussian",
            grid=(grid_for(rows, block), 1, 1),
            block=(block, 1, 1),
            args=[src, dst, self.WIDTH, rows],
        )
        correct = None
        if check:
            got = dst.read(np.float32, rows * self.WIDTH)
            correct = np.allclose(
                got.reshape(rows, self.WIDTH),
                self.reference(image),
                rtol=1e-4,
                atol=1e-5,
            )
        return self._finish([result], correct, check)


_BICUBIC_PTX = r"""
.version 2.3
.target sim
.entry bilinearSample (.param .u64 texture, .param .u64 out,
                       .param .u32 texsize, .param .u32 n)
{
  .reg .u32 %r<14>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<16>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  // sample coordinate: u = gid * 0.37 (fractional texel position)
  cvt.rn.f32.u32 %f1, %r4;
  mul.f32 %f2, %f1, 0.37;
  cvt.rzi.u32.f32 %r6, %f2;          // floor(u)
  cvt.rn.f32.u32 %f3, %r6;
  sub.f32 %f4, %f2, %f3;             // frac
  // clamp indices to the texture
  ld.param.u32 %r7, [texsize];
  sub.u32 %r8, %r7, 1;
  min.u32 %r9, %r6, %r8;
  add.u32 %r10, %r9, 1;
  min.u32 %r10, %r10, %r8;
  // fetch the two texels (a gather: not contiguous across lanes)
  ld.param.u64 %rd1, [texture];
  mul.wide.u32 %rd2, %r9, 4;
  add.u64 %rd3, %rd1, %rd2;
  ld.global.f32 %f5, [%rd3];
  mul.wide.u32 %rd4, %r10, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f6, [%rd5];
  // lerp
  sub.f32 %f7, %f6, %f5;
  fma.rn.f32 %f8, %f7, %f4, %f5;
  mul.wide.u32 %rd6, %r4, 4;
  ld.param.u64 %rd7, [out];
  add.u64 %rd8, %rd7, %rd6;
  st.global.f32 [%rd8], %f8;
DONE:
  exit;
}
"""


@register
class BicubicTexture(Workload):
    """SDK ``bicubicTexture`` stand-in: software bilinear texture
    sampling (gathers + interpolation arithmetic)."""

    name = "BicubicTexture"
    category = Category.MEMORY_BOUND
    description = "software bilinear texture sampling"

    TEXSIZE = 128

    def module_source(self) -> str:
        return _BICUBIC_PTX

    def reference(self, texture: np.ndarray, n: int) -> np.ndarray:
        gid = np.arange(n, dtype=np.uint32).astype(np.float32)
        u = gid * np.float32(0.37)
        i0 = np.minimum(
            np.trunc(u).astype(np.uint32), self.TEXSIZE - 1
        )
        frac = u - i0.astype(np.float32)
        i1 = np.minimum(i0 + 1, self.TEXSIZE - 1)
        a = texture[i0]
        b = texture[i1]
        return (a + (b - a) * frac).astype(np.float32)

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(128, int(256 * scale))
        texture = (
            self.rng().standard_normal(self.TEXSIZE).astype(np.float32)
        )
        tex_buffer = device.upload(texture)
        out = device.malloc(n * 4)
        block = 64
        result = device.launch(
            "bilinearSample",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[tex_buffer, out, self.TEXSIZE, n],
        )
        correct = None
        if check:
            got = out.read(np.float32, n)
            correct = np.allclose(
                got, self.reference(texture, n), rtol=1e-4, atol=1e-5
            )
        return self._finish([result], correct, check)


_SCAN_LARGE_PTX = r"""
.version 2.3
.target sim
.entry scanBlock (.param .u64 src, .param .u64 dst, .param .u64 sums)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<6>;
  .reg .pred %p<6>;
  .shared .f32 sdata[@BLOCK@];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [src];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  mov.u32 %r5, sdata;
  shl.b32 %r6, %r1, 2;
  add.u32 %r7, %r5, %r6;
  st.shared.f32 [%r7], %f1;
  bar.sync 0;
  mov.u32 %r8, 1;
SLOOP:
  setp.lt.u32 %p1, %r1, %r8;
  mov.f32 %f2, 0.0;
  @%p1 bra NOREAD;
  shl.b32 %r9, %r8, 2;
  sub.u32 %r10, %r7, %r9;
  ld.shared.f32 %f2, [%r10];
NOREAD:
  bar.sync 0;
  setp.lt.u32 %p2, %r1, %r8;
  @%p2 bra NOWRITE;
  ld.shared.f32 %f3, [%r7];
  add.f32 %f3, %f3, %f2;
  st.shared.f32 [%r7], %f3;
NOWRITE:
  bar.sync 0;
  shl.b32 %r8, %r8, 1;
  setp.lt.u32 %p3, %r8, @BLOCK@;
  @%p3 bra SLOOP;
  ld.shared.f32 %f4, [%r7];
  ld.param.u64 %rd4, [dst];
  add.u64 %rd5, %rd4, %rd1;
  st.global.f32 [%rd5], %f4;
  // last thread publishes the block total
  setp.ne.u32 %p4, %r1, @LAST@;
  @%p4 bra DONE;
  ld.param.u64 %rd6, [sums];
  mul.wide.u32 %rd7, %r3, 4;
  add.u64 %rd8, %rd6, %rd7;
  st.global.f32 [%rd8], %f4;
DONE:
  exit;
}

.entry addOffsets (.param .u64 data, .param .u64 offsets)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  setp.eq.u32 %p1, %r3, 0;
  @%p1 bra DONE;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  // exclusive offset: scanned sums of preceding blocks
  sub.u32 %r5, %r3, 1;
  mul.wide.u32 %rd1, %r5, 4;
  ld.param.u64 %rd2, [offsets];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  mul.wide.u32 %rd4, %r4, 4;
  ld.param.u64 %rd5, [data];
  add.u64 %rd6, %rd5, %rd4;
  ld.global.f32 %f2, [%rd6];
  add.f32 %f2, %f2, %f1;
  st.global.f32 [%rd6], %f2;
DONE:
  exit;
}
"""


@register
class ScanLargeArray(Workload):
    """SDK ``scanLargeArray``: three dependent launches — per-block
    inclusive scans, a scan of the block sums, then an offset add."""

    name = "ScanLargeArray"
    category = Category.BARRIER_HEAVY
    description = "multi-kernel scan: block scans + sums scan + offsets"

    BLOCK = 32

    def module_source(self) -> str:
        return _SCAN_LARGE_PTX.replace(
            "@BLOCK@", str(self.BLOCK)
        ).replace("@LAST@", str(self.BLOCK - 1))

    def execute(self, device, scale: float = 1.0, check: bool = True):
        blocks = max(4, int(8 * scale))
        if blocks > self.BLOCK:
            blocks = self.BLOCK  # sums must fit one scan block
        n = blocks * self.BLOCK
        data = self.rng().standard_normal(n).astype(np.float32)
        src = device.upload(data)
        dst = device.malloc(n * 4)
        sums = device.upload(np.zeros(self.BLOCK, dtype=np.float32))
        scanned_sums = device.malloc(self.BLOCK * 4)
        launches = [
            device.launch(
                "scanBlock",
                grid=(blocks, 1, 1),
                block=(self.BLOCK, 1, 1),
                args=[src, dst, sums],
            ),
            device.launch(
                "scanBlock",
                grid=(1, 1, 1),
                block=(self.BLOCK, 1, 1),
                args=[sums, scanned_sums, sums],
            ),
            device.launch(
                "addOffsets",
                grid=(blocks, 1, 1),
                block=(self.BLOCK, 1, 1),
                args=[dst, scanned_sums],
            ),
        ]
        correct = None
        if check:
            got = dst.read(np.float32, n)
            expected = np.cumsum(data, dtype=np.float32)
            correct = np.allclose(got, expected, rtol=1e-3, atol=1e-3)
        return self._finish(launches, correct, check)
