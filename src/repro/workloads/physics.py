"""Physics / numerical workloads: Nbody and Eigenvalues.

Nbody is the canonical compute-bound uniform kernel (high speedup,
nearly all cycles in the subkernel — Fig. 9). Eigenvalues uses
per-thread bisection whose iteration count is data-dependent, giving
sustained divergence.
"""

from __future__ import annotations

import numpy as np

from .base import Category, Workload, grid_for
from .registry import register

_NBODY_PTX = r"""
.version 2.3
.target sim
.entry nbodyForces (.param .u64 bodies, .param .u64 accel,
                    .param .u32 n)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<24>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  // my position
  shl.b32 %r6, %r4, 4;
  cvt.u64.u32 %rd1, %r6;
  ld.param.u64 %rd2, [bodies];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];      // x
  ld.global.f32 %f2, [%rd3+4];    // y
  ld.global.f32 %f3, [%rd3+8];    // z
  mov.f32 %f4, 0.0;               // ax
  mov.f32 %f5, 0.0;               // ay
  mov.f32 %f6, 0.0;               // az
  mov.u32 %r7, 0;
BODYLOOP:
  shl.b32 %r8, %r7, 4;
  cvt.u64.u32 %rd4, %r8;
  add.u64 %rd5, %rd2, %rd4;
  ld.global.f32 %f7, [%rd5];
  ld.global.f32 %f8, [%rd5+4];
  ld.global.f32 %f9, [%rd5+8];
  ld.global.f32 %f10, [%rd5+12];  // mass
  sub.f32 %f11, %f7, %f1;
  sub.f32 %f12, %f8, %f2;
  sub.f32 %f13, %f9, %f3;
  mul.f32 %f14, %f11, %f11;
  fma.rn.f32 %f14, %f12, %f12, %f14;
  fma.rn.f32 %f14, %f13, %f13, %f14;
  add.f32 %f14, %f14, 0.01;       // softening^2
  rsqrt.approx.f32 %f15, %f14;
  mul.f32 %f16, %f15, %f15;
  mul.f32 %f16, %f16, %f15;       // invDist^3
  mul.f32 %f17, %f10, %f16;       // m * invDist^3
  fma.rn.f32 %f4, %f11, %f17, %f4;
  fma.rn.f32 %f5, %f12, %f17, %f5;
  fma.rn.f32 %f6, %f13, %f17, %f6;
  add.u32 %r7, %r7, 1;
  setp.lt.u32 %p2, %r7, %r5;
  @%p2 bra BODYLOOP;
  mul.lo.u32 %r9, %r4, 12;
  cvt.u64.u32 %rd6, %r9;
  ld.param.u64 %rd7, [accel];
  add.u64 %rd8, %rd7, %rd6;
  st.global.f32 [%rd8], %f4;
  st.global.f32 [%rd8+4], %f5;
  st.global.f32 [%rd8+8], %f6;
DONE:
  exit;
}
"""


@register
class Nbody(Workload):
    """SDK ``nbody``: all-pairs gravitational force accumulation."""

    name = "Nbody"
    category = Category.COMPUTE_UNIFORM
    description = "all-pairs n-body force accumulation with rsqrt"

    def module_source(self) -> str:
        return _NBODY_PTX

    def reference(self, bodies: np.ndarray) -> np.ndarray:
        position = bodies[:, :3].astype(np.float32)
        mass = bodies[:, 3].astype(np.float32)
        n = len(bodies)
        acceleration = np.zeros((n, 3), dtype=np.float32)
        for j in range(n):
            delta = position[j] - position  # (n, 3)
            dist2 = (
                (delta * delta).sum(axis=1).astype(np.float32)
                + np.float32(0.01)
            )
            inv = (1.0 / np.sqrt(dist2)).astype(np.float32)
            inv3 = (inv * inv * inv).astype(np.float32)
            scale = (mass[j] * inv3).astype(np.float32)
            acceleration += delta * scale[:, None]
        return acceleration

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(32, int(64 * scale))
        rng = self.rng()
        bodies = np.zeros((n, 4), dtype=np.float32)
        bodies[:, :3] = rng.uniform(-1, 1, (n, 3))
        bodies[:, 3] = rng.uniform(0.1, 1.0, n)
        body_buffer = device.upload(bodies)
        accel = device.malloc(n * 12)
        block = 32
        result = device.launch(
            "nbodyForces",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[body_buffer, accel, n],
        )
        correct = None
        if check:
            got = accel.read(np.float32, n * 3).reshape(n, 3)
            correct = np.allclose(
                got, self.reference(bodies), rtol=1e-2, atol=1e-3
            )
        return self._finish([result], correct, check)


_EIGEN_PTX = r"""
.version 2.3
.target sim
.entry eigenBisect (.param .u64 a, .param .u64 b, .param .u64 out,
                    .param .u32 n)
{
  .reg .u32 %r<10>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<20>;
  .reg .pred %p<6>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [a];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];      // coefficient a
  ld.param.u64 %rd4, [b];
  add.u64 %rd5, %rd4, %rd1;
  ld.global.f32 %f2, [%rd5];      // coefficient b
  // bisect f(x) = x^3 - a x - b on [0, 8]; f(0) = -b < 0
  mov.f32 %f3, 0.0;               // lo
  mov.f32 %f4, 8.0;               // hi
BISECT:
  add.f32 %f5, %f3, %f4;
  mul.f32 %f5, %f5, 0.5;          // mid
  mul.f32 %f6, %f5, %f5;
  mul.f32 %f6, %f6, %f5;          // mid^3
  mul.f32 %f7, %f1, %f5;
  sub.f32 %f8, %f6, %f7;
  sub.f32 %f8, %f8, %f2;          // f(mid)
  setp.gt.f32 %p2, %f8, 0.0;
  selp.f32 %f4, %f5, %f4, %p2;    // hi = mid if f > 0
  selp.f32 %f3, %f3, %f5, %p2;    // lo = mid otherwise
  // data-dependent convergence test (|f(mid)| depends on the local
  // slope) -> ragged trip counts across threads
  abs.f32 %f9, %f8;
  setp.gt.f32 %p3, %f9, 0.001;
  @%p3 bra BISECT;
  mul.wide.u32 %rd6, %r4, 4;
  ld.param.u64 %rd7, [out];
  add.u64 %rd8, %rd7, %rd6;
  st.global.f32 [%rd8], %f5;
DONE:
  exit;
}
"""


@register
class Eigenvalues(Workload):
    """SDK ``eigenvalues``: bisection refinement with data-dependent
    iteration counts (divergent, like the SDK's interval bisection)."""

    name = "Eigenvalues"
    category = Category.DIVERGENT
    description = "per-thread cubic bisection with ragged trip counts"

    def module_source(self) -> str:
        return _EIGEN_PTX

    def reference(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        out = np.zeros(len(A), dtype=np.float32)
        for index, (a, b) in enumerate(zip(A, B)):
            lo = np.float32(0.0)
            hi = np.float32(8.0)
            mid = np.float32(0.0)
            while True:
                mid = np.float32((lo + hi) * np.float32(0.5))
                value = np.float32(
                    mid * mid * mid - np.float32(a) * mid - np.float32(b)
                )
                if value > 0:
                    hi = mid
                else:
                    lo = mid
                if not abs(value) > np.float32(0.001):
                    break
            out[index] = mid
        return out

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(64, int(128 * scale))
        rng = self.rng()
        A = rng.uniform(0.5, 4.0, n).astype(np.float32)
        B = rng.uniform(0.5, 4.0, n).astype(np.float32)
        a = device.upload(A)
        b = device.upload(B)
        out = device.malloc(n * 4)
        block = 64
        result = device.launch(
            "eigenBisect",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[a, b, out, n],
        )
        correct = None
        if check:
            got = out.read(np.float32, n)
            correct = np.allclose(
                got, self.reference(A, B), rtol=1e-3, atol=1e-3
            )
        return self._finish([result], correct, check)
