"""Workload infrastructure.

Each workload models one application of the paper's evaluation suites
(CUDA SDK 2.2 / Parboil): it carries the PTX dialect source of its
kernels, generates deterministic inputs, launches through the public
:class:`~repro.api.device.Device` API, and verifies device results
against a NumPy host reference — so every benchmark run is also a
correctness check.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..api.device import Device
from ..runtime.config import ExecutionConfig
from ..runtime.launcher import LaunchResult
from ..runtime.statistics import LaunchStatistics


class Category:
    """Behavioural classes used to reason about expected speedups."""

    COMPUTE_UNIFORM = "compute-uniform"
    MEMORY_BOUND = "memory-bound"
    BARRIER_HEAVY = "barrier-heavy"
    DIVERGENT = "divergent"
    ATOMIC = "atomic"
    MICRO = "micro"


@dataclass
class WorkloadRun:
    """Outcome of one workload execution on one device config."""

    workload: str
    launches: List[LaunchResult] = field(default_factory=list)
    correct: bool = True
    checked: bool = False
    notes: str = ""
    #: Host wall-clock seconds of the whole execution (upload, compile,
    #: run, verify) — the *real* cost of the run, next to the modeled
    #: cycle counts. 0.0 when the run was not timed.
    host_seconds: float = 0.0

    @property
    def statistics(self) -> LaunchStatistics:
        """Merged statistics over all launches of the run."""
        merged = LaunchStatistics()
        worker_totals = {}
        for launch in self.launches:
            merged.merge(launch.statistics)
            for worker, cycles in launch.statistics.worker_cycles.items():
                worker_totals[worker] = (
                    worker_totals.get(worker, 0) + cycles
                )
        merged.worker_cycles = worker_totals
        return merged

    @property
    def elapsed_cycles(self) -> int:
        """Sequential launches: sum of per-launch elapsed cycles."""
        return sum(
            launch.statistics.elapsed_cycles for launch in self.launches
        )

    def elapsed_seconds(self, clock_hz: float) -> float:
        return self.elapsed_cycles / clock_hz


class Workload(abc.ABC):
    """One benchmark application."""

    #: Unique registry name (matches the paper's app naming).
    name: str = ""
    #: Behavioural class (see :class:`Category`).
    category: str = Category.COMPUTE_UNIFORM
    #: One-line description of what the app computes.
    description: str = ""
    #: RNG seed for deterministic inputs.
    seed: int = 2012

    def rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed)

    @abc.abstractmethod
    def module_source(self) -> str:
        """PTX dialect source of the workload's kernels."""

    @abc.abstractmethod
    def execute(
        self, device: Device, scale: float = 1.0, check: bool = True
    ) -> WorkloadRun:
        """Upload inputs, launch kernels, verify, return the run."""

    # -- helpers for subclasses --------------------------------------------

    def prepare(self, device: Device) -> None:
        device.register_module(self.module_source())

    def run_on(
        self,
        config: ExecutionConfig,
        scale: float = 1.0,
        check: bool = True,
        machine=None,
    ) -> WorkloadRun:
        """Convenience: build a fresh device with ``config`` and run.
        The run is wall-clock timed (``WorkloadRun.host_seconds``)."""
        device = Device(machine=machine, config=config)
        self.prepare(device)
        start = time.perf_counter()
        run = self.execute(device, scale=scale, check=check)
        run.host_seconds = time.perf_counter() - start
        return run

    def _finish(
        self,
        launches: List[LaunchResult],
        correct: Optional[bool],
        check: bool,
        notes: str = "",
    ) -> WorkloadRun:
        run = WorkloadRun(
            workload=self.name,
            launches=launches,
            correct=bool(correct) if check else True,
            checked=check,
            notes=notes,
        )
        if check and not run.correct:
            raise AssertionError(
                f"workload {self.name} produced incorrect results"
                + (f" ({notes})" if notes else "")
            )
        return run


def grid_for(total_threads: int, block: int) -> int:
    """CTAs needed to cover ``total_threads`` with ``block`` threads."""
    return -(-total_threads // block)
