"""Parboil workloads: cp (coulombic potential), mri-q, mri-fhd.

``cp`` is the paper's best case (3.9x, Fig. 6): a fully unrolled inner
loop over a fixed atom set — pure floating-point work with almost no
memory traffic. The MRI kernels are transcendental-heavy but carry a
data-dependent sample filter, giving them the uncorrelated divergence
that makes them *lose* performance under dynamic warp formation in the
paper's measurements.
"""

from __future__ import annotations

import numpy as np

from .base import Category, Workload, grid_for
from .registry import register

_ATOMS = 16


def _cp_atoms() -> np.ndarray:
    rng = np.random.default_rng(99)
    atoms = np.zeros((_ATOMS, 4), dtype=np.float32)
    atoms[:, 0] = rng.uniform(0, 16, _ATOMS)  # x
    atoms[:, 1] = rng.uniform(0, 16, _ATOMS)  # y
    atoms[:, 2] = rng.uniform(0.5, 2.0, _ATOMS)  # z (above the plane)
    atoms[:, 3] = rng.uniform(-1.0, 1.0, _ATOMS)  # charge
    return atoms


def _cp_ptx() -> str:
    """Generate the unrolled cp kernel with atom data baked in
    (mirrors Parboil's fully unrolled constant-memory inner loop)."""
    atoms = _cp_atoms()
    lines = [
        ".version 2.3",
        ".target sim",
        "",
        ".entry cpEnergy (.param .u64 grid_out, .param .u32 width,"
        " .param .u32 n)",
        "{",
        "  .reg .u32 %r<10>;",
        "  .reg .u64 %rd<6>;",
        "  .reg .f32 %f<16>;",
        "  .reg .pred %p<2>;",
        "",
        "  mov.u32 %r1, %tid.x;",
        "  mov.u32 %r2, %ntid.x;",
        "  mov.u32 %r3, %ctaid.x;",
        "  mad.lo.u32 %r4, %r3, %r2, %r1;",
        "  ld.param.u32 %r5, [n];",
        "  setp.ge.u32 %p1, %r4, %r5;",
        "  @%p1 bra DONE;",
        "  ld.param.u32 %r6, [width];",
        "  div.u32 %r7, %r4, %r6;",
        "  mul.lo.u32 %r8, %r7, %r6;",
        "  sub.u32 %r9, %r4, %r8;",
        "  cvt.rn.f32.u32 %f1, %r9;",  # px
        "  cvt.rn.f32.u32 %f2, %r7;",  # py
        "  mov.f32 %f3, 0.0;",  # energy
    ]
    for ax, ay, az, charge in atoms:
        z2 = float(az) * float(az)
        lines += [
            f"  sub.f32 %f4, %f1, {float(ax)};",
            f"  sub.f32 %f5, %f2, {float(ay)};",
            "  mul.f32 %f6, %f4, %f4;",
            "  fma.rn.f32 %f6, %f5, %f5, %f6;",
            f"  add.f32 %f6, %f6, {z2};",
            "  rsqrt.approx.f32 %f7, %f6;",
            f"  fma.rn.f32 %f3, %f7, {float(charge)}, %f3;",
        ]
    lines += [
        "  mul.wide.u32 %rd1, %r4, 4;",
        "  ld.param.u64 %rd2, [grid_out];",
        "  add.u64 %rd3, %rd2, %rd1;",
        "  st.global.f32 [%rd3], %f3;",
        "DONE:",
        "  exit;",
        "}",
    ]
    return "\n".join(lines)


@register
class CoulombicPotential(Workload):
    """Parboil ``cp``: electrostatic potential over a 2D grid from a
    fixed atom set, inner loop fully unrolled."""

    name = "cp"
    category = Category.COMPUTE_UNIFORM
    description = "coulombic potential map, unrolled atom loop"

    WIDTH = 32

    def module_source(self) -> str:
        return _cp_ptx()

    def reference(self, n: int) -> np.ndarray:
        atoms = _cp_atoms()
        gid = np.arange(n, dtype=np.uint32)
        px = (gid % self.WIDTH).astype(np.float32)
        py = (gid // self.WIDTH).astype(np.float32)
        energy = np.zeros(n, dtype=np.float32)
        for ax, ay, az, charge in atoms:
            dx = px - np.float32(ax)
            dy = py - np.float32(ay)
            r2 = dx * dx + dy * dy + np.float32(float(az) * float(az))
            inv = (1.0 / np.sqrt(r2)).astype(np.float32)
            energy = energy + inv * np.float32(charge)
        return energy

    def execute(self, device, scale: float = 1.0, check: bool = True):
        rows = max(4, int(8 * scale))
        n = rows * self.WIDTH
        out = device.malloc(n * 4)
        block = 64
        result = device.launch(
            "cpEnergy",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[out, self.WIDTH, n],
        )
        correct = None
        if check:
            got = out.read(np.float32, n)
            correct = np.allclose(
                got, self.reference(n), rtol=1e-3, atol=1e-3
            )
        return self._finish([result], correct, check)


_MRIQ_PTX = r"""
.version 2.3
.target sim
.entry mriQ (.param .u64 kspace, .param .u64 coords, .param .u64 outR,
             .param .u64 outI, .param .u32 samples, .param .u32 n)
{
  .reg .u32 %r<12>;
  .reg .u64 %rd<14>;
  .reg .f32 %f<20>;
  .reg .pred %p<6>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  // voxel coordinate
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [coords];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  mov.f32 %f2, 0.0;          // Qr
  mov.f32 %f3, 0.0;          // Qi
  ld.param.u32 %r6, [samples];
  mov.u32 %r7, 0;
SAMPLE:
  // k-space sample: (k, magnitude) pairs
  shl.b32 %r8, %r7, 3;
  cvt.u64.u32 %rd4, %r8;
  ld.param.u64 %rd5, [kspace];
  add.u64 %rd6, %rd5, %rd4;
  ld.global.f32 %f4, [%rd6];     // k value
  ld.global.f32 %f5, [%rd6+4];   // magnitude
  // data-dependent sample filter: skip weak magnitudes whose
  // threshold depends on the voxel -> uncorrelated divergence
  mul.f32 %f6, %f1, 0.3;
  abs.f32 %f6, %f6;
  abs.f32 %f7, %f5;
  setp.lt.f32 %p2, %f7, %f6;
  @%p2 bra NEXT;
  mul.f32 %f8, %f4, %f1;
  mul.f32 %f8, %f8, 6.2831853;
  sin.approx.f32 %f9, %f8;
  cos.approx.f32 %f10, %f8;
  fma.rn.f32 %f2, %f5, %f10, %f2;
  fma.rn.f32 %f3, %f5, %f9, %f3;
NEXT:
  add.u32 %r7, %r7, 1;
  setp.lt.u32 %p3, %r7, %r6;
  @%p3 bra SAMPLE;
  ld.param.u64 %rd7, [outR];
  add.u64 %rd8, %rd7, %rd1;
  st.global.f32 [%rd8], %f2;
  ld.param.u64 %rd9, [outI];
  add.u64 %rd10, %rd9, %rd1;
  st.global.f32 [%rd10], %f3;
DONE:
  exit;
}
"""


class _MriBase(Workload):
    """Shared host logic of the two MRI kernels."""

    SAMPLES = 24

    def _inputs(self, n: int):
        rng = self.rng()
        kvals = rng.uniform(-0.5, 0.5, self.SAMPLES).astype(np.float32)
        mags = rng.uniform(0.0, 1.0, self.SAMPLES).astype(np.float32)
        kspace = np.empty(self.SAMPLES * 2, dtype=np.float32)
        kspace[0::2] = kvals
        kspace[1::2] = mags
        coords = rng.uniform(-1.0, 1.0, n).astype(np.float32)
        return kspace, kvals, mags, coords

    def reference(self, kvals, mags, coords):
        n = len(coords)
        Qr = np.zeros(n, dtype=np.float32)
        Qi = np.zeros(n, dtype=np.float32)
        threshold = np.abs(coords * np.float32(0.3))
        for k, mag in zip(kvals, mags):
            keep = np.abs(np.float32(mag)) >= threshold
            phase = (
                np.float32(k) * coords * np.float32(6.2831853)
            ).astype(np.float32)
            Qr = np.where(
                keep,
                Qr + np.float32(mag) * np.cos(phase, dtype=np.float32),
                Qr,
            ).astype(np.float32)
            Qi = np.where(
                keep,
                Qi + np.float32(mag) * np.sin(phase, dtype=np.float32),
                Qi,
            ).astype(np.float32)
        return Qr, Qi

    def _run(self, device, kernel: str, scale: float, check: bool):
        n = max(64, int(128 * scale))
        kspace, kvals, mags, coords = self._inputs(n)
        kspace_buffer = device.upload(kspace)
        coords_buffer = device.upload(coords)
        out_r = device.malloc(n * 4)
        out_i = device.malloc(n * 4)
        block = 64
        result = device.launch(
            kernel,
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[
                kspace_buffer,
                coords_buffer,
                out_r,
                out_i,
                self.SAMPLES,
                n,
            ],
        )
        correct = None
        if check:
            Qr, Qi = self.reference(kvals, mags, coords)
            correct = np.allclose(
                out_r.read(np.float32, n), Qr, rtol=1e-3, atol=1e-3
            ) and np.allclose(
                out_i.read(np.float32, n), Qi, rtol=1e-3, atol=1e-3
            )
        return self._finish([result], correct, check)


@register
class MriQ(_MriBase):
    """Parboil ``mri-q``: Q-matrix computation with a per-voxel
    sample filter."""

    name = "mri-q"
    category = Category.DIVERGENT
    description = "MRI Q computation, sin/cos with divergent filter"

    def module_source(self) -> str:
        return _MRIQ_PTX

    def execute(self, device, scale: float = 1.0, check: bool = True):
        return self._run(device, "mriQ", scale, check)


@register
class MriFhd(_MriBase):
    """Parboil ``mri-fhd``: F^H d computation; same loop structure as
    mri-q with the conjugate accumulation."""

    name = "mri-fhd"
    category = Category.DIVERGENT
    description = "MRI FHd computation, sin/cos with divergent filter"

    def module_source(self) -> str:
        return _MRIQ_PTX.replace("mriQ", "mriFhd").replace(
            "fma.rn.f32 %f3, %f5, %f9, %f3;",
            "neg.f32 %f11, %f9;\n  fma.rn.f32 %f3, %f5, %f11, %f3;",
        )

    def reference(self, kvals, mags, coords):
        Qr, Qi = super().reference(kvals, mags, coords)
        return Qr, (-Qi).astype(np.float32)

    def execute(self, device, scale: float = 1.0, check: bool = True):
        return self._run(device, "mriFhd", scale, check)
