"""Linear-algebra workloads: MatrixMul (shared-memory tiled GEMM) and
ScalarProd (batched dot products with a shared-memory reduction).

Both synchronize frequently; ScalarProd is additionally memory-bound,
which is why the paper measures ~1.0x for it (Fig. 6) — the loads
dominate and cannot be vectorized.
"""

from __future__ import annotations

import numpy as np

from .base import Category, Workload
from .registry import register


@register
class MatrixMul(Workload):
    """SDK ``matrixMul``: C = A x B with 8x8 shared-memory tiles."""

    name = "MatrixMul"
    category = Category.BARRIER_HEAVY
    description = "tiled matrix multiply, two barriers per tile step"

    TILE = 8

    def module_source(self) -> str:
        return r"""
.version 2.3
.target sim
.entry matrixMul (.param .u64 a, .param .u64 b, .param .u64 c,
                  .param .u32 k)
{
  .reg .u32 %r<28>;
  .reg .u64 %rd<12>;
  .reg .f32 %f<8>;
  .reg .pred %p<4>;
  .shared .f32 tileA[64];
  .shared .f32 tileB[64];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %tid.y;
  mov.u32 %r3, %ctaid.x;
  mov.u32 %r4, %ctaid.y;
  ld.param.u32 %r5, [k];
  shl.b32 %r6, %r3, 3;
  add.u32 %r7, %r6, %r1;
  shl.b32 %r8, %r4, 3;
  add.u32 %r9, %r8, %r2;
  mov.f32 %f1, 0.0;
  mov.u32 %r10, 0;
TILELOOP:
  shl.b32 %r11, %r10, 3;
  add.u32 %r12, %r11, %r1;
  mad.lo.u32 %r13, %r9, %r5, %r12;
  mul.wide.u32 %rd1, %r13, 4;
  ld.param.u64 %rd2, [a];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f2, [%rd3];
  shl.b32 %r14, %r2, 3;
  add.u32 %r15, %r14, %r1;
  shl.b32 %r16, %r15, 2;
  mov.u32 %r17, tileA;
  add.u32 %r18, %r17, %r16;
  st.shared.f32 [%r18], %f2;
  add.u32 %r19, %r11, %r2;
  mad.lo.u32 %r20, %r19, %r5, %r7;
  mul.wide.u32 %rd4, %r20, 4;
  ld.param.u64 %rd5, [b];
  add.u64 %rd6, %rd5, %rd4;
  ld.global.f32 %f3, [%rd6];
  mov.u32 %r21, tileB;
  add.u32 %r22, %r21, %r16;
  st.shared.f32 [%r22], %f3;
  bar.sync 0;
  mov.u32 %r23, 0;
INNER:
  shl.b32 %r24, %r2, 3;
  add.u32 %r24, %r24, %r23;
  shl.b32 %r24, %r24, 2;
  add.u32 %r24, %r17, %r24;
  ld.shared.f32 %f4, [%r24];
  shl.b32 %r25, %r23, 3;
  add.u32 %r25, %r25, %r1;
  shl.b32 %r25, %r25, 2;
  add.u32 %r25, %r21, %r25;
  ld.shared.f32 %f5, [%r25];
  fma.rn.f32 %f1, %f4, %f5, %f1;
  add.u32 %r23, %r23, 1;
  setp.lt.u32 %p1, %r23, 8;
  @%p1 bra INNER;
  bar.sync 0;
  add.u32 %r10, %r10, 1;
  shr.u32 %r26, %r5, 3;
  setp.lt.u32 %p2, %r10, %r26;
  @%p2 bra TILELOOP;
  mad.lo.u32 %r27, %r9, %r5, %r7;
  mul.wide.u32 %rd7, %r27, 4;
  ld.param.u64 %rd8, [c];
  add.u64 %rd9, %rd8, %rd7;
  st.global.f32 [%rd9], %f1;
  exit;
}
"""

    def execute(self, device, scale: float = 1.0, check: bool = True):
        tiles = max(2, int(2 * scale))
        n = tiles * self.TILE
        rng = self.rng()
        A = rng.standard_normal((n, n)).astype(np.float32)
        B = rng.standard_normal((n, n)).astype(np.float32)
        a = device.upload(A)
        b = device.upload(B)
        c = device.malloc(n * n * 4)
        result = device.launch(
            "matrixMul",
            grid=(tiles, tiles, 1),
            block=(self.TILE, self.TILE, 1),
            args=[a, b, c, n],
        )
        correct = None
        if check:
            got = c.read(np.float32, n * n).reshape(n, n)
            correct = np.allclose(got, A @ B, rtol=1e-3, atol=1e-4)
        return self._finish([result], correct, check)


_SCALARPROD_PTX = r"""
.version 2.3
.target sim
.entry scalarProd (.param .u64 a, .param .u64 b, .param .u64 out,
                   .param .u32 elements)
{
  .reg .u32 %r<16>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<8>;
  .reg .pred %p<6>;
  .shared .f32 partial[@BLOCK@];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  ld.param.u32 %r3, [elements];
  mul.lo.u32 %r4, %r2, %r3;
  mov.f32 %f1, 0.0;
  mov.u32 %r5, %r1;
ACC:
  setp.ge.u32 %p1, %r5, %r3;
  @%p1 bra ACCDONE;
  add.u32 %r6, %r4, %r5;
  mul.wide.u32 %rd1, %r6, 4;
  ld.param.u64 %rd2, [a];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f2, [%rd3];
  ld.param.u64 %rd4, [b];
  add.u64 %rd5, %rd4, %rd1;
  ld.global.f32 %f3, [%rd5];
  fma.rn.f32 %f1, %f2, %f3, %f1;
  add.u32 %r5, %r5, @BLOCK@;
  bra ACC;
ACCDONE:
  mov.u32 %r7, partial;
  shl.b32 %r8, %r1, 2;
  add.u32 %r9, %r7, %r8;
  st.shared.f32 [%r9], %f1;
  bar.sync 0;
  mov.u32 %r10, @HALF@;
RED:
  setp.ge.u32 %p2, %r1, %r10;
  @%p2 bra SKIP;
  shl.b32 %r11, %r10, 2;
  add.u32 %r12, %r9, %r11;
  ld.shared.f32 %f4, [%r9];
  ld.shared.f32 %f5, [%r12];
  add.f32 %f4, %f4, %f5;
  st.shared.f32 [%r9], %f4;
SKIP:
  bar.sync 0;
  shr.u32 %r10, %r10, 1;
  setp.gt.u32 %p3, %r10, 0;
  @%p3 bra RED;
  setp.ne.u32 %p4, %r1, 0;
  @%p4 bra DONE;
  ld.shared.f32 %f6, [%r7];
  mul.wide.u32 %rd6, %r2, 4;
  ld.param.u64 %rd7, [out];
  add.u64 %rd8, %rd7, %rd6;
  st.global.f32 [%rd8], %f6;
DONE:
  exit;
}
"""


@register
class ScalarProd(Workload):
    """SDK ``scalarProd``: one CTA per vector pair; strided partial
    sums reduced through shared memory with a barrier per step."""

    name = "ScalarProd"
    category = Category.MEMORY_BOUND
    description = "batched dot products with shared-memory reduction"

    BLOCK = 32
    ELEMENTS = 128

    def module_source(self) -> str:
        return _SCALARPROD_PTX.replace(
            "@BLOCK@", str(self.BLOCK)
        ).replace("@HALF@", str(self.BLOCK // 2))

    def reference(self, A, B, pairs, elements):
        """Strided float32 accumulation matching the kernel's order."""
        a = A.reshape(pairs, elements)
        b = B.reshape(pairs, elements)
        partial = np.zeros((pairs, self.BLOCK), dtype=np.float32)
        for start in range(0, elements, self.BLOCK):
            partial += (
                a[:, start : start + self.BLOCK]
                * b[:, start : start + self.BLOCK]
            )
        stride = self.BLOCK // 2
        while stride > 0:
            partial[:, :stride] += partial[:, stride : 2 * stride]
            stride //= 2
        return partial[:, 0]

    def execute(self, device, scale: float = 1.0, check: bool = True):
        pairs = max(4, int(8 * scale))
        elements = self.ELEMENTS
        rng = self.rng()
        A = rng.standard_normal(pairs * elements).astype(np.float32)
        B = rng.standard_normal(pairs * elements).astype(np.float32)
        a = device.upload(A)
        b = device.upload(B)
        out = device.malloc(pairs * 4)
        result = device.launch(
            "scalarProd",
            grid=(pairs, 1, 1),
            block=(self.BLOCK, 1, 1),
            args=[a, b, out, elements],
        )
        correct = None
        if check:
            got = out.read(np.float32, pairs)
            expected = self.reference(A, B, pairs, elements)
            correct = np.allclose(got, expected, rtol=1e-3, atol=1e-4)
        return self._finish([result], correct, check)
