"""Benchmark workload suite modeled on the paper's evaluation sets
(CUDA SDK 2.2 + Parboil). Every workload verifies device output
against a NumPy reference."""

from .base import Category, Workload, WorkloadRun, grid_for
from .registry import all_workloads, get_workload, register, workload_names

__all__ = [
    "Category",
    "Workload",
    "WorkloadRun",
    "all_workloads",
    "get_workload",
    "grid_for",
    "register",
    "workload_names",
]
