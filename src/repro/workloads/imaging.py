"""Imaging workloads: SobelFilter and ImageDenoising.

SobelFilter is a stencil (memory-heavy, uniform). ImageDenoising is a
weighted-window filter with exponential weights — compute-heavy with
``selp``-based conditional accumulation, so control flow stays uniform.
"""

from __future__ import annotations

import numpy as np

from .base import Category, Workload
from .registry import register

_SOBEL_PTX = r"""
.version 2.3
.target sim
.entry sobelFilter (.param .u64 in, .param .u64 out,
                    .param .u32 width, .param .u32 height)
{
  .reg .u32 %r<20>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<20>;
  .reg .pred %p<6>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [width];
  ld.param.u32 %r6, [height];
  mul.lo.u32 %r7, %r5, %r6;
  setp.ge.u32 %p1, %r4, %r7;
  @%p1 bra DONE;
  div.u32 %r8, %r4, %r5;      // y
  mul.lo.u32 %r9, %r8, %r5;
  sub.u32 %r10, %r4, %r9;     // x
  // interior test
  setp.eq.u32 %p2, %r10, 0;
  sub.u32 %r11, %r5, 1;
  setp.eq.u32 %p3, %r10, %r11;
  or.pred %p2, %p2, %p3;
  setp.eq.u32 %p4, %r8, 0;
  or.pred %p2, %p2, %p4;
  sub.u32 %r12, %r6, 1;
  setp.eq.u32 %p5, %r8, %r12;
  or.pred %p2, %p2, %p5;
  @%p2 bra ZERO;
  // 3x3 neighbourhood
  ld.param.u64 %rd1, [in];
  sub.u32 %r13, %r4, %r5;
  sub.u32 %r14, %r13, 1;
  mul.wide.u32 %rd2, %r14, 4;
  add.u64 %rd3, %rd1, %rd2;
  ld.global.f32 %f1, [%rd3];      // NW
  ld.global.f32 %f2, [%rd3+4];    // N
  ld.global.f32 %f3, [%rd3+8];    // NE
  sub.u32 %r15, %r4, 1;
  mul.wide.u32 %rd4, %r15, 4;
  add.u64 %rd5, %rd1, %rd4;
  ld.global.f32 %f4, [%rd5];      // W
  ld.global.f32 %f5, [%rd5+8];    // E
  add.u32 %r16, %r4, %r5;
  sub.u32 %r17, %r16, 1;
  mul.wide.u32 %rd6, %r17, 4;
  add.u64 %rd7, %rd1, %rd6;
  ld.global.f32 %f6, [%rd7];      // SW
  ld.global.f32 %f7, [%rd7+4];    // S
  ld.global.f32 %f8, [%rd7+8];    // SE
  // gx = (NE + 2E + SE) - (NW + 2W + SW)
  fma.rn.f32 %f9, %f5, 2.0, %f3;
  add.f32 %f9, %f9, %f8;
  fma.rn.f32 %f10, %f4, 2.0, %f1;
  add.f32 %f10, %f10, %f6;
  sub.f32 %f11, %f9, %f10;
  // gy = (SW + 2S + SE) - (NW + 2N + NE)
  fma.rn.f32 %f12, %f7, 2.0, %f6;
  add.f32 %f12, %f12, %f8;
  fma.rn.f32 %f13, %f2, 2.0, %f1;
  add.f32 %f13, %f13, %f3;
  sub.f32 %f14, %f12, %f13;
  mul.f32 %f15, %f11, %f11;
  fma.rn.f32 %f15, %f14, %f14, %f15;
  sqrt.approx.f32 %f16, %f15;
  bra STORE;
ZERO:
  mov.f32 %f16, 0.0;
STORE:
  mul.wide.u32 %rd8, %r4, 4;
  ld.param.u64 %rd1, [out];
  add.u64 %rd3, %rd1, %rd8;
  st.global.f32 [%rd3], %f16;
DONE:
  exit;
}
"""


@register
class SobelFilter(Workload):
    """SDK ``SobelFilter``: gradient-magnitude edge detection."""

    name = "SobelFilter"
    category = Category.MEMORY_BOUND
    description = "3x3 Sobel gradient magnitude over an image"

    WIDTH = 32

    def module_source(self) -> str:
        return _SOBEL_PTX

    def reference(self, image: np.ndarray) -> np.ndarray:
        height, width = image.shape
        out = np.zeros_like(image)
        gx = (
            image[:-2, 2:] + 2 * image[1:-1, 2:] + image[2:, 2:]
        ) - (image[:-2, :-2] + 2 * image[1:-1, :-2] + image[2:, :-2])
        gy = (
            image[2:, :-2] + 2 * image[2:, 1:-1] + image[2:, 2:]
        ) - (image[:-2, :-2] + 2 * image[:-2, 1:-1] + image[:-2, 2:])
        out[1:-1, 1:-1] = np.sqrt(gx * gx + gy * gy)
        return out.astype(np.float32)

    def execute(self, device, scale: float = 1.0, check: bool = True):
        width = self.WIDTH
        height = max(8, int(16 * scale))
        n = width * height
        image = (
            self.rng()
            .uniform(0, 1, n)
            .astype(np.float32)
            .reshape(height, width)
        )
        source = device.upload(image)
        destination = device.malloc(n * 4)
        block = 64
        result = device.launch(
            "sobelFilter",
            grid=(-(-n // block), 1, 1),
            block=(block, 1, 1),
            args=[source, destination, width, height],
        )
        correct = None
        if check:
            got = destination.read(np.float32, n).reshape(height, width)
            correct = np.allclose(
                got, self.reference(image), rtol=1e-3, atol=1e-4
            )
        return self._finish([result], correct, check)


_DENOISE_PTX = r"""
.version 2.3
.target sim
.entry imageDenoise (.param .u64 in, .param .u64 out,
                     .param .u32 width, .param .u32 height)
{
  .reg .u32 %r<20>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<20>;
  .reg .pred %p<6>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [width];
  ld.param.u32 %r6, [height];
  mul.lo.u32 %r7, %r5, %r6;
  setp.ge.u32 %p1, %r4, %r7;
  @%p1 bra DONE;
  div.u32 %r8, %r4, %r5;      // y
  mul.lo.u32 %r9, %r8, %r5;
  sub.u32 %r10, %r4, %r9;     // x
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];  // centre value
  mov.f32 %f2, 0.0;           // weighted sum
  mov.f32 %f3, 0.0;           // weight sum
  mov.u32 %r11, 0;            // window index 0..24
WLOOP:
  // neighbour coordinates (clamped 5x5 window)
  div.u32 %r12, %r11, 5;
  mul.lo.u32 %r13, %r12, 5;
  sub.u32 %r14, %r11, %r13;
  add.u32 %r15, %r10, %r14;
  sub.u32 %r15, %r15, 2;
  max.s32 %r15, %r15, 0;
  sub.u32 %r16, %r5, 1;
  min.u32 %r15, %r15, %r16;
  add.u32 %r17, %r8, %r12;
  sub.u32 %r17, %r17, 2;
  max.s32 %r17, %r17, 0;
  sub.u32 %r18, %r6, 1;
  min.u32 %r17, %r17, %r18;
  mad.lo.u32 %r19, %r17, %r5, %r15;
  mul.wide.u32 %rd4, %r19, 4;
  add.u64 %rd5, %rd2, %rd4;
  ld.global.f32 %f4, [%rd5];
  // weight = exp2(-8 * (v - centre)^2)
  sub.f32 %f5, %f4, %f1;
  mul.f32 %f6, %f5, %f5;
  mul.f32 %f7, %f6, -8.0;
  ex2.approx.f32 %f8, %f7;
  // conditional accumulation via selp keeps control flow uniform
  setp.gt.f32 %p2, %f8, 0.1;
  selp.f32 %f9, %f8, 0.0, %p2;
  fma.rn.f32 %f2, %f4, %f9, %f2;
  add.f32 %f3, %f3, %f9;
  add.u32 %r11, %r11, 1;
  setp.lt.u32 %p3, %r11, 25;
  @%p3 bra WLOOP;
  div.full.f32 %f10, %f2, %f3;
  ld.param.u64 %rd6, [out];
  add.u64 %rd7, %rd6, %rd1;
  st.global.f32 [%rd7], %f10;
DONE:
  exit;
}
"""


@register
class ImageDenoising(Workload):
    """SDK ``imageDenoising``: NLM-flavoured weighted window average
    with exponential similarity weights."""

    name = "ImageDenoising"
    category = Category.COMPUTE_UNIFORM
    description = "5x5 similarity-weighted smoothing with ex2 weights"

    WIDTH = 32

    def module_source(self) -> str:
        return _DENOISE_PTX

    def reference(self, image: np.ndarray) -> np.ndarray:
        height, width = image.shape
        out = np.zeros_like(image)
        for y in range(height):
            for x in range(width):
                centre = image[y, x]
                weighted = np.float32(0.0)
                total = np.float32(0.0)
                for wy in range(5):
                    for wx in range(5):
                        ny = min(max(y + wy - 2, 0), height - 1)
                        nx = min(max(x + wx - 2, 0), width - 1)
                        value = image[ny, nx]
                        diff = np.float32(value - centre)
                        weight = np.exp2(
                            np.float32(-8.0) * diff * diff
                        ).astype(np.float32)
                        if not weight > np.float32(0.1):
                            weight = np.float32(0.0)
                        weighted = np.float32(
                            weighted + value * weight
                        )
                        total = np.float32(total + weight)
                out[y, x] = weighted / total
        return out

    def execute(self, device, scale: float = 1.0, check: bool = True):
        width = self.WIDTH
        height = max(4, int(8 * scale))
        n = width * height
        image = (
            self.rng()
            .uniform(0, 1, n)
            .astype(np.float32)
            .reshape(height, width)
        )
        source = device.upload(image)
        destination = device.malloc(n * 4)
        block = 64
        result = device.launch(
            "imageDenoise",
            grid=(-(-n // block), 1, 1),
            block=(block, 1, 1),
            args=[source, destination, width, height],
        )
        correct = None
        if check:
            got = destination.read(np.float32, n).reshape(height, width)
            correct = np.allclose(
                got, self.reference(image), rtol=1e-2, atol=1e-3
            )
        return self._finish([result], correct, check)
