"""Memory-movement workloads of the CUDA SDK suite: Template,
AlignedTypes, Transpose, BoxFilter, ConvolutionSeparable.

These are the memory-bound applications: their kernels are dominated
by loads/stores, which the vectorizer must replicate per lane (§4
Non-vectorizable Instructions), so the paper reports speedups near
1.0x for this class (Fig. 6: BoxFilter, etc.).
"""

from __future__ import annotations

import numpy as np

from .base import Category, Workload, grid_for
from .registry import register


@register
class Template(Workload):
    """SDK ``template``: the minimal data-parallel kernel."""

    name = "Template"
    category = Category.MEMORY_BOUND
    description = "out[i] = 2 * in[i] guarded copy"

    def module_source(self) -> str:
        return r"""
.version 2.3
.target sim
.entry templateKernel (.param .u64 in, .param .u64 out, .param .u32 n)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  add.f32 %f2, %f1, %f1;
  ld.param.u64 %rd4, [out];
  add.u64 %rd5, %rd4, %rd1;
  st.global.f32 [%rd5], %f2;
DONE:
  exit;
}
"""

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(64, int(1024 * scale))
        block = 64
        data = self.rng().standard_normal(n).astype(np.float32)
        source = device.upload(data)
        destination = device.malloc(n * 4)
        result = device.launch(
            "templateKernel",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[source, destination, n],
        )
        correct = None
        if check:
            correct = np.allclose(
                destination.read(np.float32, n), data * 2
            )
        return self._finish([result], correct, check)


@register
class AlignedTypes(Workload):
    """SDK ``alignedTypes``: bulk copies through vector-typed
    (``ld.v4``/``st.v4``) memory accesses."""

    name = "AlignedTypes"
    category = Category.MEMORY_BOUND
    description = "vector-typed (v4) aligned structure copies"

    def module_source(self) -> str:
        return r"""
.version 2.3
.target sim
.entry copyV4 (.param .u64 in, .param .u64 out, .param .u32 vecs)
{
  .reg .u32 %r<8>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<6>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [vecs];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 16;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.v4.f32 {%f1, %f2, %f3, %f4}, [%rd3];
  ld.param.u64 %rd4, [out];
  add.u64 %rd5, %rd4, %rd1;
  st.global.v4.f32 [%rd5], {%f1, %f2, %f3, %f4};
DONE:
  exit;
}
"""

    def execute(self, device, scale: float = 1.0, check: bool = True):
        vectors = max(64, int(512 * scale))
        n = vectors * 4
        block = 64
        data = self.rng().standard_normal(n).astype(np.float32)
        source = device.upload(data)
        destination = device.malloc(n * 4)
        result = device.launch(
            "copyV4",
            grid=(grid_for(vectors, block), 1, 1),
            block=(block, 1, 1),
            args=[source, destination, vectors],
        )
        correct = None
        if check:
            correct = np.array_equal(
                destination.read(np.float32, n), data
            )
        return self._finish([result], correct, check)


@register
class Transpose(Workload):
    """SDK ``transpose``: shared-memory tiled matrix transpose."""

    name = "Transpose"
    category = Category.BARRIER_HEAVY
    description = "8x8 shared-tile matrix transpose with barriers"

    TILE = 8

    def module_source(self) -> str:
        return r"""
.version 2.3
.target sim
.entry transposeTiled (.param .u64 in, .param .u64 out,
                       .param .u32 width, .param .u32 height)
{
  .reg .u32 %r<24>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;
  .shared .f32 tile[64];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %tid.y;
  mov.u32 %r3, %ctaid.x;
  mov.u32 %r4, %ctaid.y;
  shl.b32 %r5, %r3, 3;
  add.u32 %r6, %r5, %r1;
  shl.b32 %r7, %r4, 3;
  add.u32 %r8, %r7, %r2;
  ld.param.u32 %r9, [width];
  mad.lo.u32 %r10, %r8, %r9, %r6;
  mul.wide.u32 %rd1, %r10, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];
  shl.b32 %r11, %r2, 3;
  add.u32 %r12, %r11, %r1;
  shl.b32 %r13, %r12, 2;
  mov.u32 %r14, tile;
  add.u32 %r15, %r14, %r13;
  st.shared.f32 [%r15], %f1;
  bar.sync 0;
  shl.b32 %r16, %r1, 3;
  add.u32 %r17, %r16, %r2;
  shl.b32 %r18, %r17, 2;
  add.u32 %r19, %r14, %r18;
  ld.shared.f32 %f2, [%r19];
  add.u32 %r20, %r7, %r1;
  add.u32 %r21, %r5, %r2;
  ld.param.u32 %r22, [height];
  mad.lo.u32 %r23, %r21, %r22, %r20;
  mul.wide.u32 %rd4, %r23, 4;
  ld.param.u64 %rd5, [out];
  add.u64 %rd6, %rd5, %rd4;
  st.global.f32 [%rd6], %f2;
  exit;
}
"""

    def execute(self, device, scale: float = 1.0, check: bool = True):
        tiles = max(2, int(4 * scale))
        width = height = tiles * self.TILE
        matrix = (
            self.rng()
            .standard_normal(width * height)
            .astype(np.float32)
            .reshape(height, width)
        )
        source = device.upload(matrix)
        destination = device.malloc(width * height * 4)
        result = device.launch(
            "transposeTiled",
            grid=(tiles, tiles, 1),
            block=(self.TILE, self.TILE, 1),
            args=[source, destination, width, height],
        )
        correct = None
        if check:
            out = destination.read(np.float32, width * height)
            correct = np.array_equal(
                out.reshape(width, height), matrix.T
            )
        return self._finish([result], correct, check)


@register
class BoxFilter(Workload):
    """SDK ``boxFilter``: sliding-window average along rows —
    memory-bound with a uniform inner loop (Fig. 6 reports ~1.0x)."""

    name = "BoxFilter"
    category = Category.MEMORY_BOUND
    description = "1D box filter (radius 4) over image rows"

    RADIUS = 4

    def module_source(self) -> str:
        return r"""
.version 2.3
.target sim
.entry boxFilterRow (.param .u64 in, .param .u64 out,
                     .param .u32 width, .param .u32 n)
{
  .reg .u32 %r<16>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<6>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  ld.param.u32 %r6, [width];
  div.u32 %r7, %r4, %r6;
  mul.lo.u32 %r8, %r7, %r6;
  sub.u32 %r9, %r4, %r8;
  mov.f32 %f1, 0.0;
  mov.u32 %r10, 0;
LOOP:
  add.u32 %r11, %r9, %r10;
  sub.u32 %r12, %r11, 4;
  max.s32 %r12, %r12, 0;
  sub.u32 %r13, %r6, 1;
  min.u32 %r12, %r12, %r13;
  add.u32 %r14, %r8, %r12;
  mul.wide.u32 %rd1, %r14, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f2, [%rd3];
  add.f32 %f1, %f1, %f2;
  add.u32 %r10, %r10, 1;
  setp.lt.u32 %p2, %r10, 9;
  @%p2 bra LOOP;
  div.full.f32 %f3, %f1, 9.0;
  mul.wide.u32 %rd4, %r4, 4;
  ld.param.u64 %rd5, [out];
  add.u64 %rd6, %rd5, %rd4;
  st.global.f32 [%rd6], %f3;
DONE:
  exit;
}
"""

    def reference(self, image: np.ndarray) -> np.ndarray:
        height, width = image.shape
        out = np.zeros_like(image)
        for offset in range(-self.RADIUS, self.RADIUS + 1):
            columns = np.clip(
                np.arange(width) + offset, 0, width - 1
            )
            out += image[:, columns]
        return (out / np.float32(9.0)).astype(np.float32)

    def execute(self, device, scale: float = 1.0, check: bool = True):
        width = 64
        height = max(4, int(8 * scale))
        n = width * height
        image = (
            self.rng()
            .standard_normal(n)
            .astype(np.float32)
            .reshape(height, width)
        )
        source = device.upload(image)
        destination = device.malloc(n * 4)
        block = 64
        result = device.launch(
            "boxFilterRow",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[source, destination, width, n],
        )
        correct = None
        if check:
            out = destination.read(np.float32, n).reshape(height, width)
            correct = np.allclose(out, self.reference(image), rtol=1e-4)
        return self._finish([result], correct, check)


@register
class ConvolutionSeparable(Workload):
    """SDK ``convolutionSeparable``: row convolution with the filter
    taps in constant memory."""

    name = "ConvolutionSeparable"
    category = Category.MEMORY_BOUND
    description = "radius-2 row convolution, taps in .const memory"

    TAPS = [0.0625, 0.25, 0.375, 0.25, 0.0625]

    def module_source(self) -> str:
        taps = ", ".join(str(t) for t in self.TAPS)
        return f"""
.version 2.3
.target sim
.const .f32 convKernel[5] = {{ {taps} }};

.entry convolutionRow (.param .u64 in, .param .u64 out,
                       .param .u32 width, .param .u32 n)
{{
  .reg .u32 %r<16>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<6>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  ld.param.u32 %r6, [width];
  div.u32 %r7, %r4, %r6;
  mul.lo.u32 %r8, %r7, %r6;
  sub.u32 %r9, %r4, %r8;
  mov.f32 %f1, 0.0;
  mov.u32 %r10, 0;
LOOP:
  add.u32 %r11, %r9, %r10;
  sub.u32 %r12, %r11, 2;
  max.s32 %r12, %r12, 0;
  sub.u32 %r13, %r6, 1;
  min.u32 %r12, %r12, %r13;
  add.u32 %r14, %r8, %r12;
  mul.wide.u32 %rd1, %r14, 4;
  ld.param.u64 %rd2, [in];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f2, [%rd3];
  mov.u64 %rd4, convKernel;
  mul.wide.u32 %rd5, %r10, 4;
  add.u64 %rd6, %rd4, %rd5;
  ld.const.f32 %f3, [%rd6];
  fma.rn.f32 %f1, %f2, %f3, %f1;
  add.u32 %r10, %r10, 1;
  setp.lt.u32 %p2, %r10, 5;
  @%p2 bra LOOP;
  mul.wide.u32 %rd7, %r4, 4;
  ld.param.u64 %rd8, [out];
  add.u64 %rd9, %rd8, %rd7;
  st.global.f32 [%rd9], %f1;
DONE:
  exit;
}}
"""

    def reference(self, image: np.ndarray) -> np.ndarray:
        height, width = image.shape
        out = np.zeros_like(image)
        taps = np.array(self.TAPS, dtype=np.float32)
        for tap_index, tap in enumerate(taps):
            columns = np.clip(
                np.arange(width) + tap_index - 2, 0, width - 1
            )
            out = (out + image[:, columns] * tap).astype(np.float32)
        return out

    def execute(self, device, scale: float = 1.0, check: bool = True):
        width = 64
        height = max(4, int(8 * scale))
        n = width * height
        image = (
            self.rng()
            .standard_normal(n)
            .astype(np.float32)
            .reshape(height, width)
        )
        source = device.upload(image)
        destination = device.malloc(n * 4)
        block = 64
        result = device.launch(
            "convolutionRow",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[source, destination, width, n],
        )
        correct = None
        if check:
            out = destination.read(np.float32, n).reshape(height, width)
            correct = np.allclose(out, self.reference(image), rtol=1e-3)
        return self._finish([result], correct, check)
