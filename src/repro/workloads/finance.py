"""Computational-finance workloads: BlackScholes, BinomialOptions,
MonteCarlo.

These are the compute-bound, control-uniform applications for which
the paper reports the strongest vectorization gains (Fig. 6:
BinomialOptions 2.25x).
"""

from __future__ import annotations

import numpy as np

from .base import Category, Workload, grid_for
from .registry import register

_LN2 = 0.6931471805599453
_LOG2E = 1.4426950408889634


@register
class BlackScholes(Workload):
    """SDK ``BlackScholes``: European option pricing via the closed
    form with a polynomial cumulative normal distribution."""

    name = "BlackScholes"
    category = Category.COMPUTE_UNIFORM
    description = "Black-Scholes call pricing, selp-based CND"

    RISKFREE = 0.02
    VOLATILITY = 0.30

    def module_source(self) -> str:
        r = self.RISKFREE
        v = self.VOLATILITY
        return f"""
.version 2.3
.target sim
.entry blackScholes (.param .u64 price, .param .u64 strike,
                     .param .u64 years, .param .u64 call,
                     .param .u32 n)
{{
  .reg .u32 %r<8>;
  .reg .u64 %rd<12>;
  .reg .f32 %f<40>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [price];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];          // S
  ld.param.u64 %rd4, [strike];
  add.u64 %rd5, %rd4, %rd1;
  ld.global.f32 %f2, [%rd5];          // X
  ld.param.u64 %rd6, [years];
  add.u64 %rd7, %rd6, %rd1;
  ld.global.f32 %f3, [%rd7];          // T

  sqrt.approx.f32 %f4, %f3;           // sqrt(T)
  div.full.f32 %f5, %f1, %f2;         // S/X
  lg2.approx.f32 %f6, %f5;
  mul.f32 %f6, %f6, {_LN2};           // ln(S/X)
  mov.f32 %f7, {r + 0.5 * v * v};
  fma.rn.f32 %f8, %f7, %f3, %f6;      // ln(S/X)+(r+v^2/2)T
  mul.f32 %f9, %f4, {v};              // v*sqrt(T)
  div.full.f32 %f10, %f8, %f9;        // d1
  sub.f32 %f11, %f10, %f9;            // d2

  // CND(d1) -> f20, CND(d2) -> f21
  abs.f32 %f12, %f10;
  fma.rn.f32 %f13, %f12, 0.2316419, 1.0;
  rcp.approx.f32 %f13, %f13;          // K
  mov.f32 %f14, 1.330274429;
  fma.rn.f32 %f14, %f14, %f13, -1.821255978;
  fma.rn.f32 %f14, %f14, %f13, 1.781477937;
  fma.rn.f32 %f14, %f14, %f13, -0.356563782;
  fma.rn.f32 %f14, %f14, %f13, 0.31938153;
  mul.f32 %f14, %f14, %f13;
  mul.f32 %f15, %f10, %f10;
  mul.f32 %f15, %f15, -0.5;
  mul.f32 %f15, %f15, {_LOG2E};
  ex2.approx.f32 %f15, %f15;
  mul.f32 %f15, %f15, 0.39894228;
  mul.f32 %f20, %f15, %f14;
  sub.f32 %f16, 1.0, %f20;
  setp.gt.f32 %p2, %f10, 0.0;
  selp.f32 %f20, %f16, %f20, %p2;

  abs.f32 %f12, %f11;
  fma.rn.f32 %f13, %f12, 0.2316419, 1.0;
  rcp.approx.f32 %f13, %f13;
  mov.f32 %f14, 1.330274429;
  fma.rn.f32 %f14, %f14, %f13, -1.821255978;
  fma.rn.f32 %f14, %f14, %f13, 1.781477937;
  fma.rn.f32 %f14, %f14, %f13, -0.356563782;
  fma.rn.f32 %f14, %f14, %f13, 0.31938153;
  mul.f32 %f14, %f14, %f13;
  mul.f32 %f15, %f11, %f11;
  mul.f32 %f15, %f15, -0.5;
  mul.f32 %f15, %f15, {_LOG2E};
  ex2.approx.f32 %f15, %f15;
  mul.f32 %f15, %f15, 0.39894228;
  mul.f32 %f21, %f15, %f14;
  sub.f32 %f16, 1.0, %f21;
  setp.gt.f32 %p3, %f11, 0.0;
  selp.f32 %f21, %f16, %f21, %p3;

  // call = S*CND(d1) - X*exp(-rT)*CND(d2)
  mul.f32 %f22, %f3, {-r * _LOG2E};
  ex2.approx.f32 %f22, %f22;          // exp(-rT)
  mul.f32 %f23, %f2, %f22;
  mul.f32 %f24, %f1, %f20;
  mul.f32 %f25, %f23, %f21;
  sub.f32 %f26, %f24, %f25;
  ld.param.u64 %rd8, [call];
  add.u64 %rd9, %rd8, %rd1;
  st.global.f32 [%rd9], %f26;
DONE:
  exit;
}}
"""

    def reference(self, S, X, T):
        S = S.astype(np.float64)
        X = X.astype(np.float64)
        T = T.astype(np.float64)
        r, v = self.RISKFREE, self.VOLATILITY

        def cnd(d):
            K = 1.0 / (1.0 + 0.2316419 * np.abs(d))
            poly = K * (
                0.31938153
                + K
                * (
                    -0.356563782
                    + K
                    * (
                        1.781477937
                        + K * (-1.821255978 + K * 1.330274429)
                    )
                )
            )
            c = 0.39894228 * np.exp(-0.5 * d * d) * poly
            return np.where(d > 0, 1.0 - c, c)

        sqrtT = np.sqrt(T)
        d1 = (np.log(S / X) + (r + 0.5 * v * v) * T) / (v * sqrtT)
        d2 = d1 - v * sqrtT
        return S * cnd(d1) - X * np.exp(-r * T) * cnd(d2)

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(128, int(512 * scale))
        rng = self.rng()
        S = rng.uniform(5.0, 30.0, n).astype(np.float32)
        X = rng.uniform(1.0, 100.0, n).astype(np.float32)
        T = rng.uniform(0.25, 10.0, n).astype(np.float32)
        buffers = [device.upload(a) for a in (S, X, T)]
        call = device.malloc(n * 4)
        block = 128
        result = device.launch(
            "blackScholes",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=buffers + [call, n],
        )
        correct = None
        if check:
            got = call.read(np.float32, n)
            correct = np.allclose(
                got, self.reference(S, X, T), rtol=2e-2, atol=2e-2
            )
        return self._finish([result], correct, check)


@register
class BinomialOptions(Workload):
    """SDK ``binomialOptions``: one option per CTA, backward induction
    over the binomial tree in shared memory with a barrier per step —
    uniform control flow, compute-heavy (Fig. 6 reports 2.25x)."""

    name = "BinomialOptions"
    category = Category.BARRIER_HEAVY
    description = "binomial tree option pricing, one option per CTA"

    STEPS = 24
    RISKFREE = 0.02
    VOLATILITY = 0.30

    def module_source(self) -> str:
        steps = self.STEPS
        dt = 1.0 / steps
        v_sdt = self.VOLATILITY * (dt ** 0.5)
        growth = float(np.exp(self.RISKFREE * dt))
        u = float(np.exp(v_sdt))
        d = float(np.exp(-v_sdt))
        pu = (growth - d) / (u - d)
        pd = 1.0 - pu
        df = float(np.exp(-self.RISKFREE * dt))
        shared = steps + 1
        return f"""
.version 2.3
.target sim
.entry binomialOptions (.param .u64 price, .param .u64 strike,
                        .param .u64 out)
{{
  .reg .u32 %r<16>;
  .reg .u64 %rd<10>;
  .reg .f32 %f<16>;
  .reg .pred %p<6>;
  .shared .f32 vals[{shared}];

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ctaid.x;
  mul.wide.u32 %rd1, %r2, 4;
  ld.param.u64 %rd2, [price];
  add.u64 %rd3, %rd2, %rd1;
  ld.global.f32 %f1, [%rd3];           // S
  ld.param.u64 %rd4, [strike];
  add.u64 %rd5, %rd4, %rd1;
  ld.global.f32 %f2, [%rd5];           // X

  // leaf value for index tid: max(S*u^tid*d^(STEPS-tid) - X, 0)
  setp.gt.u32 %p1, %r1, {steps};
  @%p1 bra SYNC0;
  cvt.rn.f32.u32 %f3, %r1;
  mul.f32 %f4, %f3, {2.0 * v_sdt};
  add.f32 %f4, %f4, {-steps * v_sdt};
  mul.f32 %f4, %f4, {_LOG2E};
  ex2.approx.f32 %f4, %f4;             // u^i d^(S-i)
  mul.f32 %f5, %f1, %f4;
  sub.f32 %f6, %f5, %f2;
  max.f32 %f6, %f6, 0.0;
  mov.u32 %r3, vals;
  shl.b32 %r4, %r1, 2;
  add.u32 %r5, %r3, %r4;
  st.shared.f32 [%r5], %f6;
SYNC0:
  bar.sync 0;

  // backward induction: STEPS rounds. Only tid and the step counter
  // stay live across the barriers; everything else is recomputed
  // (keeps the yield spill/restore footprint small, like the SDK
  // kernel's register-resident layout).
  mov.u32 %r6, {steps};
RLOOP:
  setp.ge.u32 %p2, %r1, %r6;
  @%p2 bra SKIP;
  mov.u32 %r3, vals;
  shl.b32 %r4, %r1, 2;
  add.u32 %r5, %r3, %r4;
  ld.shared.f32 %f7, [%r5];            // v[i]
  ld.shared.f32 %f8, [%r5+4];          // v[i+1]
  mul.f32 %f9, %f8, {pu};
  fma.rn.f32 %f9, %f7, {pd}, %f9;
  mul.f32 %f9, %f9, {df};
SKIP:
  bar.sync 0;
  setp.ge.u32 %p3, %r1, %r6;
  @%p3 bra SKIP2;
  mov.u32 %r3, vals;
  shl.b32 %r4, %r1, 2;
  add.u32 %r5, %r3, %r4;
  st.shared.f32 [%r5], %f9;
SKIP2:
  bar.sync 0;
  sub.u32 %r6, %r6, 1;
  setp.gt.u32 %p4, %r6, 0;
  @%p4 bra RLOOP;

  setp.ne.u32 %p5, %r1, 0;
  @%p5 bra DONE;
  mov.u32 %r3, vals;
  ld.shared.f32 %f10, [%r3];
  mov.u32 %r7, %ctaid.x;
  mul.wide.u32 %rd6, %r7, 4;
  ld.param.u64 %rd7, [out];
  add.u64 %rd8, %rd7, %rd6;
  st.global.f32 [%rd8], %f10;
DONE:
  exit;
}}
"""

    def reference(self, S, X):
        steps = self.STEPS
        dt = 1.0 / steps
        v_sdt = self.VOLATILITY * np.sqrt(dt)
        u = np.exp(v_sdt)
        d = np.exp(-v_sdt)
        growth = np.exp(self.RISKFREE * dt)
        pu = (growth - d) / (u - d)
        pd = 1.0 - pu
        df = np.exp(-self.RISKFREE * dt)
        out = np.zeros(len(S))
        for option in range(len(S)):
            i = np.arange(steps + 1)
            values = np.maximum(
                S[option] * np.exp((2 * i - steps) * v_sdt) - X[option],
                0.0,
            )
            for step in range(steps, 0, -1):
                values = (
                    pu * values[1 : step + 1] + pd * values[:step]
                ) * df
            out[option] = values[0]
        return out

    def execute(self, device, scale: float = 1.0, check: bool = True):
        options = max(4, int(8 * scale))
        rng = self.rng()
        S = rng.uniform(5.0, 30.0, options).astype(np.float32)
        X = rng.uniform(1.0, 100.0, options).astype(np.float32)
        price = device.upload(S)
        strike = device.upload(X)
        out = device.malloc(options * 4)
        block = 32
        result = device.launch(
            "binomialOptions",
            grid=(options, 1, 1),
            block=(block, 1, 1),
            args=[price, strike, out],
        )
        correct = None
        if check:
            got = out.read(np.float32, options)
            correct = np.allclose(
                got, self.reference(S, X), rtol=5e-3, atol=5e-3
            )
        return self._finish([result], correct, check)


@register
class MonteCarlo(Workload):
    """SDK ``MonteCarlo``: per-thread path simulation with an integer
    LCG and exponential path pricing — uniform and compute-bound."""

    name = "MonteCarlo"
    category = Category.COMPUTE_UNIFORM
    description = "LCG-driven Monte Carlo option payoff sums"

    PATHS = 32

    def module_source(self) -> str:
        return f"""
.version 2.3
.target sim
.entry monteCarlo (.param .u64 out, .param .u32 n,
                   .param .f32 price, .param .f32 strike)
{{
  .reg .u32 %r<16>;
  .reg .u64 %rd<6>;
  .reg .f32 %f<16>;
  .reg .pred %p<4>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  ld.param.f32 %f1, [price];
  ld.param.f32 %f2, [strike];
  // seed = gid * 2654435761 + 12345
  mul.lo.u32 %r6, %r4, 2654435761;
  add.u32 %r6, %r6, 12345;
  mov.f32 %f3, 0.0;                    // payoff accumulator
  mov.u32 %r7, 0;
PATH:
  // LCG step
  mul.lo.u32 %r6, %r6, 1664525;
  add.u32 %r6, %r6, 1013904223;
  shr.u32 %r8, %r6, 9;
  cvt.rn.f32.u32 %f4, %r8;
  mul.f32 %f4, %f4, 0.00000011920929;  // [0,1)
  // z in [-1,1), crude shock
  fma.rn.f32 %f5, %f4, 2.0, -1.0;
  // S_T = S * exp(0.2*z - 0.02)
  fma.rn.f32 %f6, %f5, 0.2, -0.02;
  mul.f32 %f6, %f6, {_LOG2E};
  ex2.approx.f32 %f6, %f6;
  mul.f32 %f7, %f1, %f6;
  sub.f32 %f8, %f7, %f2;
  max.f32 %f8, %f8, 0.0;
  add.f32 %f3, %f3, %f8;
  add.u32 %r7, %r7, 1;
  setp.lt.u32 %p2, %r7, {self.PATHS};
  @%p2 bra PATH;
  div.full.f32 %f9, %f3, {float(self.PATHS)};
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [out];
  add.u64 %rd3, %rd2, %rd1;
  st.global.f32 [%rd3], %f9;
DONE:
  exit;
}}
"""

    def reference(self, n: int, price: float, strike: float):
        gid = np.arange(n, dtype=np.uint32)
        seed = gid * np.uint32(2654435761) + np.uint32(12345)
        payoff = np.zeros(n, dtype=np.float32)
        for _ in range(self.PATHS):
            seed = seed * np.uint32(1664525) + np.uint32(1013904223)
            bits = (seed >> np.uint32(9)).astype(np.float32)
            uniform = bits * np.float32(0.00000011920929)
            shock = uniform * np.float32(2.0) + np.float32(-1.0)
            exponent = shock * np.float32(0.2) + np.float32(-0.02)
            terminal = np.float32(price) * np.exp2(
                exponent * np.float32(_LOG2E)
            ).astype(np.float32)
            payoff += np.maximum(
                terminal - np.float32(strike), np.float32(0.0)
            )
        return payoff / np.float32(self.PATHS)

    def execute(self, device, scale: float = 1.0, check: bool = True):
        n = max(128, int(256 * scale))
        price, strike = 25.0, 20.0
        out = device.malloc(n * 4)
        block = 64
        result = device.launch(
            "monteCarlo",
            grid=(grid_for(n, block), 1, 1),
            block=(block, 1, 1),
            args=[out, n, price, strike],
        )
        correct = None
        if check:
            got = out.read(np.float32, n)
            correct = np.allclose(
                got,
                self.reference(n, price, strike),
                rtol=1e-3,
                atol=1e-3,
            )
        return self._finish([result], correct, check)
