"""Suite runner shared by every figure/table reproduction.

Figures 6-10 all consume the same three sweeps of the workload suite
(baseline scalar, dynamic vectorized, static+TIE), so the runner
executes each (workload, config) pair once and caches the result.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..runtime.config import (
    ExecutionConfig,
    baseline_config,
    static_tie_config,
    vectorized_config,
)
from ..workloads.base import Category, Workload, WorkloadRun
from ..workloads.registry import all_workloads

#: Config labels used throughout the harness.
BASELINE = "baseline"
VECTORIZED = "vectorized"
STATIC_TIE = "static-tie"

_CONFIG_FACTORIES = {
    BASELINE: baseline_config,
    VECTORIZED: vectorized_config,
    STATIC_TIE: static_tie_config,
}


def application_workloads() -> List[Workload]:
    """The Figure 6-10 application set: the full suite minus the
    Table 1 microbenchmark."""
    return [w for w in all_workloads() if w.name != "throughput"]


@dataclass
class SuiteRunner:
    """Runs (and memoizes) every workload under the standard configs."""

    scale: float = 1.0
    check: bool = True
    max_warp_size: int = 4
    #: run every config with the control-flow melding pass enabled
    #: (the --meld ablation axis of ``python -m repro.bench``)
    meld: bool = False
    _cache: Dict[tuple, WorkloadRun] = field(default_factory=dict)

    def config(self, label: str) -> ExecutionConfig:
        factory = _CONFIG_FACTORIES[label]
        if label == BASELINE:
            config = factory()
        else:
            config = factory(self.max_warp_size)
        if self.meld:
            config = replace(config, meld=True)
        return config

    def run(self, workload: Workload, label: str) -> WorkloadRun:
        key = (workload.name, label)
        cached = self._cache.get(key)
        if cached is None:
            cached = workload.run_on(
                self.config(label), scale=self.scale, check=self.check
            )
            self._cache[key] = cached
        return cached

    # -- per-metric sweeps -------------------------------------------------

    def speedups(
        self, over: str = BASELINE, config: str = VECTORIZED
    ) -> Dict[str, float]:
        """Per-application cycle speedup of ``config`` over ``over``."""
        result: Dict[str, float] = {}
        for workload in application_workloads():
            base = self.run(workload, over).elapsed_cycles
            test = self.run(workload, config).elapsed_cycles
            result[workload.name] = base / test if test else 0.0
        return result

    def warp_size_fractions(
        self, config: str = VECTORIZED
    ) -> Dict[str, Dict[int, float]]:
        result: Dict[str, Dict[int, float]] = {}
        for workload in application_workloads():
            run = self.run(workload, config)
            result[workload.name] = (
                run.statistics.warp_size_fractions()
            )
        return result

    def average_warp_sizes(
        self, config: str = VECTORIZED
    ) -> Dict[str, float]:
        return {
            workload.name: self.run(
                workload, config
            ).statistics.average_warp_size
            for workload in application_workloads()
        }

    def values_restored(
        self, config: str = VECTORIZED
    ) -> Dict[str, float]:
        return {
            workload.name: self.run(
                workload, config
            ).statistics.average_values_restored
            for workload in application_workloads()
        }

    def host_seconds(
        self, config: str = VECTORIZED
    ) -> Dict[str, float]:
        """Per-application host wall-clock seconds under ``config``
        (the real cost of each run, next to the modeled cycles)."""
        return {
            workload.name: self.run(workload, config).host_seconds
            for workload in application_workloads()
        }

    def cycle_fractions(
        self, config: str = VECTORIZED
    ) -> Dict[str, Dict[str, float]]:
        return {
            workload.name: self.run(
                workload, config
            ).statistics.cycle_fractions()
            for workload in application_workloads()
        }

    def category_of(self, name: str) -> str:
        for workload in all_workloads():
            if workload.name == name:
                return workload.category
        return Category.COMPUTE_UNIFORM

    def cache_statistics(self):
        """Translation-cache activity aggregated over every run this
        harness has executed (None before the first run). With the
        persistent tier enabled, disk hits show up here."""
        merged = None
        for run in self._cache.values():
            cache = run.statistics.cache
            if cache is None:
                continue
            if merged is None:
                merged = cache.snapshot()
            else:
                merged.merge(cache)
        return merged


def average(values) -> float:
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
