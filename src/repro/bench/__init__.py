"""Benchmark harness regenerating every table and figure of §6.

``python -m repro.bench`` prints the full reproduction report.
"""

from .figures import (
    Figure6Result,
    Figure7Result,
    Figure8Result,
    Figure9Result,
    Figure10Result,
    InstructionReductionResult,
    Table1Result,
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_instruction_reduction,
    run_table1,
)
from .harness import (
    BASELINE,
    STATIC_TIE,
    VECTORIZED,
    SuiteRunner,
    application_workloads,
)

__all__ = [
    "BASELINE",
    "Figure6Result",
    "Figure7Result",
    "Figure8Result",
    "Figure9Result",
    "Figure10Result",
    "InstructionReductionResult",
    "STATIC_TIE",
    "SuiteRunner",
    "Table1Result",
    "VECTORIZED",
    "application_workloads",
    "run_figure6",
    "run_figure7",
    "run_figure8",
    "run_figure9",
    "run_figure10",
    "run_instruction_reduction",
    "run_table1",
]
