"""Reproduction drivers: one function per table/figure of §6.

Each returns a plain-data result object that the benchmark tests assert
shape properties on and the reporting module formats as text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ..machine.descriptor import MachineDescription, sandybridge
from ..runtime.config import ExecutionConfig
from ..transforms.uniformity import count_thread_invariant_operands
from ..workloads.registry import all_workloads, get_workload
from . import paper_reference as paper
from .harness import (
    BASELINE,
    STATIC_TIE,
    VECTORIZED,
    SuiteRunner,
    application_workloads,
    average,
)

# ---------------------------------------------------------------------------
# Table 1
# ---------------------------------------------------------------------------


@dataclass
class Table1Result:
    gflops: Dict[int, float]
    peak: float
    paper_gflops: Dict[int, float] = field(
        default_factory=lambda: dict(paper.TABLE1_GFLOPS)
    )
    #: Host wall-clock seconds per configuration (the real cost of the
    #: run, next to the modeled GFLOP/s).
    host_seconds: Dict[int, float] = field(default_factory=dict)

    @property
    def fraction_of_peak(self) -> Dict[int, float]:
        return {
            ws: value / self.peak for ws, value in self.gflops.items()
        }

    @property
    def total_host_seconds(self) -> float:
        return sum(self.host_seconds.values())


def run_table1(
    scale: float = 1.0,
    machine: MachineDescription = None,
    warp_sizes: Tuple[int, ...] = (1, 2, 4, 8),
    backend: str = "interpreter",
) -> Table1Result:
    """Peak FP throughput of the microbenchmark per maximum warp size.

    ``backend`` selects the execution backend; the modeled GFLOP/s are
    backend-invariant, only ``host_seconds`` changes."""
    machine = machine or sandybridge()
    workload = get_workload("throughput")
    gflops: Dict[int, float] = {}
    host_seconds: Dict[int, float] = {}
    for max_ws in warp_sizes:
        sizes = tuple(s for s in (1, 2, 4, 8, 16) if s <= max_ws)
        config = ExecutionConfig(warp_sizes=sizes, backend=backend)
        run = workload.run_on(config, scale=scale, machine=machine)
        gflops[max_ws] = run.statistics.gflops(machine.clock_hz)
        host_seconds[max_ws] = run.host_seconds
    return Table1Result(
        gflops=gflops,
        peak=machine.peak_vector_gflops,
        host_seconds=host_seconds,
    )


# ---------------------------------------------------------------------------
# Figure 6 — speedup over scalar baseline
# ---------------------------------------------------------------------------


@dataclass
class Figure6Result:
    speedups: Dict[str, float]

    @property
    def average(self) -> float:
        return average(self.speedups.values())

    @property
    def slowdown_apps(self) -> List[str]:
        return sorted(
            name
            for name, speed in self.speedups.items()
            if speed < 0.95
        )

    @property
    def best(self) -> Tuple[str, float]:
        name = max(self.speedups, key=self.speedups.get)
        return name, self.speedups[name]


def run_figure6(runner: SuiteRunner) -> Figure6Result:
    return Figure6Result(speedups=runner.speedups())


# ---------------------------------------------------------------------------
# Figure 7 — average warp size distribution
# ---------------------------------------------------------------------------


@dataclass
class Figure7Result:
    fractions: Dict[str, Dict[int, float]]
    averages: Dict[str, float]

    def dominant_warp_size(self, name: str) -> int:
        fractions = self.fractions[name]
        return max(fractions, key=fractions.get)


def run_figure7(runner: SuiteRunner) -> Figure7Result:
    return Figure7Result(
        fractions=runner.warp_size_fractions(),
        averages=runner.average_warp_sizes(),
    )


# ---------------------------------------------------------------------------
# Figure 8 — liveness at entry points
# ---------------------------------------------------------------------------


@dataclass
class Figure8Result:
    restored: Dict[str, float]

    @property
    def average(self) -> float:
        return average(self.restored.values())


def run_figure8(runner: SuiteRunner) -> Figure8Result:
    return Figure8Result(restored=runner.values_restored())


# ---------------------------------------------------------------------------
# Figure 9 — cycle fractions (EM / yield / subkernel)
# ---------------------------------------------------------------------------


@dataclass
class Figure9Result:
    fractions: Dict[str, Dict[str, float]]

    def kernel_fraction(self, name: str) -> float:
        return self.fractions[name]["kernel"]

    def em_fraction(self, name: str) -> float:
        return self.fractions[name]["em"]


def run_figure9(runner: SuiteRunner) -> Figure9Result:
    return Figure9Result(fractions=runner.cycle_fractions())


# ---------------------------------------------------------------------------
# Figure 10 — static warp formation + TIE over dynamic formation
# ---------------------------------------------------------------------------


@dataclass
class Figure10Result:
    #: static+TIE speedup relative to dynamic warp formation
    relative: Dict[str, float]
    #: static+TIE speedup relative to the scalar baseline
    absolute: Dict[str, float]

    @property
    def average_relative(self) -> float:
        return average(self.relative.values())


def run_figure10(runner: SuiteRunner) -> Figure10Result:
    return Figure10Result(
        relative=runner.speedups(over=VECTORIZED, config=STATIC_TIE),
        absolute=runner.speedups(over=BASELINE, config=STATIC_TIE),
    )


# ---------------------------------------------------------------------------
# §6.2 — static instruction reduction from thread-invariant elimination
# ---------------------------------------------------------------------------


@dataclass
class InstructionReductionResult:
    #: per (workload, warp size): 1 - tie_count / dynamic_count
    reductions: Dict[Tuple[str, int], float]
    #: fraction of registers proven thread-invariant per workload
    invariant_fractions: Dict[str, float]

    def average_reduction(self, warp_size: int) -> float:
        return average(
            value
            for (name, ws), value in self.reductions.items()
            if ws == warp_size
        )

    @property
    def average_invariant_fraction(self) -> float:
        return average(self.invariant_fractions.values())


def run_instruction_reduction(
    warp_sizes: Tuple[int, ...] = (2, 4)
) -> InstructionReductionResult:
    """Compare static instruction counts of specializations compiled
    with and without TIE (the §6.2 measurement)."""
    from ..api.device import Device
    from ..runtime.config import static_tie_config, vectorized_config

    reductions: Dict[Tuple[str, int], float] = {}
    invariant_fractions: Dict[str, float] = {}
    for workload in application_workloads():
        plain_device = Device(config=vectorized_config(max(warp_sizes)))
        tie_device = Device(config=static_tie_config(max(warp_sizes)))
        workload.prepare(plain_device)
        workload.prepare(tie_device)
        kernel_names = [
            kernel
            for module in plain_device.modules
            for kernel in module.kernels
        ]
        for kernel_name in kernel_names:
            scalar = plain_device.cache.scalar_ir(kernel_name)
            uniform, total = count_thread_invariant_operands(scalar)
            invariant_fractions[workload.name] = (
                uniform / total if total else 0.0
            )
            for warp_size in warp_sizes:
                plain = plain_device.cache.instruction_count(
                    kernel_name, warp_size
                )
                tie = tie_device.cache.instruction_count(
                    kernel_name, warp_size
                )
                reductions[(f"{workload.name}:{kernel_name}", warp_size)] = (
                    1.0 - tie / plain if plain else 0.0
                )
    return InstructionReductionResult(
        reductions=reductions, invariant_fractions=invariant_fractions
    )


# ---------------------------------------------------------------------------
# Control-flow melding ablation
# ---------------------------------------------------------------------------


@dataclass
class MeldAblationRow:
    """One divergent workload run with melding off and on."""

    workload: str
    cycles_off: int
    cycles_on: int
    divergent_yields_off: int
    divergent_yields_on: int
    melded_regions: int
    meld_rejections: int
    predicted_saving: float
    #: both runs passed the workload's reference check
    check_ok: bool

    @property
    def speedup(self) -> float:
        if self.cycles_on == 0:
            return 0.0
        return self.cycles_off / self.cycles_on

    @property
    def improved(self) -> bool:
        return (
            self.melded_regions > 0
            and self.cycles_on < self.cycles_off
            and self.check_ok
        )


@dataclass
class MeldAblationResult:
    rows: List[MeldAblationRow]
    #: "workload:kernel:block" of any decision the pass *melded*
    #: although the model predicted a loss (must stay empty: melding
    #: may never fire where the profitability model predicts a loss)
    mispredicted: List[str] = field(default_factory=list)

    @property
    def improved_count(self) -> int:
        return sum(1 for row in self.rows if row.improved)


def run_meld_ablation(
    scale: float = 1.0, max_warp_size: int = 4
) -> MeldAblationResult:
    """The --meld ablation axis: every divergent workload with the
    melding pass off vs on, plus an audit of every meld decision."""
    from dataclasses import replace

    from ..api.device import Device
    from ..runtime.config import vectorized_config
    from ..workloads.base import Category

    off_config = vectorized_config(max_warp_size)
    on_config = replace(off_config, meld=True)
    rows: List[MeldAblationRow] = []
    mispredicted: List[str] = []
    divergent = [
        workload
        for workload in all_workloads()
        if workload.category == Category.DIVERGENT
    ]
    for workload in divergent:
        off = workload.run_on(off_config, scale=scale, check=True)
        on = workload.run_on(on_config, scale=scale, check=True)
        rows.append(
            MeldAblationRow(
                workload=workload.name,
                cycles_off=off.elapsed_cycles,
                cycles_on=on.elapsed_cycles,
                divergent_yields_off=off.statistics.divergent_yields,
                divergent_yields_on=on.statistics.divergent_yields,
                melded_regions=on.statistics.melded_regions,
                meld_rejections=on.statistics.meld_rejections,
                predicted_saving=on.statistics.meld_predicted_saving,
                check_ok=bool(off.correct) and bool(on.correct),
            )
        )
        # Audit the per-kernel decisions: a melded region whose own
        # estimate predicts a loss is a profitability-model violation.
        device = Device(config=on_config)
        workload.prepare(device)
        for module in device.modules:
            for kernel_name in module.kernels:
                device.cache.scalar_ir(kernel_name)
                report = device.cache.meld_report(kernel_name)
                if report is None:
                    continue
                for decision in report.decisions:
                    if decision.melded and (
                        decision.est_melded_cycles
                        >= decision.est_divergent_cycles
                    ):
                        mispredicted.append(
                            f"{workload.name}:{kernel_name}:"
                            f"{decision.branch_block}"
                        )
    return MeldAblationResult(rows=rows, mispredicted=mispredicted)
