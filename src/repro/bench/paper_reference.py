"""Published numbers from the paper's evaluation (§6), used by the
benchmark harness to check that the reproduced *shape* holds and by
EXPERIMENTS.md generation to report paper-vs-measured."""

#: Table 1 — peak single-precision throughput on the i7-2600
#: (GFLOP/s) per warp size; machine peak estimated at 108 GFLOP/s.
TABLE1_GFLOPS = {1: 25.0, 2: 47.9, 4: 97.1, 8: 37.0}
TABLE1_PEAK = 108.0

#: Figure 6 — speedups of vectorized execution (max ws = 4) over the
#: scalar baseline. The paper's prose pins these values; the rest of
#: the figure is read qualitatively.
FIGURE6_AVERAGE = 1.45
FIGURE6_KNOWN = {
    "BinomialOptions": 2.25,
    "cp": 3.9,
    "BoxFilter": 1.0,
    "ScalarProd": 1.0,
    "SobolQRNG": 1.0,
}
#: Applications the paper reports as *slower* with dynamic warp
#: formation (irregular control flow).
FIGURE6_SLOWDOWNS = ("MersenneTwister", "mri-q", "mri-fhd")

#: Figure 7 — "most kernel entries ... have warp size of 4 for every
#: application except SimpleVoteIntrinsics which is only ever able to
#: form warps of 2 threads at most".
FIGURE7_VOTE_MAX_WARP = 2

#: Figure 8 — average values restored per thread at entry points.
FIGURE8_AVERAGE_RESTORED = 4.54

#: Figure 10 — static warp formation + thread-invariant elimination
#: over dynamic warp formation.
FIGURE10_AVERAGE_GAIN = 1.113
FIGURE10_MT_RELATIVE = 6.4  # MersenneTwister's relative recovery
#: §6.2 — static instruction count reduction from TIE.
TIE_INSTRUCTION_REDUCTION = {2: 0.095, 4: 0.115}
#: Collange et al. report ~15% thread-invariant result operands.
THREAD_INVARIANT_OPERAND_FRACTION = 0.15
