"""Concurrent-clients serving bench (``python -m repro.bench --serve``).

Measures the :class:`~repro.runtime.pool.DevicePool` against a single
synchronous :class:`~repro.api.device.Device` at equal total work:
``clients`` tenants each submit ``launches`` mixed launches (the
Table-1 ``throughput`` microbenchmark interleaved with a vecAdd) with
a small pipelining window, sharded across ``workers`` worker
processes. The baseline runs the identical launch list on one warmed
Device, one launch at a time.

A *chaos* tenant rides along: pinned to worker 0 with a private
kernel and an armed ``memory_fault`` injection site, every one of its
launches traps — the bench asserts the healthy tenants' results stay
numerically correct and none of their launches fail, i.e. a trapping
tenant never blocks or corrupts the others.

Results are written as JSON (``BENCH_serve.json``) so the serving
trajectory is measurable across commits. ``--assert-speedup X`` turns
the pool-vs-baseline throughput ratio into a hard failure bound (used
by the CI ``serve`` job on multi-core runners; meaningless on a
single-core host)."""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import threading
import time
from typing import List, Optional

import numpy as np

from ..api.device import Device
from ..runtime.pool import DevicePool
from ..workloads.registry import get_workload

_VECADD_PTX = r"""
.version 2.3
.target sim

.entry serveVecAdd (.param .u64 a, .param .u64 b, .param .u64 c,
                    .param .u32 n)
{
  .reg .u32 %r<6>;
  .reg .u64 %rd<8>;
  .reg .f32 %f<4>;
  .reg .pred %p<2>;

  mov.u32 %r1, %tid.x;
  mov.u32 %r2, %ntid.x;
  mov.u32 %r3, %ctaid.x;
  mad.lo.u32 %r4, %r3, %r2, %r1;
  ld.param.u32 %r5, [n];
  setp.ge.u32 %p1, %r4, %r5;
  @%p1 bra DONE;
  mul.wide.u32 %rd1, %r4, 4;
  ld.param.u64 %rd2, [a];
  ld.param.u64 %rd3, [b];
  ld.param.u64 %rd4, [c];
  add.u64 %rd5, %rd2, %rd1;
  add.u64 %rd6, %rd3, %rd1;
  add.u64 %rd7, %rd4, %rd1;
  ld.global.f32 %f1, [%rd5];
  ld.global.f32 %f2, [%rd6];
  add.f32 %f3, %f1, %f2;
  st.global.f32 [%rd7], %f3;
DONE:
  exit;
}
"""

#: Private module of the chaos tenant — registered *after* the pool
#: warms so its translation happens with the fault site armed.
_CHAOS_PTX = _VECADD_PTX.replace("serveVecAdd", "chaosVecAdd")

#: The process-chaos victim's kernel: no pointer arguments, so its
#: queued launches survive a worker respawn (nothing to go stale) and
#: the RetryPolicy can re-dispatch them transparently.
_NOOP_PTX = r"""
.version 2.3
.target sim

.entry serveNoop (.param .u32 n)
{
  .reg .u32 %r<2>;
  ld.param.u32 %r1, [n];
  exit;
}
"""

_VEC_N = 256
_VEC_BLOCK = 32
_VEC_GRID = _VEC_N // _VEC_BLOCK
_THROUGHPUT_THREADS = 64


def _launch_plan(launches: int, iters: int) -> List[dict]:
    """The per-tenant launch list: throughput/vecAdd interleaved."""
    plan = []
    for index in range(launches):
        if index % 2 == 0:
            plan.append({
                "kernel": "throughput",
                "grid": (1, 1, 1),
                "block": (_THROUGHPUT_THREADS, 1, 1),
                "iters": iters,
            })
        else:
            plan.append({
                "kernel": "serveVecAdd",
                "grid": (_VEC_GRID, 1, 1),
                "block": (_VEC_BLOCK, 1, 1),
            })
    return plan


def _run_baseline(modules: List[str], plan: List[dict], tenants: int):
    """Equal total work on one warmed synchronous Device."""
    device = Device()
    for source in modules:
        device.register_module(source)
    device.warm()
    out = device.malloc(4 * _THROUGHPUT_THREADS)
    a = device.upload(np.arange(_VEC_N, dtype=np.float32))
    b = device.upload(np.arange(_VEC_N, dtype=np.float32) * 2)
    c = device.malloc(4 * _VEC_N)
    start = time.perf_counter()
    for _ in range(tenants):
        for item in plan:
            if item["kernel"] == "throughput":
                device.launch(
                    "throughput", item["grid"], item["block"],
                    [out, item["iters"]],
                )
            else:
                device.launch(
                    "serveVecAdd", item["grid"], item["block"],
                    [a, b, c, _VEC_N],
                )
    return time.perf_counter() - start


class _TenantResult:
    def __init__(self):
        self.latencies: List[float] = []
        self.failures: List[str] = []
        self.output: Optional[np.ndarray] = None


def _setup_tenant(session) -> dict:
    """Allocate one tenant's buffers (untimed, like the baseline's)."""
    return {
        "a": session.upload(np.arange(_VEC_N, dtype=np.float32)),
        "b": session.upload(np.arange(_VEC_N, dtype=np.float32) * 2),
        "c": session.malloc(4 * _VEC_N),
        "out": session.malloc(4 * _THROUGHPUT_THREADS),
    }


def _run_tenant(session, buffers, plan, window, result: "_TenantResult"):
    """One healthy client: pipelined submit/collect over its plan,
    then a numeric check of its private vecAdd output."""
    inflight = []
    for item in plan:
        if item["kernel"] == "throughput":
            args = [buffers["out"], item["iters"]]
        else:
            args = [buffers["a"], buffers["b"], buffers["c"], _VEC_N]
        submitted = time.perf_counter()
        try:
            future = session.launch_async(
                item["kernel"], item["grid"], item["block"], args
            )
        except Exception as error:
            result.failures.append(f"submit: {error}")
            continue
        inflight.append((submitted, future))
        while len(inflight) >= window:
            result.latencies.append(_collect(inflight.pop(0), result))
    while inflight:
        result.latencies.append(_collect(inflight.pop(0), result))
    result.output = session.read(buffers["c"], np.float32, _VEC_N)


def _collect(entry, result: "_TenantResult") -> float:
    submitted, future = entry
    error = future.exception(timeout=300.0)
    if error is not None:
        result.failures.append(f"{future.kernel_name}: {error}")
    return time.perf_counter() - submitted


def _setup_chaos(pool):
    """The trapping tenant: private module translated after arming
    memory_fault, so every one of its launches traps."""
    session = pool.session("chaos", weight=1.0, worker=0)
    session.register_module(_CHAOS_PTX)
    session.inject_fault("memory_fault", probability=1.0, seed=7)
    data = session.upload(np.ones(_VEC_N, dtype=np.float32))
    sink = session.malloc(4 * _VEC_N)
    return session, data, sink


def _run_chaos(session, data, sink, traps: List[str], launches: int):
    """Submit the chaos plan, resetting the tenant's sticky fault
    between launches so it keeps submitting."""
    for _ in range(launches):
        try:
            future = session.launch_async(
                "chaosVecAdd", (_VEC_GRID, 1, 1), (_VEC_BLOCK, 1, 1),
                [data, data, sink, _VEC_N],
            )
        except Exception as error:
            traps.append(f"submit-rejected: {type(error).__name__}")
            try:
                session.reset()
            except Exception:
                pass
            continue
        error = future.exception(timeout=300.0)
        if error is not None:
            traps.append(type(error).__name__)
            try:
                session.reset()
            except Exception:
                # Worker lost mid-reset (process-chaos runs): the
                # respawned worker needs no reset anyway.
                pass
        else:
            traps.append("UNEXPECTED-SUCCESS")
    try:
        session.disarm_faults()
    except Exception:
        pass


def _run_victim(pool, session, injector, launches: int, outcome: dict):
    """The process-chaos victim: submits ``launches`` no-pointer noop
    launches to worker 0, whose first dispatched noop kills the worker
    process. The delivered casualty must resolve to DeviceLost; the
    queued rest are re-dispatched by the session's RetryPolicy onto
    the respawned worker. Measures the recovery interval: kill fired
    -> worker 0 alive again at a bumped epoch with its breaker
    closed."""
    futures = []
    for _ in range(launches):
        try:
            futures.append(
                session.launch_async("serveNoop", 1, 8, [1])
            )
        except Exception as error:
            outcome["outcomes"].append(type(error).__name__)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if injector.fired.get("kill_worker"):
            break
        time.sleep(0.005)
    killed_at = time.perf_counter()
    # One-shot chaos: disarm so the respawned worker survives the
    # retried launches.
    injector.restore()
    for future in futures:
        error = future.exception(timeout=300.0)
        outcome["outcomes"].append(
            "ok" if error is None else type(error).__name__
        )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        health = pool.health()[0]
        if health.alive and health.epoch >= 1 and health.state == "closed":
            outcome["recovery_seconds"] = time.perf_counter() - killed_at
            break
        time.sleep(0.01)


def _run_victim_durable(
    pool, session, buffers, injector, launches: int, outcome: dict
):
    """The durable victim: submits ``launches`` pointer-carrying
    vecAdd launches to worker 0, whose first dispatched one kills the
    worker process. Unlike the no-pointer ``_run_victim``, this
    tenant's guest state matters — after the kill, the pool must
    restore it (checkpoint + journal replay) onto the respawned
    worker so every launch still completes and the pre-kill buffers
    read back bit-identical through the original handles. No
    ``DeviceLost`` may surface."""
    futures = []
    for _ in range(launches):
        try:
            futures.append(
                session.launch_async(
                    "serveVecAdd", (_VEC_GRID, 1, 1),
                    (_VEC_BLOCK, 1, 1),
                    [buffers["a"], buffers["b"], buffers["c"], _VEC_N],
                )
            )
        except Exception as error:
            outcome["outcomes"].append(type(error).__name__)
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        if injector.fired.get("kill_worker"):
            break
        time.sleep(0.005)
    killed_at = time.perf_counter()
    injector.restore()
    restored = 0
    for future in futures:
        error = future.exception(timeout=300.0)
        if error is None:
            result = future.result()
            outcome["outcomes"].append("ok")
            restored += int(bool(getattr(result, "restored", False)))
        else:
            outcome["outcomes"].append(type(error).__name__)
    outcome["restored_launches"] = restored
    # The acceptance check: the buffers uploaded *before* the kill,
    # read back through the handles issued *before* the kill.
    a = session.read(buffers["a"], np.float32, _VEC_N)
    b = session.read(buffers["b"], np.float32, _VEC_N)
    c = session.read(buffers["c"], np.float32, _VEC_N)
    outcome["bit_identical"] = bool(
        np.array_equal(a, np.arange(_VEC_N, dtype=np.float32))
        and np.array_equal(b, np.arange(_VEC_N, dtype=np.float32) * 2)
        and np.array_equal(c, a + b)
    )
    deadline = time.monotonic() + 60.0
    while time.monotonic() < deadline:
        health = pool.health()[0]
        if health.alive and health.epoch >= 1 and health.state == "closed":
            outcome["recovery_seconds"] = time.perf_counter() - killed_at
            break
        time.sleep(0.01)


def run_serve_bench(
    clients: int = 4,
    workers: int = 2,
    launches: int = 8,
    scale: float = 1.0,
    window: int = 4,
    chaos: bool = True,
    process_chaos: bool = False,
    recovery_slo: float = 15.0,
    assert_recovery: bool = False,
    assert_speedup: Optional[float] = None,
    output: Optional[str] = None,
    durability: str = "none",
    state_dir: Optional[str] = None,
) -> dict:
    """Run the serving bench; returns (and optionally writes) the
    result record. Raises AssertionError on isolation violations, on a
    missed ``assert_speedup`` bound, and — with ``process_chaos`` +
    ``assert_recovery`` — on a missed availability/recovery SLO.

    The process-chaos axis (``process_chaos=True``) kills worker 0
    mid-run via the seeded ``kill_worker`` injection site: healthy
    tenants are pinned to the other workers and their results must
    stay bit-identical to a no-chaos run; every victim launch must
    resolve to ``DeviceLost`` or transparently succeed via its
    RetryPolicy; and the supervisor must respawn the worker within
    ``recovery_slo`` seconds.

    The durability axis (``durability="journal"|"checkpoint"`` with
    ``process_chaos``) swaps the no-pointer victim for a durable
    session with live vecAdd buffers: after the kill, *no* launch may
    surface ``DeviceLost`` (the pool restores the tenant's state and
    re-dispatches the casualties) and the pre-kill buffers must read
    back bit-identical through the original handles."""
    if process_chaos and workers < 2:
        raise ValueError(
            "process_chaos needs workers >= 2 (worker 0 is the "
            "casualty; healthy tenants are pinned to the others)"
        )
    if durability not in ("none", "journal", "checkpoint"):
        raise ValueError(f"unknown durability mode {durability!r}")
    durable = process_chaos and durability != "none"
    iters = max(1, int(2 * scale))
    throughput_src = get_workload("throughput").module_source()
    modules = [throughput_src, _VECADD_PTX]
    if process_chaos:
        modules.append(_NOOP_PTX)
    plan = _launch_plan(launches, iters)

    baseline_seconds = _run_baseline(modules, plan, clients)

    scratch_state_dir = None
    if durability == "checkpoint" and state_dir is None:
        scratch_state_dir = tempfile.mkdtemp(prefix="repro-state-")
        state_dir = scratch_state_dir
    pool = DevicePool(
        workers=workers, modules=modules, warm=True,
        state_dir=state_dir,
    )
    try:
        pool.ready(timeout=300.0)
        sessions = [
            pool.session(
                f"client-{index}",
                weight=1.0 + (index % 2),
                # Keep healthy tenants off the casualty worker: their
                # results must be untouched by the kill.
                worker=(
                    1 + index % (workers - 1) if process_chaos else None
                ),
            )
            for index in range(clients)
        ]
        buffers = [_setup_tenant(session) for session in sessions]
        results = [_TenantResult() for _ in sessions]
        threads = [
            threading.Thread(
                target=_run_tenant,
                args=(session, tenant_buffers, plan, window, result),
                name=f"bench-{session.tenant}",
            )
            for session, tenant_buffers, result in zip(
                sessions, buffers, results
            )
        ]
        traps: List[str] = []
        chaos_thread = None
        if chaos:
            chaos_session, chaos_data, chaos_sink = _setup_chaos(pool)
            chaos_thread = threading.Thread(
                target=_run_chaos,
                args=(
                    chaos_session, chaos_data, chaos_sink,
                    traps, max(2, launches // 2),
                ),
                name="bench-chaos",
            )
        victim_thread = None
        victim_outcome: dict = {
            "outcomes": [],
            "recovery_seconds": None,
            "restored_launches": 0,
            "bit_identical": None,
        }
        if process_chaos:
            from ..runtime.pool import RetryPolicy
            from ..testing.fault_injection import FaultInjector, fault_seed

            injector = FaultInjector(pool, seed=fault_seed())
            if durable:
                victim = pool.session(
                    "victim",
                    worker=0,
                    durability=durability,
                    checkpoint_interval=2,
                )
                # Pre-kill state the restore must reproduce: the
                # buffers go in (and, in checkpoint mode, a snapshot
                # lands on disk) before the kill site is armed.
                victim_buffers = _setup_tenant(victim)
                if durability == "checkpoint":
                    victim.checkpoint()
                injector.arm(
                    "kill_worker", probability=1.0, worker=0,
                    op="launch", kernel="serveVecAdd",
                )
                victim_thread = threading.Thread(
                    target=_run_victim_durable,
                    args=(
                        pool, victim, victim_buffers, injector,
                        max(4, launches // 2), victim_outcome,
                    ),
                    name="bench-victim",
                )
            else:
                victim = pool.session(
                    "victim",
                    worker=0,
                    retry=RetryPolicy(max_attempts=4, base_delay=0.05),
                )
                injector.arm(
                    "kill_worker", probability=1.0, worker=0,
                    op="launch", kernel="serveNoop",
                )
                victim_thread = threading.Thread(
                    target=_run_victim,
                    args=(
                        pool, victim, injector,
                        max(4, launches // 2), victim_outcome,
                    ),
                    name="bench-victim",
                )
        start = time.perf_counter()
        for thread in threads:
            thread.start()
        if chaos_thread is not None:
            chaos_thread.start()
        if victim_thread is not None:
            victim_thread.start()
        for thread in threads:
            thread.join()
        pool_seconds = time.perf_counter() - start
        if chaos_thread is not None:
            chaos_thread.join()
        if victim_thread is not None:
            victim_thread.join()

        expected = np.arange(_VEC_N, dtype=np.float32) * 3
        for session, result in zip(sessions, results):
            assert not result.failures, (
                f"tenant {session.tenant} had launch failures: "
                f"{result.failures[:3]}"
            )
            exact = np.array_equal(result.output, expected) if (
                result.output is not None
            ) else False
            assert exact if process_chaos else (
                result.output is not None
                and np.allclose(result.output, expected)
            ), f"tenant {session.tenant} output corrupted by chaos tenant"
        if chaos:
            assert traps and all(
                entry != "UNEXPECTED-SUCCESS" for entry in traps
            ), f"chaos tenant did not trap as armed: {traps}"
        if process_chaos:
            outcomes = victim_outcome["outcomes"]
            if durable:
                # Durability contract: the kill is invisible to the
                # victim — every launch completes (restore +
                # re-dispatch), nothing resolves to DeviceLost, and
                # its pre-kill state survived bit-identically.
                assert outcomes and all(
                    entry == "ok" for entry in outcomes
                ), (
                    f"durable victim launches must all succeed "
                    f"(restore re-dispatches casualties), got "
                    f"{outcomes}"
                )
                assert victim_outcome["bit_identical"], (
                    "durable victim's pre-kill buffers did not read "
                    "back bit-identical through the original handles"
                )
                assert victim.stats.restores >= 1, (
                    f"victim session was never restored: "
                    f"{victim.stats}"
                )
            else:
                assert outcomes and all(
                    entry in ("ok", "DeviceLost") for entry in outcomes
                ), (
                    f"victim launches must resolve to DeviceLost or "
                    f"succeed via retry, got {outcomes}"
                )
                assert "DeviceLost" in outcomes, (
                    "the delivered casualty launch should have "
                    f"resolved to DeviceLost, got {outcomes}"
                )
            health = pool.health()[0]
            assert health.alive and health.respawns >= 1, (
                f"worker 0 was not respawned: {health.describe()}"
            )
            recovery = victim_outcome["recovery_seconds"]
            if assert_recovery:
                assert recovery is not None, (
                    "worker 0 never recovered (no alive/closed health "
                    "within the polling window)"
                )
                assert recovery <= recovery_slo, (
                    f"recovery took {recovery:.2f}s, above the "
                    f"{recovery_slo:.2f}s SLO"
                )
                if durable:
                    assert (
                        victim.stats.restore_seconds <= recovery_slo
                    ), (
                        f"state restore took "
                        f"{victim.stats.restore_seconds:.2f}s, above "
                        f"the {recovery_slo:.2f}s SLO"
                    )

        latencies = sorted(
            value
            for result in results
            for value in result.latencies
        )
        total_launches = clients * launches
        record = {
            "experiment": "serve",
            "clients": clients,
            "workers": workers,
            "launches_per_client": launches,
            "scale": scale,
            "cpu_count": os.cpu_count(),
            "baseline_seconds": round(baseline_seconds, 4),
            "pool_seconds": round(pool_seconds, 4),
            "speedup": round(baseline_seconds / pool_seconds, 3),
            "throughput_launches_per_s": round(
                total_launches / pool_seconds, 2
            ),
            "latency_p50_s": round(float(np.percentile(latencies, 50)), 4),
            "latency_p95_s": round(float(np.percentile(latencies, 95)), 4),
            "chaos": {
                "enabled": chaos,
                "trapped_launches": len(traps),
                "outcomes": sorted(set(traps)),
            },
            "process_chaos": {
                "enabled": process_chaos,
                "outcomes": sorted(set(victim_outcome["outcomes"])),
                "device_lost": victim_outcome["outcomes"].count(
                    "DeviceLost"
                ),
                "succeeded": victim_outcome["outcomes"].count("ok"),
                "retries": (
                    victim.stats.retries if process_chaos else 0
                ),
                "recovery_seconds": (
                    None
                    if victim_outcome["recovery_seconds"] is None
                    else round(victim_outcome["recovery_seconds"], 3)
                ),
                "recovery_slo_seconds": recovery_slo,
                "worker_health": [
                    health.describe() for health in pool.health()
                ],
            },
            "durability": {
                "mode": durability,
                "enabled": durable,
                "restores": (
                    victim.stats.restores if durable else 0
                ),
                "restore_seconds": (
                    round(victim.stats.restore_seconds, 3)
                    if durable else 0.0
                ),
                "replayed_ops": (
                    victim.stats.replayed_ops if durable else 0
                ),
                "restored_launches": victim_outcome[
                    "restored_launches"
                ],
                "checkpoints": (
                    victim.stats.checkpoints if durable else 0
                ),
                "bit_identical": victim_outcome["bit_identical"],
            },
            "tenants": {
                session.tenant: {
                    "worker": session.worker_index,
                    "completed": session.stats.completed,
                    "failed": session.stats.failed,
                    "instructions": session.stats.statistics.instructions,
                }
                for session in pool.sessions()
            },
            "report": pool.report(),
        }
    finally:
        pool.shutdown()
        if scratch_state_dir is not None:
            shutil.rmtree(scratch_state_dir, ignore_errors=True)

    if output:
        with open(output, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2)
            handle.write("\n")

    if assert_speedup is not None:
        assert record["speedup"] >= assert_speedup, (
            f"pool speedup {record['speedup']}x below required "
            f"{assert_speedup}x (baseline {baseline_seconds:.2f}s, "
            f"pool {pool_seconds:.2f}s, {os.cpu_count()} cpus)"
        )
    return record


def format_serve(record: dict) -> str:
    lines = [
        "== serving bench: DevicePool vs single synchronous Device ==",
        f"clients={record['clients']} workers={record['workers']} "
        f"launches/client={record['launches_per_client']} "
        f"(host cpus={record['cpu_count']})",
        f"baseline (1 device, serial): {record['baseline_seconds']:.2f}s",
        f"pool ({record['workers']} workers): "
        f"{record['pool_seconds']:.2f}s  -> speedup "
        f"{record['speedup']:.2f}x, "
        f"{record['throughput_launches_per_s']:.1f} launches/s",
        f"latency p50={record['latency_p50_s'] * 1e3:.0f}ms "
        f"p95={record['latency_p95_s'] * 1e3:.0f}ms",
        f"chaos tenant: {record['chaos']['trapped_launches']} trapped "
        f"launches, outcomes={record['chaos']['outcomes']} "
        f"(healthy tenants unaffected)",
    ]
    process = record.get("process_chaos", {})
    if process.get("enabled"):
        recovery = process.get("recovery_seconds")
        rendered = "never" if recovery is None else f"{recovery:.2f}s"
        lines.append(
            f"process chaos: worker 0 killed mid-run; "
            f"{process['device_lost']} DeviceLost, "
            f"{process['succeeded']} succeeded "
            f"({process['retries']} retried), recovery {rendered} "
            f"(SLO {process['recovery_slo_seconds']:.0f}s)"
        )
    durable = record.get("durability", {})
    if durable.get("enabled"):
        identical = (
            "bit-identical" if durable.get("bit_identical")
            else "MISMATCH"
        )
        lines.append(
            f"durability ({durable['mode']}): "
            f"{durable['restores']} restore(s) in "
            f"{durable['restore_seconds']:.3f}s, "
            f"{durable['replayed_ops']} ops replayed, "
            f"{durable['restored_launches']} launches re-dispatched, "
            f"{durable['checkpoints']} checkpoint(s); pre-kill "
            f"buffers {identical} through original handles"
        )
    lines.extend(["", record["report"]])
    return "\n".join(lines)
