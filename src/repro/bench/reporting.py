"""Text rendering of reproduction results (the rows/series the paper
reports), used by the benchmark suite and ``python -m repro.bench``."""

from __future__ import annotations

from typing import Iterable, Optional

from ..runtime.translation_cache import CacheStatistics
from ..sanitizer.reports import format_sanitizer_report
from . import paper_reference as paper
from .figures import (
    Figure6Result,
    Figure7Result,
    Figure8Result,
    Figure9Result,
    Figure10Result,
    InstructionReductionResult,
    MeldAblationResult,
    Table1Result,
)


def _rule(width: int = 72) -> str:
    return "-" * width


def format_table1(result: Table1Result) -> str:
    lines = [
        "Table 1: Peak floating-point throughput (GFLOP/s)",
        _rule(),
        f"{'Warp size':<12}" + "".join(
            f"{ws:>10}" for ws in sorted(result.gflops)
        ),
        f"{'measured':<12}" + "".join(
            f"{result.gflops[ws]:>10.1f}" for ws in sorted(result.gflops)
        ),
        f"{'paper':<12}" + "".join(
            f"{result.paper_gflops.get(ws, float('nan')):>10.1f}"
            for ws in sorted(result.gflops)
        ),
    ]
    if result.host_seconds:
        lines.append(
            f"{'host secs':<12}" + "".join(
                f"{result.host_seconds.get(ws, 0.0):>10.2f}"
                for ws in sorted(result.gflops)
            )
        )
    lines.append(
        f"machine peak: {result.peak:.1f} GFLOP/s "
        f"(paper estimate: {paper.TABLE1_PEAK:.1f})"
    )
    return "\n".join(lines)


def format_figure6(result: Figure6Result) -> str:
    lines = [
        "Figure 6: Speedup of vectorized execution over scalar baseline",
        _rule(),
    ]
    for name in sorted(result.speedups):
        marker = ""
        if name in paper.FIGURE6_KNOWN:
            marker = f"   (paper: {paper.FIGURE6_KNOWN[name]:.2f}x)"
        elif name in paper.FIGURE6_SLOWDOWNS:
            marker = "   (paper: slowdown)"
        lines.append(
            f"  {name:<26} {result.speedups[name]:>6.2f}x{marker}"
        )
    lines.append(
        f"  {'AVERAGE':<26} {result.average:>6.2f}x"
        f"   (paper: {paper.FIGURE6_AVERAGE:.2f}x)"
    )
    return "\n".join(lines)


def format_figure7(result: Figure7Result) -> str:
    lines = [
        "Figure 7: Average warp size (fraction of entries per size)",
        _rule(),
    ]
    for name in sorted(result.fractions):
        fractions = result.fractions[name]
        cells = " ".join(
            f"ws{size}:{fraction:5.1%}"
            for size, fraction in sorted(fractions.items())
        )
        lines.append(
            f"  {name:<26} avg={result.averages[name]:4.2f}  {cells}"
        )
    return "\n".join(lines)


def format_figure8(result: Figure8Result) -> str:
    lines = [
        "Figure 8: Average values restored per thread at entry points",
        _rule(),
    ]
    for name in sorted(result.restored):
        lines.append(f"  {name:<26} {result.restored[name]:>6.2f}")
    lines.append(
        f"  {'AVERAGE':<26} {result.average:>6.2f}"
        f"   (paper: {paper.FIGURE8_AVERAGE_RESTORED:.2f})"
    )
    return "\n".join(lines)


def format_figure9(result: Figure9Result) -> str:
    lines = [
        "Figure 9: Fraction of cycles in EM / yields / subkernel",
        _rule(),
    ]
    for name in sorted(result.fractions):
        fractions = result.fractions[name]
        lines.append(
            f"  {name:<26} em={fractions['em']:6.1%} "
            f"yield={fractions['yield']:6.1%} "
            f"kernel={fractions['kernel']:6.1%}"
        )
    return "\n".join(lines)


def format_figure10(result: Figure10Result) -> str:
    lines = [
        "Figure 10: Static warp formation + thread-invariant "
        "elimination over dynamic warp formation",
        _rule(),
    ]
    for name in sorted(result.relative):
        lines.append(
            f"  {name:<26} {result.relative[name]:>6.2f}x relative "
            f"({result.absolute[name]:>5.2f}x over scalar)"
        )
    lines.append(
        f"  {'AVERAGE':<26} {result.average_relative:>6.2f}x"
        f"   (paper: {paper.FIGURE10_AVERAGE_GAIN:.3f}x)"
    )
    return "\n".join(lines)


def format_instruction_reduction(
    result: InstructionReductionResult,
) -> str:
    lines = [
        "§6.2: Static instruction reduction from thread-invariant "
        "elimination",
        _rule(),
    ]
    for warp_size in (2, 4):
        measured = result.average_reduction(warp_size)
        expected = paper.TIE_INSTRUCTION_REDUCTION[warp_size]
        lines.append(
            f"  warp size {warp_size}: {measured:6.1%} fewer "
            f"instructions (paper: {expected:.1%})"
        )
    lines.append(
        f"  thread-invariant register fraction: "
        f"{result.average_invariant_fraction:6.1%} "
        f"(Collange et al.: ~{paper.THREAD_INVARIANT_OPERAND_FRACTION:.0%}"
        f" of operands)"
    )
    return "\n".join(lines)


def format_cache_statistics(
    stats: Optional[CacheStatistics],
    title: str = "Translation-cache activity",
    slowest: int = 8,
) -> str:
    """Render the cache counters plus the slowest specializations
    (compile-time hot spots). Accepts ``None`` (no launches yet)."""
    lines = [title, _rule()]
    if stats is None:
        lines.append("  (no cache activity recorded)")
        return "\n".join(lines)
    lines.append(
        f"  memory: {stats.hits} hits / {stats.misses} misses, "
        f"{stats.translations} translations, "
        f"{stats.invalidations} invalidations"
    )
    lines.append(
        f"  disk:   {stats.disk_hits} hits / {stats.disk_misses} misses, "
        f"{stats.disk_errors} errors, {stats.evictions} evictions"
    )
    if stats.degradations:
        lines.append(
            f"  degradations: {stats.degradations}"
        )
        for kernel, failed, fallback, reason in stats.degradation_events:
            lines.append(
                f"    {kernel:<28} ws={failed} -> ws={fallback}  ({reason})"
            )
    lines.append(
        f"  translation time: {stats.translation_seconds * 1e3:.1f} ms"
    )
    timed = sorted(
        stats.compile_seconds.items(), key=lambda item: -item[1]
    )[:slowest]
    for (kernel, warp_size), seconds in timed:
        if seconds <= 0.0:
            continue
        lines.append(
            f"    {kernel:<28} ws={warp_size}  {seconds * 1e3:7.2f} ms"
        )
    return "\n".join(lines)


def format_sanitizer_findings(
    reports,
    title: str = "Sanitizer findings",
    limit: int = 16,
) -> str:
    """Render non-fatal sanitizer findings gathered on
    ``LaunchStatistics.sanitizer`` (checked execution with
    ``sanitize_fatal=False``); the full rendering lives in
    :mod:`repro.sanitizer.reports`."""
    reports = list(reports or ())
    lines = [title, _rule()]
    if not reports:
        lines.append("  (clean: no findings)")
        return "\n".join(lines)
    for report in reports[:limit]:
        for line in format_sanitizer_report(report).splitlines():
            lines.append(f"  {line}")
    if len(reports) > limit:
        lines.append(f"  ... +{len(reports) - limit} more findings")
    return "\n".join(lines)


def format_meld_ablation(result: MeldAblationResult) -> str:
    lines = [
        "Control-flow melding ablation (divergent suite, "
        "--no-meld vs --meld)",
        _rule(),
    ]
    for row in result.rows:
        check = "ok" if row.check_ok else "MISMATCH"
        lines.append(
            f"  {row.workload:<16} cycles "
            f"{row.cycles_off:>8} -> {row.cycles_on:>8} "
            f"({row.speedup:5.2f}x)  div-yields "
            f"{row.divergent_yields_off:>5} -> "
            f"{row.divergent_yields_on:>5}  "
            f"melded={row.melded_regions} "
            f"rejected={row.meld_rejections} check={check}"
        )
    lines.append(
        f"  improved {result.improved_count}/{len(result.rows)} "
        f"divergent workloads; melds against the model's prediction: "
        f"{len(result.mispredicted)}"
    )
    for entry in result.mispredicted:
        lines.append(f"  MISPREDICTED {entry}")
    return "\n".join(lines)


def join_sections(sections: Iterable[str]) -> str:
    return "\n\n".join(sections)
