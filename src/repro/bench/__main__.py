"""``python -m repro.bench`` — print the full reproduction report
(Table 1 + Figures 6-10 + the §6.2 instruction-count study)."""

from __future__ import annotations

import argparse
import json
import sys
import time

from .figures import (
    run_figure6,
    run_figure7,
    run_figure8,
    run_figure9,
    run_figure10,
    run_instruction_reduction,
    run_meld_ablation,
    run_table1,
)
from .harness import SuiteRunner
from .reporting import (
    format_cache_statistics,
    format_figure6,
    format_figure7,
    format_figure8,
    format_figure9,
    format_figure10,
    format_instruction_reduction,
    format_meld_ablation,
    format_table1,
    join_sections,
)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="workload size multiplier (default 1.0)",
    )
    parser.add_argument(
        "--only",
        choices=[
            "table1",
            "figure6",
            "figure7",
            "figure8",
            "figure9",
            "figure10",
            "instructions",
            "meld",
        ],
        default=None,
        help="regenerate a single experiment",
    )
    parser.add_argument(
        "--meld",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="run the figure sweeps with the control-flow melding "
        "pass enabled (--no-meld restores the default); the meld "
        "ablation section itself always compares both settings",
    )
    parser.add_argument(
        "--backend",
        choices=["interpreter", "array"],
        default="interpreter",
        help="execution backend for the Table-1 runs (modeled "
        "GFLOP/s are backend-invariant; host wall-clock is not)",
    )
    parser.add_argument(
        "--perf-baseline",
        metavar="JSON",
        default=None,
        help="compare Table-1 host wall-clock against a committed "
        "baseline JSON; exit non-zero on a >2x regression",
    )
    parser.add_argument(
        "--write-perf-baseline",
        metavar="JSON",
        default=None,
        help="write the measured Table-1 host wall-clock to a "
        "baseline JSON (for --perf-baseline)",
    )
    parser.add_argument(
        "--serve",
        action="store_true",
        help="run the concurrent-clients serving bench (DevicePool "
        "vs a single synchronous Device) instead of the paper suite",
    )
    parser.add_argument(
        "--serve-clients",
        type=int,
        default=4,
        help="concurrent healthy tenants (default %(default)s)",
    )
    parser.add_argument(
        "--serve-workers",
        type=int,
        default=2,
        help="pool worker processes (default %(default)s)",
    )
    parser.add_argument(
        "--serve-launches",
        type=int,
        default=8,
        help="launches per tenant (default %(default)s)",
    )
    parser.add_argument(
        "--no-chaos",
        action="store_true",
        help="skip the trapping chaos tenant in the serving bench",
    )
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="serving bench: kill worker 0 mid-run (seeded "
        "kill_worker injection) and report supervisor recovery",
    )
    parser.add_argument(
        "--assert-recovery",
        action="store_true",
        help="with --chaos: fail unless the killed worker respawned "
        "within the recovery SLO",
    )
    parser.add_argument(
        "--recovery-slo",
        type=float,
        default=15.0,
        metavar="SECONDS",
        help="recovery SLO bound for --assert-recovery "
        "(default %(default)s)",
    )
    parser.add_argument(
        "--durability",
        choices=("none", "journal", "checkpoint"),
        default="none",
        help="with --chaos: make the victim tenant durable — the "
        "kill must be invisible (state restored, no DeviceLost, "
        "pre-kill buffers bit-identical through original handles)",
    )
    parser.add_argument(
        "--assert-speedup",
        type=float,
        default=None,
        metavar="X",
        help="fail unless pool throughput is at least X times the "
        "single-device baseline (CI gate; needs a multi-core host)",
    )
    parser.add_argument(
        "--output",
        metavar="JSON",
        default=None,
        help="write the serving-bench record to this JSON file",
    )
    arguments = parser.parse_args(argv)

    if arguments.serve:
        from .serve_bench import format_serve, run_serve_bench

        start = time.time()
        try:
            record = run_serve_bench(
                clients=arguments.serve_clients,
                workers=arguments.serve_workers,
                launches=arguments.serve_launches,
                scale=arguments.scale,
                chaos=not arguments.no_chaos,
                process_chaos=arguments.chaos,
                recovery_slo=arguments.recovery_slo,
                assert_recovery=arguments.assert_recovery,
                assert_speedup=arguments.assert_speedup,
                output=arguments.output,
                durability=arguments.durability,
            )
        except AssertionError as failure:
            print(f"FAIL: {failure}", file=sys.stderr)
            return 1
        print(format_serve(record))
        print(f"\n[completed in {time.time() - start:.1f}s]")
        return 0

    start = time.time()
    sections = []
    failures = []
    wants = lambda name: arguments.only in (None, name)  # noqa: E731

    if wants("table1"):
        table1 = run_table1(
            scale=arguments.scale, backend=arguments.backend
        )
        sections.append(format_table1(table1))
        if arguments.write_perf_baseline:
            with open(arguments.write_perf_baseline, "w") as handle:
                json.dump(
                    {
                        "experiment": "table1",
                        "scale": arguments.scale,
                        "backend": arguments.backend,
                        "host_seconds": round(
                            table1.total_host_seconds, 3
                        ),
                    },
                    handle,
                    indent=2,
                )
                handle.write("\n")
        if arguments.perf_baseline:
            with open(arguments.perf_baseline) as handle:
                baseline = json.load(handle)
            allowed = 2.0 * float(baseline["host_seconds"])
            measured = table1.total_host_seconds
            verdict = "ok" if measured <= allowed else "REGRESSION"
            sections.append(
                f"perf smoke: table1 host {measured:.2f}s vs baseline "
                f"{baseline['host_seconds']:.2f}s "
                f"(bound {allowed:.2f}s) -> {verdict}"
            )
            if measured > allowed:
                failures.append(
                    f"table1 host wall-clock {measured:.2f}s exceeds "
                    f"2x baseline ({allowed:.2f}s)"
                )
    runner = None
    if any(
        wants(name)
        for name in ("figure6", "figure7", "figure8", "figure9",
                     "figure10")
    ):
        runner = SuiteRunner(scale=arguments.scale, meld=arguments.meld)
    if wants("figure6"):
        sections.append(format_figure6(run_figure6(runner)))
    if wants("figure7"):
        sections.append(format_figure7(run_figure7(runner)))
    if wants("figure8"):
        sections.append(format_figure8(run_figure8(runner)))
    if wants("figure9"):
        sections.append(format_figure9(run_figure9(runner)))
    if wants("figure10"):
        sections.append(format_figure10(run_figure10(runner)))
    if wants("instructions"):
        sections.append(
            format_instruction_reduction(run_instruction_reduction())
        )
    if wants("meld"):
        ablation = run_meld_ablation(scale=arguments.scale)
        sections.append(format_meld_ablation(ablation))
        if ablation.mispredicted:
            failures.append(
                f"melding fired against the profitability model on "
                f"{len(ablation.mispredicted)} region(s)"
            )
    if runner is not None:
        sections.append(
            format_cache_statistics(runner.cache_statistics())
        )

    print(join_sections(sections))
    print(f"\n[completed in {time.time() - start:.1f}s]")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
