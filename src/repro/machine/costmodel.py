"""Issue-slot cost model of the simulated vector processor.

Per-instruction charges are computed *statically* when a function is
lowered (our analogue of code generation): the interpreter then simply
accumulates precomputed cycle counts. Costs depend on the machine
description and on the function's register pressure — live vector state
beyond the physical vector register file injects spill/fill traffic,
which is the mechanism behind Table 1's performance cliff at warp
sizes wider than the machine (§6: "executing the above benchmark with a
warp size of 8 threads while targeting SSE results in degraded
performance").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..ir.function import IRFunction
from ..ir.instructions import (
    AtomicRMW,
    BarrierTerm,
    BinaryOp,
    Branch,
    Broadcast,
    Compare,
    CondBranch,
    ContextRead,
    ContextWrite,
    Convert,
    Exit,
    ExtractElement,
    FusedMultiplyAdd,
    InsertElement,
    Intrinsic,
    Load,
    Reduce,
    Select,
    Store,
    Switch,
    UnaryOp,
    VectorLoad,
    VectorStore,
    Yield,
)
from ..ir.liveness import LivenessInfo
from ..ir.values import VirtualRegister
from ..ptx.types import AddressSpace
from .descriptor import MachineDescription

_FLOAT_UNITS = {
    "add": 1,
    "sub": 1,
    "mul": 1,
    "div": 4,
    "min": 1,
    "max": 1,
}


def vector_register_pressure(
    function: IRFunction, machine: MachineDescription
) -> int:
    """Maximum physical vector registers live at any block boundary.

    Each live register of width ``w > 1`` occupies ``ceil(w / machine
    width)`` physical registers.
    """
    liveness = LivenessInfo(function)
    pressure = 0
    for label in function.blocks:
        for live_set in (
            liveness.live_in[label],
            liveness.live_out[label],
        ):
            total = 0
            for name in live_set:
                register = liveness.register(name)
                if register.width > 1:
                    total += machine.vector_chunks(register.width)
            pressure = max(pressure, total)
    return pressure


@dataclass
class InstructionCost:
    """Static cycles and floating-point work of one instruction."""

    cycles: int
    flops: int = 0


@dataclass
class FunctionCostTable:
    """Per-instruction costs for one lowered function."""

    pressure: int
    spilling: bool
    costs: Dict[int, InstructionCost] = field(default_factory=dict)

    def cost_of(self, instruction) -> InstructionCost:
        return self.costs[id(instruction)]


@dataclass(frozen=True)
class BlockCost:
    """Aggregated static cost of one basic block (body + terminator).

    The closure-specialized lowering folds per-instruction charges into
    these per-block sums so the interpreter performs a single statistics
    update per block executed instead of one per instruction. Kernel and
    yield cycles are kept apart (the ``overhead`` flag placed by the
    vectorizer decides which bucket an instruction charges — Fig. 9's
    categories); ``flops`` covers body instructions only, matching the
    per-instruction accounting it replaces.
    """

    kernel_cycles: int
    yield_cycles: int
    flops: int
    #: dynamic instruction count charged per execution of the block
    #: (body instructions plus the terminator)
    instructions: int


def aggregate_block_cost(block, table: FunctionCostTable) -> BlockCost:
    """Fold ``table``'s per-instruction charges over ``block``."""
    kernel_cycles = 0
    yield_cycles = 0
    flops = 0
    for instruction in block.instructions:
        cost = table.cost_of(instruction)
        if getattr(instruction, "overhead", False):
            yield_cycles += cost.cycles
        else:
            kernel_cycles += cost.cycles
        flops += cost.flops
    terminator = block.terminator
    if terminator is not None:
        cost = table.cost_of(terminator)
        if getattr(terminator, "overhead", False):
            yield_cycles += cost.cycles
        else:
            kernel_cycles += cost.cycles
    return BlockCost(
        kernel_cycles=kernel_cycles,
        yield_cycles=yield_cycles,
        flops=flops,
        instructions=len(block.instructions) + 1,
    )


def _width_of(instruction) -> int:
    target = instruction.defined()
    candidates = []
    if target is not None:
        candidates.append(target)
    candidates.extend(
        v for v in instruction.uses() if isinstance(v, VirtualRegister)
    )
    width = 1
    for value in candidates:
        width = max(width, value.width)
    return width


def build_cost_table(
    function: IRFunction, machine: MachineDescription
) -> FunctionCostTable:
    """Assign a static cycle cost to every instruction of ``function``."""
    pressure = vector_register_pressure(function, machine)
    spilling = pressure > machine.vector_registers
    table = FunctionCostTable(pressure=pressure, spilling=spilling)
    for block in function.ordered_blocks():
        for instruction in block.all_instructions():
            table.costs[id(instruction)] = _instruction_cost(
                instruction, machine, spilling
            )
    return table


def scalar_instruction_cycles(
    instruction, machine: MachineDescription
) -> int:
    """Static cycle charge of one scalar-IR instruction.

    Transform-stage profitability models (control-flow melding) price
    candidate rewrites with the same per-instruction charges the
    lowering will later assign, evaluated without spill pressure — the
    scalar function has no vector registers yet."""
    return _instruction_cost(instruction, machine, False).cycles


def divergence_penalty(
    machine: MachineDescription, warp_size: int
) -> int:
    """Modeled overhead of one divergent branch at ``warp_size``.

    When a warp's threads disagree at a branch, the specialization
    yields (status check + switch dispatch on both sub-paths), the
    execution manager runs a re-formation event, and every thread pays
    the per-thread EM bookkeeping before it re-enters a kernel. This
    mirrors the yield/EM charges the interpreter accrues dynamically
    (Fig. 9's categories) without simulating the schedule."""
    return (
        2 * machine.yield_cost
        + machine.switch_cost
        + machine.em_event_cost
        + warp_size * machine.em_per_thread_cost
    )


def _instruction_cost(
    instruction, machine: MachineDescription, spilling: bool
) -> InstructionCost:
    width = _width_of(instruction)
    chunks = machine.vector_chunks(width)
    spill_extra = machine.spill_penalty * chunks if (
        spilling and width > machine.vector_width
    ) else 0

    if isinstance(instruction, FusedMultiplyAdd):
        flops = 2 * width if instruction.dtype.is_float else 0
        return InstructionCost(
            cycles=machine.alu_cost * chunks + spill_extra, flops=flops
        )
    if isinstance(instruction, BinaryOp):
        units = 1
        flops = 0
        if instruction.dtype.is_float:
            units = _FLOAT_UNITS.get(instruction.op, 1)
            flops = width
        return InstructionCost(
            cycles=machine.alu_cost * units * chunks + spill_extra,
            flops=flops,
        )
    if isinstance(instruction, (UnaryOp, Compare, Select, Convert)):
        return InstructionCost(
            cycles=machine.alu_cost * chunks + spill_extra
        )
    if isinstance(instruction, Intrinsic):
        flops = width if instruction.dtype.is_float else 0
        return InstructionCost(
            cycles=machine.intrinsic_cost * chunks + spill_extra,
            flops=flops,
        )
    if isinstance(instruction, (Load, Store)):
        if instruction.space is AddressSpace.local:
            return InstructionCost(cycles=machine.local_memory_cost)
        return InstructionCost(cycles=machine.memory_cost)
    if isinstance(instruction, (VectorLoad, VectorStore)):
        # One access per machine-width chunk (movups-style).
        return InstructionCost(cycles=machine.memory_cost * chunks)
    if isinstance(instruction, AtomicRMW):
        return InstructionCost(cycles=machine.atomic_cost)
    if isinstance(instruction, (ContextRead, ContextWrite)):
        return InstructionCost(cycles=machine.context_cost)
    if isinstance(instruction, (InsertElement, ExtractElement)):
        return InstructionCost(cycles=machine.shuffle_cost)
    if isinstance(instruction, Broadcast):
        return InstructionCost(cycles=machine.shuffle_cost)
    if isinstance(instruction, Reduce):
        steps = max(1, (width - 1).bit_length())
        return InstructionCost(cycles=machine.shuffle_cost * steps + 1)
    if isinstance(instruction, Branch):
        return InstructionCost(cycles=machine.branch_cost)
    if isinstance(instruction, CondBranch):
        return InstructionCost(cycles=machine.branch_cost)
    if isinstance(instruction, Switch):
        return InstructionCost(cycles=machine.switch_cost)
    if isinstance(instruction, Yield):
        return InstructionCost(cycles=machine.yield_cost)
    if isinstance(instruction, (Exit, BarrierTerm)):
        return InstructionCost(cycles=machine.branch_cost)
    return InstructionCost(cycles=machine.alu_cost)
