"""Simulated flat memory with segment windows.

One byte-addressable arena backs every PTX state space:

- ``global`` addresses are absolute arena addresses (kernel parameters
  pass them around as 64-bit values, exactly as on hardware);
- ``param`` / ``shared`` / ``local`` accesses are segment-relative and
  resolved against per-launch / per-CTA / per-thread base addresses
  held by the executing context (§2's multiple on-chip address spaces).

Address 0 is reserved so that a null pointer always faults.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..errors import MemoryFault
from ..ptx.types import DataType

#: Bytes reserved at the bottom of the arena (null page).
_NULL_GUARD = 64


class MemorySystem:
    """Bump-allocated arena with typed loads and stores."""

    def __init__(self, size: int = 1 << 24):
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)
        self._brk = _NULL_GUARD
        #: Freed regions available for reuse: (address, size) pairs.
        self._free_blocks: List[Tuple[int, int]] = []
        #: Number of loads/stores serviced (machine-level statistic).
        self.load_count = 0
        self.store_count = 0
        #: Attached :class:`repro.sanitizer.KernelSanitizer` (checked
        #: execution): allocation/free route through its shadow layer
        #: (redzones, registry, quarantine) and host copies update
        #: per-byte initialization state. ``None`` = unchecked.
        self.sanitizer = None

    # -- allocation ----------------------------------------------------------

    def allocate(
        self,
        size: int,
        align: int = 16,
        kind: str = "device",
        label: Optional[str] = None,
    ) -> int:
        """Reserve ``size`` bytes and return the base address.

        With a sanitizer attached the region is registered (``kind`` /
        ``label`` classify it in reports) and wrapped in redzones;
        otherwise ``kind``/``label`` are ignored.
        """
        if self.sanitizer is not None:
            return self.sanitizer.allocate(
                size, align=align, kind=kind, label=label
            )
        return self._arena_allocate(size, align)

    def _arena_allocate(self, size: int, align: int = 16) -> int:
        """Raw arena reservation (first-fit free list, then the bump
        pointer; returned memory is always zeroed)."""
        if size < 0:
            raise MemoryFault(self._brk, size, "negative allocation")
        for index, (address, block_size) in enumerate(self._free_blocks):
            aligned = address + (-address % align)
            waste = aligned - address
            if block_size - waste >= size:
                del self._free_blocks[index]
                if waste:
                    self._free_blocks.append((address, waste))
                tail = block_size - waste - size
                if tail:
                    self._free_blocks.append((aligned + size, tail))
                self.data[aligned : aligned + size] = 0
                return aligned
        remainder = self._brk % align
        if remainder:
            # The align bump would otherwise leak the padding bytes
            # forever; keep them reusable (and absorbable when the
            # break later recedes past them).
            padding = align - remainder
            self._free_blocks.append((self._brk, padding))
            self._brk += padding
        base = self._brk
        if base + size > self.size:
            raise MemoryFault(base, size, "arena exhausted")
        self._brk += size
        return base

    def free(self, address: int, size: int) -> None:
        """Return a previously allocated region to the arena.

        With a sanitizer attached the region is validated against the
        allocation registry and quarantined (delayed reuse) instead of
        being returned immediately. Otherwise the raw arena free runs:
        the region that ends at the break lowers the bump pointer,
        interior regions are coalesced with adjacent free blocks and
        kept for reuse by :meth:`allocate`.
        """
        if self.sanitizer is not None:
            self.sanitizer.free(address, size)
            return
        self._arena_free(address, size)

    def _arena_free(self, address: int, size: int) -> None:
        """Raw arena free (validated; coalescing).

        Frees are validated: a region reaching past the break, or
        overlapping an already-free block (double free), raises
        :class:`MemoryFault` instead of silently lowering the break
        underneath live allocations.
        """
        if size <= 0:
            return
        self._check(address, size)
        if address + size > self._brk:
            raise MemoryFault(
                address, size, "free beyond the allocation break"
            )
        for base, length in self._free_blocks:
            if address < base + length and base < address + size:
                raise MemoryFault(
                    address,
                    size,
                    "free overlaps an already-free region "
                    "(double free?)",
                )
        # Coalesce with adjacent free blocks first, so interior
        # fragments merge into maximal regions (an interleaved
        # free(A); free(B) of neighbours can later satisfy one
        # allocation of len(A)+len(B)).
        merged = True
        while merged:
            merged = False
            for index, (base, length) in enumerate(self._free_blocks):
                if base + length == address:
                    address = base
                    size += length
                    del self._free_blocks[index]
                    merged = True
                    break
                if address + size == base:
                    size += length
                    del self._free_blocks[index]
                    merged = True
                    break
        if address + size == self._brk:
            self._brk = address
            return
        self._free_blocks.append((address, size))

    def reset(self) -> None:
        """Free everything (used between benchmark iterations)."""
        self.data[:] = 0
        self._brk = _NULL_GUARD
        self._free_blocks = []
        self.load_count = 0
        self.store_count = 0
        if self.sanitizer is not None:
            self.sanitizer.reset()

    @property
    def bytes_allocated(self) -> int:
        return self._brk

    # -- bounds --------------------------------------------------------------

    def _check(self, address: int, size: int) -> None:
        if address < _NULL_GUARD or address + size > self.size:
            raise MemoryFault(address, size)

    # -- typed scalar access -------------------------------------------------

    def load(self, dtype: DataType, address: int):
        """Load one value of ``dtype`` from ``address``."""
        address = int(address)
        if dtype.is_predicate:
            self._check(address, 1)
            self.load_count += 1
            return bool(self.data[address])
        size = dtype.size
        self._check(address, size)
        self.load_count += 1
        view = self.data[address : address + size]
        return view.view(dtype.numpy_dtype)[0]

    def store(self, dtype: DataType, address: int, value) -> None:
        """Store one value of ``dtype`` at ``address``."""
        address = int(address)
        if dtype.is_predicate:
            self._check(address, 1)
            self.store_count += 1
            self.data[address] = 1 if value else 0
            return
        size = dtype.size
        self._check(address, size)
        self.store_count += 1
        scalar = np.asarray(value).astype(dtype.numpy_dtype)
        self.data[address : address + size] = np.frombuffer(
            scalar.tobytes(), dtype=np.uint8
        )

    # -- batched guest access (the array backend's gather/scatter) --------

    def _patched(self, name: str) -> bool:
        """True when ``name`` has been overridden on this *instance*
        (fault-injection harnesses patch ``load``/``store`` that way).
        The batched paths then delegate per element so injected faults
        keep firing."""
        return name in self.__dict__

    def _check_batch(self, addresses: np.ndarray, size: int) -> None:
        bad = (addresses < _NULL_GUARD) | (
            addresses + size > self.size
        )
        if bad.any():
            # Re-raise through the scalar check so the fault carries
            # the same payload the scalar path would produce.
            self._check(int(addresses[int(np.argmax(bad))]), size)

    def gather(self, dtype: DataType, addresses: np.ndarray):
        """Batched :meth:`load`: one element per address, identical
        bounds checks and ``load_count`` accounting."""
        if self._patched("load"):
            values = [self.load(dtype, int(a)) for a in addresses]
            if dtype.is_predicate:
                return np.array(values, dtype=bool)
            return np.array(values, dtype=dtype.numpy_dtype)
        addresses = np.asarray(addresses, dtype=np.int64)
        if dtype.is_predicate:
            self._check_batch(addresses, 1)
            self.load_count += addresses.size
            return self.data[addresses] != 0
        size = dtype.size
        self._check_batch(addresses, size)
        self.load_count += addresses.size
        numpy_dtype = dtype.numpy_dtype
        if size == 1:
            return self.data[addresses].view(numpy_dtype)
        if not (addresses % size).any():
            return self.data.view(numpy_dtype)[addresses // size]
        out = np.empty(addresses.shape, dtype=numpy_dtype)
        flat = out.reshape(-1)
        for position, address in enumerate(addresses.reshape(-1)):
            flat[position] = self.data[
                address : address + size
            ].view(numpy_dtype)[0]
        return out

    def scatter(
        self, dtype: DataType, addresses: np.ndarray, values
    ) -> None:
        """Batched :meth:`store`: duplicate addresses resolve to the
        highest value index (numpy fancy assignment), matching the
        sequential last-writer-wins order of the warps in a batch."""
        if self._patched("store"):
            broadcast = np.broadcast_to(
                np.asarray(values), np.asarray(addresses).shape
            )
            for address, value in zip(addresses, broadcast):
                self.store(dtype, int(address), value)
            return
        addresses = np.asarray(addresses, dtype=np.int64)
        if dtype.is_predicate:
            self._check_batch(addresses, 1)
            self.store_count += addresses.size
            flags = np.broadcast_to(
                np.asarray(values), addresses.shape
            )
            self.data[addresses] = (flags != 0).astype(np.uint8)
            return
        size = dtype.size
        self._check_batch(addresses, size)
        self.store_count += addresses.size
        numpy_dtype = dtype.numpy_dtype
        converted = np.broadcast_to(
            np.asarray(values).astype(numpy_dtype), addresses.shape
        )
        if not (addresses % size).any():
            self.data.view(numpy_dtype)[addresses // size] = converted
            return
        for position, address in enumerate(addresses.reshape(-1)):
            self.data[address : address + size] = np.frombuffer(
                converted.reshape(-1)[position].tobytes(),
                dtype=np.uint8,
            )

    # -- bulk host access (the cudaMemcpy analogues) ----------------------

    def write_array(self, address: int, array: np.ndarray) -> None:
        source = np.ascontiguousarray(array)
        raw = source.view(np.uint8).reshape(-1)
        self._check(address, raw.size)
        self.data[address : address + raw.size] = raw
        # Host-copy traffic counts like scalar traffic: one store per
        # element written (vector guest stores route through here too).
        self.store_count += int(source.size)
        if self.sanitizer is not None:
            self.sanitizer.note_host_write(address, raw.size)

    def read_array(
        self,
        address: int,
        dtype,
        count: int,
    ) -> np.ndarray:
        numpy_dtype = np.dtype(dtype)
        nbytes = numpy_dtype.itemsize * count
        self._check(address, nbytes)
        self.load_count += int(count)
        raw = self.data[address : address + nbytes]
        return raw.view(numpy_dtype).copy()

    def fill(self, address: int, size: int, byte: int = 0) -> None:
        self._check(address, size)
        self.data[address : address + size] = byte
        if self.sanitizer is not None:
            self.sanitizer.note_host_write(address, size)


class Allocation:
    """A host-visible handle to an arena region (device buffer)."""

    def __init__(
        self, memory: MemorySystem, address: int, size: int,
        label: Optional[str] = None,
    ):
        self.memory = memory
        self.address = address
        self.size = size
        self.label = label

    def write(self, array: np.ndarray) -> None:
        self.memory.write_array(self.address, array)

    def free(self) -> None:
        """Return this buffer's arena region for reuse."""
        self.memory.free(self.address, self.size)

    def read(self, dtype, count: int) -> np.ndarray:
        return self.memory.read_array(self.address, dtype, count)

    def __int__(self):
        return self.address

    def __repr__(self):
        label = f" {self.label}" if self.label else ""
        return (
            f"<Allocation{label} @0x{self.address:x} {self.size} bytes>"
        )
