"""The execution-backend seam.

:class:`~repro.machine.interpreter.Interpreter` defines the contract a
backend fulfils — ``load_function`` lowers an IR specialization to an
:class:`~repro.machine.interpreter.ExecutableFunction`, ``execute``
runs one warp through it — and is itself the default implementation.
:class:`~repro.machine.array_backend.ArrayBackend` extends it with a
batched lowering that executes *all resident warps at once* as numpy
array programs (the paper's "run the specialized kernel as a wide
vector program" executed literally, host-side).

``ExecutionConfig(backend=...)`` selects the implementation; the
:func:`create_backend` factory is the single construction point used
by :class:`~repro.api.device.Device`.
"""

from __future__ import annotations

from typing import Optional

from .descriptor import MachineDescription
from .interpreter import _DEFAULT_INSTRUCTION_LIMIT, Interpreter
from .memory import MemorySystem

#: Selectable execution backends (``ExecutionConfig.backend``).
#:
#: - ``"interpreter"`` — one warp at a time through the closure (or
#:   dispatch) lowering. The reference semantics.
#: - ``"array"`` — uniform block runs execute batched across every
#:   resident warp as numpy array operations; divergent or yielding
#:   warps fall back to the closure path mid-kernel.
BACKENDS = ("interpreter", "array")


def create_backend(
    name: str,
    machine: MachineDescription,
    memory: MemorySystem,
    instruction_limit: int = _DEFAULT_INSTRUCTION_LIMIT,
    mode: str = "closure",
    sanitizer=None,
) -> Interpreter:
    """Construct the execution backend ``name``.

    Every backend satisfies the :class:`Interpreter` interface
    (``load_function`` / ``execute`` / ``new_state``); the array
    backend additionally advertises ``supports_batching`` and
    ``execute_batch``, which the execution manager discovers by
    feature test rather than by name.
    """
    if name == "interpreter":
        return Interpreter(
            machine,
            memory,
            instruction_limit=instruction_limit,
            mode=mode,
            sanitizer=sanitizer,
        )
    if name == "array":
        from .array_backend import ArrayBackend

        return ArrayBackend(
            machine,
            memory,
            instruction_limit=instruction_limit,
            mode=mode,
            sanitizer=sanitizer,
        )
    raise ValueError(
        f"unknown execution backend {name!r}; expected one of {BACKENDS}"
    )
