"""Executable lowering and interpretation of IR functions.

``load_function`` is this simulator's stand-in for JIT code generation:
it binds every instruction to a handler, pre-converts constants to
machine values, and attaches the static cost table. ``execute`` then
runs a warp of thread contexts through the lowered function, starting
at the scheduler block, until the function yields back to the execution
manager with a resume status (§3's subkernel execution).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import ExecutionError
from ..ir.function import IRFunction
from ..ir.instructions import (
    AtomicRMW,
    BarrierTerm,
    BinaryOp,
    Branch,
    Broadcast,
    Compare,
    CondBranch,
    ContextRead,
    ContextWrite,
    Convert,
    Exit,
    ExtractElement,
    FusedMultiplyAdd,
    InsertElement,
    Intrinsic,
    Load,
    Reduce,
    ResumeStatus,
    Select,
    Store,
    Switch,
    UnaryOp,
    VectorLoad,
    VectorStore,
    Yield,
)
from ..ir.values import Constant, VirtualRegister
from ..ptx.types import AddressSpace, DataType
from .costmodel import FunctionCostTable, build_cost_table
from .descriptor import MachineDescription
from .memory import MemorySystem

# NumPy integer wraparound is the desired machine semantics.
np.seterr(over="ignore", invalid="ignore", divide="ignore")

_DEFAULT_INSTRUCTION_LIMIT = 200_000_000


@dataclass
class ExecutionStats:
    """Per-execution accounting consumed by the runtime statistics."""

    kernel_cycles: int = 0
    yield_cycles: int = 0
    instructions: int = 0
    flops: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        self.kernel_cycles += other.kernel_cycles
        self.yield_cycles += other.yield_cycles
        self.instructions += other.instructions
        self.flops += other.flops


@dataclass
class ExecutableFunction:
    """A lowered function: blocks of (instruction, cost, overhead)."""

    function: IRFunction
    cost_table: FunctionCostTable
    blocks: Dict[str, tuple] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return self.function.name

    @property
    def warp_size(self) -> int:
        return self.function.warp_size


class Interpreter:
    """Executes lowered IR functions against a memory system."""

    def __init__(
        self,
        machine: MachineDescription,
        memory: MemorySystem,
        instruction_limit: int = _DEFAULT_INSTRUCTION_LIMIT,
    ):
        self.machine = machine
        self.memory = memory
        self.instruction_limit = instruction_limit

    # -- lowering ("code generation") ------------------------------------

    def load_function(self, function: IRFunction) -> ExecutableFunction:
        cost_table = build_cost_table(function, self.machine)
        executable = ExecutableFunction(
            function=function, cost_table=cost_table
        )
        for block in function.ordered_blocks():
            body = []
            for instruction in block.instructions:
                cost = cost_table.cost_of(instruction)
                body.append(
                    (
                        instruction,
                        cost.cycles,
                        cost.flops,
                        bool(getattr(instruction, "overhead", False)),
                    )
                )
            terminator = block.terminator
            terminator_cost = cost_table.cost_of(terminator)
            executable.blocks[block.label] = (
                tuple(body),
                terminator,
                terminator_cost.cycles,
                bool(getattr(terminator, "overhead", False)),
            )
        return executable

    # -- execution ---------------------------------------------------------

    def execute(
        self,
        executable: ExecutableFunction,
        warp,
        param_base: int,
        stats: Optional[ExecutionStats] = None,
    ) -> int:
        """Run ``warp`` through ``executable`` from its scheduler block.

        Returns the resume status; each context's ``resume_point`` has
        been updated by the exit handlers before a branch/barrier yield.
        """
        state = _WarpState(
            interpreter=self,
            executable=executable,
            warp=warp,
            param_base=param_base,
        )
        status = state.run()
        if stats is not None:
            stats.merge(state.stats)
        return status


class _WarpState:
    """Mutable state of one warp execution."""

    def __init__(self, interpreter, executable, warp, param_base):
        self.machine = interpreter.machine
        self.memory = interpreter.memory
        self.limit = interpreter.instruction_limit
        self.executable = executable
        self.function = executable.function
        self.warp = warp
        self.contexts = warp.contexts
        self.param_base = param_base
        self.warp_size = executable.warp_size
        self.registers: Dict[str, object] = {}
        self.stats = ExecutionStats()
        self._constants: Dict[int, object] = {}
        if len(self.contexts) != self.warp_size:
            raise ExecutionError(
                f"{executable.name}: warp of {len(self.contexts)} threads "
                f"given to a warp-size-{self.warp_size} specialization"
            )

    # -- value plumbing ------------------------------------------------------

    def fetch(self, value):
        if isinstance(value, VirtualRegister):
            current = self.registers.get(value.name)
            if current is None:
                current = self._default(value)
                self.registers[value.name] = current
            return current
        cached = self._constants.get(id(value))
        if cached is None:
            cached = value.dtype.numpy_dtype.type(value.value)
            self._constants[id(value)] = cached
        return cached

    def fetch_typed(self, value, dtype):
        """Fetch and bit-reinterpret to the instruction's type (PTX
        registers are untyped bit containers; instructions impose the
        interpretation, e.g. ``max.s32`` on a ``.u32`` register)."""
        fetched = self.fetch(value)
        wanted = dtype.numpy_dtype
        current = getattr(fetched, "dtype", None)
        if current is None or current == wanted:
            return fetched
        if dtype.is_predicate or current == np.bool_:
            return fetched
        if current.itemsize == wanted.itemsize:
            return fetched.view(wanted)
        return fetched.astype(wanted)

    def _default(self, register: VirtualRegister):
        dtype = register.dtype.numpy_dtype
        if register.width > 1:
            return np.zeros(register.width, dtype=dtype)
        return dtype.type(0)

    def set(self, register: VirtualRegister, value) -> None:
        self.registers[register.name] = value

    # -- address resolution ----------------------------------------------

    def resolve_address(self, space, base, offset: int, lane: int) -> int:
        address = int(base) + offset
        if space is AddressSpace.global_:
            return address
        if space is AddressSpace.param:
            return self.param_base + address
        if space is AddressSpace.shared:
            return self.contexts[lane].shared_base + address
        if space is AddressSpace.local:
            return self.contexts[lane].local_base + address
        raise ExecutionError(f"unresolvable address space {space}")

    # -- main loop ---------------------------------------------------------

    def run(self) -> int:
        blocks = self.executable.blocks
        label = self.function.entry_label
        executed = 0
        stats = self.stats
        while True:
            body, terminator, terminator_cycles, terminator_overhead = (
                blocks[label]
            )
            for instruction, cycles, flops, overhead in body:
                _HANDLERS[type(instruction)](self, instruction)
                if overhead:
                    stats.yield_cycles += cycles
                else:
                    stats.kernel_cycles += cycles
                stats.flops += flops
            executed += len(body) + 1
            if executed > self.limit:
                raise ExecutionError(
                    f"{self.executable.name}: instruction limit exceeded "
                    f"({self.limit}); possible infinite loop"
                )
            stats.instructions = executed
            if terminator_overhead:
                stats.yield_cycles += terminator_cycles
            else:
                stats.kernel_cycles += terminator_cycles
            next_label = _TERMINATORS[type(terminator)](self, terminator)
            if isinstance(next_label, int):
                stats.instructions = executed
                return next_label
            label = next_label

    # -- instruction implementations ---------------------------------------

    def _binary(self, inst: BinaryOp) -> None:
        a = self.fetch_typed(inst.a, inst.dtype)
        b = self.fetch_typed(inst.b, inst.dtype)
        self.set(inst.dst, _BINARY_IMPL[inst.op](a, b, inst.dtype))

    def _unary(self, inst: UnaryOp) -> None:
        a = self.fetch_typed(inst.a, inst.dtype)
        op = inst.op
        if op == "mov":
            result = a
            if (
                inst.dst.width > 1
                and not (isinstance(a, np.ndarray) and a.ndim == 1)
            ):
                result = np.full(
                    inst.dst.width, a, dtype=inst.dtype.numpy_dtype
                )
        elif op == "neg":
            result = np.negative(a)
        elif op == "abs":
            result = np.abs(a)
        elif op == "not":
            if inst.dtype.is_predicate:
                result = np.logical_not(a)
            else:
                result = np.invert(a)
        elif op == "cnot":
            result = np.where(
                a == 0, inst.dtype.numpy_dtype.type(1),
                inst.dtype.numpy_dtype.type(0),
            )
        else:
            raise ExecutionError(f"unknown unary op {op}")
        self.set(inst.dst, result)

    def _fma(self, inst: FusedMultiplyAdd) -> None:
        a = self.fetch_typed(inst.a, inst.dtype)
        b = self.fetch_typed(inst.b, inst.dtype)
        c = self.fetch_typed(inst.c, inst.dtype)
        self.set(inst.dst, a * b + c)

    def _compare(self, inst: Compare) -> None:
        a = self.fetch_typed(inst.a, inst.dtype)
        b = self.fetch_typed(inst.b, inst.dtype)
        self.set(inst.dst, _COMPARE_IMPL[inst.op](a, b))

    def _select(self, inst: Select) -> None:
        predicate = self.fetch(inst.predicate)
        a = self.fetch(inst.a)
        b = self.fetch(inst.b)
        if inst.dst.width > 1:
            result = np.where(predicate, a, b).astype(
                inst.dtype.numpy_dtype
            )
        else:
            result = a if bool(predicate) else b
            result = inst.dtype.numpy_dtype.type(result)
        self.set(inst.dst, result)

    def _convert(self, inst: Convert) -> None:
        source = self.fetch_typed(inst.src, inst.src_type)
        destination_dtype = inst.dst_type
        numpy_dtype = destination_dtype.numpy_dtype
        if destination_dtype.is_float or not inst.src_type.is_float:
            result = np.asarray(source).astype(numpy_dtype)
        else:
            rounding = inst.rounding or "rzi"
            if rounding == "rni":
                rounded = np.rint(source)
            elif rounding == "rmi":
                rounded = np.floor(source)
            elif rounding == "rpi":
                rounded = np.ceil(source)
            else:
                rounded = np.trunc(source)
            result = np.asarray(rounded).astype(numpy_dtype)
        if result.ndim == 0:
            result = result[()]
        self.set(inst.dst, result)

    def _intrinsic(self, inst: Intrinsic) -> None:
        argument = self.fetch(inst.args[0])
        name = inst.name
        if name == "sqrt":
            result = np.sqrt(argument)
        elif name == "rsqrt":
            result = 1.0 / np.sqrt(argument)
        elif name == "rcp":
            result = 1.0 / np.asarray(argument)
        elif name == "sin":
            result = np.sin(argument)
        elif name == "cos":
            result = np.cos(argument)
        elif name == "ex2":
            result = np.exp2(argument)
        elif name == "lg2":
            result = np.log2(argument)
        else:
            raise ExecutionError(f"unknown intrinsic {name}")
        numpy_dtype = inst.dtype.numpy_dtype
        result = np.asarray(result).astype(numpy_dtype)
        if result.ndim == 0:
            result = result[()]
        self.set(inst.dst, result)

    def _load(self, inst: Load) -> None:
        address = self.resolve_address(
            inst.space, self.fetch(inst.base), inst.offset, inst.lane
        )
        self.set(inst.dst, self.memory.load(inst.dtype, address))

    def _store(self, inst: Store) -> None:
        address = self.resolve_address(
            inst.space, self.fetch(inst.base), inst.offset, inst.lane
        )
        self.memory.store(inst.dtype, address, self.fetch(inst.value))

    def _vector_load(self, inst: VectorLoad) -> None:
        address = self.resolve_address(
            inst.space, self.fetch(inst.base), inst.offset, inst.lane
        )
        self.set(
            inst.dst,
            self.memory.read_array(
                address, inst.dtype.numpy_dtype, inst.dst.width
            ),
        )

    def _vector_store(self, inst: VectorStore) -> None:
        address = self.resolve_address(
            inst.space, self.fetch(inst.base), inst.offset, inst.lane
        )
        value = self.fetch(inst.value)
        width = self.warp_size
        array = np.asarray(value, dtype=inst.dtype.numpy_dtype)
        if array.ndim == 0:
            array = np.full(
                width, array, dtype=inst.dtype.numpy_dtype
            )
        self.memory.write_array(address, array)

    def _atomic(self, inst: AtomicRMW) -> None:
        address = self.resolve_address(
            inst.space, self.fetch(inst.base), inst.offset, inst.lane
        )
        old = self.memory.load(inst.dtype, address)
        operand = self.fetch(inst.value)
        op = inst.op
        if op == "add":
            new = old + operand
        elif op == "min":
            new = min(old, operand)
        elif op == "max":
            new = max(old, operand)
        elif op == "exch":
            new = operand
        elif op == "and":
            new = old & operand
        elif op == "or":
            new = old | operand
        elif op == "xor":
            new = old ^ operand
        elif op == "inc":
            new = 0 if old >= operand else old + 1
        elif op == "dec":
            new = operand if (old == 0 or old > operand) else old - 1
        elif op == "cas":
            compare = self.fetch(inst.compare)
            new = operand if old == compare else old
        else:
            raise ExecutionError(f"unknown atomic op {op}")
        self.memory.store(inst.dtype, address, new)
        if inst.dst is not None:
            self.set(inst.dst, old)

    def _context_read(self, inst: ContextRead) -> None:
        context = self.contexts[inst.lane]
        field_name = inst.field_name
        value = _CONTEXT_GETTERS[field_name](context, self, inst.lane)
        self.set(inst.dst, inst.dtype.numpy_dtype.type(value))

    def _context_write(self, inst: ContextWrite) -> None:
        context = self.contexts[inst.lane]
        if inst.field_name == "resume_point":
            context.resume_point = int(self.fetch(inst.value))
        else:
            raise ExecutionError(
                f"unwritable context field {inst.field_name}"
            )

    def _insert(self, inst: InsertElement) -> None:
        if inst.src is None:
            vector = np.zeros(
                inst.dst.width, dtype=inst.dst.dtype.numpy_dtype
            )
        else:
            vector = np.array(
                self.fetch(inst.src), dtype=inst.dst.dtype.numpy_dtype
            )
            if vector.ndim == 0:
                vector = np.full(
                    inst.dst.width, vector,
                    dtype=inst.dst.dtype.numpy_dtype,
                )
        vector[inst.index] = self.fetch(inst.scalar)
        self.set(inst.dst, vector)

    def _extract(self, inst: ExtractElement) -> None:
        vector = self.fetch(inst.src)
        if isinstance(vector, np.ndarray) and vector.ndim == 1:
            self.set(inst.dst, vector[inst.index])
        else:
            self.set(inst.dst, vector)

    def _broadcast(self, inst: Broadcast) -> None:
        scalar = self.fetch(inst.src)
        self.set(
            inst.dst,
            np.full(
                inst.dst.width, scalar, dtype=inst.dst.dtype.numpy_dtype
            ),
        )

    def _reduce(self, inst: Reduce) -> None:
        source = np.asarray(self.fetch(inst.src))
        op = inst.op
        if op == "add":
            result = int(np.count_nonzero(source)) if (
                source.dtype == np.bool_
            ) else int(source.sum())
        elif op == "any":
            result = bool(source.any())
        elif op == "all":
            result = bool(source.all())
        elif op == "uni":
            result = bool((source == source.flat[0]).all())
        elif op == "ballot":
            bits = 0
            for index, value in enumerate(np.atleast_1d(source)):
                if value:
                    bits |= 1 << index
            result = bits
        else:
            raise ExecutionError(f"unknown reduction {op}")
        self.set(inst.dst, inst.dst.dtype.numpy_dtype.type(result))

    # -- terminators -------------------------------------------------------

    def _branch(self, inst: Branch):
        return inst.target

    def _cond_branch(self, inst: CondBranch):
        predicate = self.fetch(inst.predicate)
        return inst.taken if bool(predicate) else inst.fallthrough

    def _switch(self, inst: Switch):
        value = int(self.fetch(inst.value))
        return inst.cases.get(value, inst.default)

    def _yield(self, inst: Yield):
        return inst.status

    def _exit(self, inst: Exit):
        return ResumeStatus.THREAD_EXIT

    def _barrier_term(self, inst: BarrierTerm):
        raise ExecutionError(
            "raw barrier terminator reached the machine; kernels must be "
            "specialized through the vectorizer first"
        )


# -- context field getters ----------------------------------------------


def _context_getter(attribute, axis):
    def getter(context, state, lane):
        return getattr(context, attribute)[axis]

    return getter


_CONTEXT_GETTERS = {
    "tid.x": _context_getter("tid", 0),
    "tid.y": _context_getter("tid", 1),
    "tid.z": _context_getter("tid", 2),
    "ntid.x": _context_getter("ntid", 0),
    "ntid.y": _context_getter("ntid", 1),
    "ntid.z": _context_getter("ntid", 2),
    "ctaid.x": _context_getter("ctaid", 0),
    "ctaid.y": _context_getter("ctaid", 1),
    "ctaid.z": _context_getter("ctaid", 2),
    "nctaid.x": _context_getter("nctaid", 0),
    "nctaid.y": _context_getter("nctaid", 1),
    "nctaid.z": _context_getter("nctaid", 2),
    "laneid": lambda context, state, lane: lane,
    "warpid": lambda context, state, lane: state.warp.warp_id,
    "clock": lambda context, state, lane: (
        state.stats.kernel_cycles + state.stats.yield_cycles
    ),
    "resume_point": lambda context, state, lane: context.resume_point,
}


# -- binary operator implementations -------------------------------------


def _shift_mask(b, dtype: DataType):
    bits = dtype.size * 8
    return np.asarray(b).astype(np.uint64) % bits


def _int_div(a, b, dtype):
    if dtype.is_float:
        return np.asarray(a) / np.asarray(b)
    a = np.asarray(a)
    b = np.asarray(b)
    safe_b = np.where(b == 0, 1, b)
    quotient = a // safe_b
    remainder = a - quotient * safe_b
    if dtype.is_signed:
        adjust = (remainder != 0) & ((a < 0) != (b < 0))
        quotient = quotient + adjust
    result = np.where(b == 0, 0, quotient).astype(dtype.numpy_dtype)
    return result if result.ndim else result[()]


def _int_rem(a, b, dtype):
    if dtype.is_float:
        return np.fmod(a, b)
    quotient = _int_div(a, b, dtype)
    b = np.asarray(b)
    result = np.where(
        b == 0, 0, np.asarray(a) - np.asarray(quotient) * b
    ).astype(dtype.numpy_dtype)
    return result if result.ndim else result[()]


def _mulhi(a, b, dtype):
    bits = dtype.size * 8
    if bits <= 32:
        wide = np.int64 if dtype.is_signed else np.uint64
        product = np.asarray(a).astype(wide) * np.asarray(b).astype(wide)
        result = (product >> bits).astype(dtype.numpy_dtype)
        return result if result.ndim else result[()]
    # 64-bit: exact Python integers.
    a_list = np.atleast_1d(np.asarray(a)).tolist()
    b_list = np.atleast_1d(np.asarray(b)).tolist()
    if len(a_list) == 1 and len(b_list) > 1:
        a_list = a_list * len(b_list)
    if len(b_list) == 1 and len(a_list) > 1:
        b_list = b_list * len(a_list)
    values = [
        ((int(x) * int(y)) >> bits) & ((1 << bits) - 1)
        for x, y in zip(a_list, b_list)
    ]
    result = np.array(values).astype(dtype.numpy_dtype)
    return result if len(values) > 1 else result[0]


def _logical_or_bitwise(numpy_bitop, numpy_logicalop):
    def implementation(a, b, dtype):
        if dtype.is_predicate:
            return numpy_logicalop(a, b)
        return numpy_bitop(a, b)

    return implementation


_BINARY_IMPL = {
    "add": lambda a, b, dt: a + b,
    "sub": lambda a, b, dt: a - b,
    "mul": lambda a, b, dt: a * b,
    "mulhi": _mulhi,
    "div": _int_div,
    "rem": _int_rem,
    "min": lambda a, b, dt: np.minimum(a, b),
    "max": lambda a, b, dt: np.maximum(a, b),
    "and": _logical_or_bitwise(np.bitwise_and, np.logical_and),
    "or": _logical_or_bitwise(np.bitwise_or, np.logical_or),
    "xor": _logical_or_bitwise(np.bitwise_xor, np.logical_xor),
    "shl": lambda a, b, dt: (
        a << _shift_mask(b, dt).astype(dt.numpy_dtype)
    ),
    "lshr": lambda a, b, dt: (
        (
            np.asarray(a).view(
                np.dtype(f"u{dt.size}")
            )
            >> _shift_mask(b, dt).astype(np.dtype(f"u{dt.size}"))
        ).view(dt.numpy_dtype)
    ),
    "ashr": lambda a, b, dt: (
        np.asarray(a).view(np.dtype(f"i{dt.size}"))
        >> _shift_mask(b, dt).astype(np.dtype(f"i{dt.size}"))
    ).view(dt.numpy_dtype),
}


def _unordered(op):
    def implementation(a, b):
        nan = np.isnan(a) | np.isnan(b)
        return op(a, b) | nan

    return implementation


_COMPARE_IMPL = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "ltu": _unordered(lambda a, b: a < b),
    "leu": _unordered(lambda a, b: a <= b),
    "gtu": _unordered(lambda a, b: a > b),
    "geu": _unordered(lambda a, b: a >= b),
    "num": lambda a, b: ~(np.isnan(a) | np.isnan(b)),
    "nan": lambda a, b: np.isnan(a) | np.isnan(b),
}


_HANDLERS = {
    BinaryOp: _WarpState._binary,
    UnaryOp: _WarpState._unary,
    FusedMultiplyAdd: _WarpState._fma,
    Compare: _WarpState._compare,
    Select: _WarpState._select,
    Convert: _WarpState._convert,
    Intrinsic: _WarpState._intrinsic,
    Load: _WarpState._load,
    Store: _WarpState._store,
    VectorLoad: _WarpState._vector_load,
    VectorStore: _WarpState._vector_store,
    AtomicRMW: _WarpState._atomic,
    ContextRead: _WarpState._context_read,
    ContextWrite: _WarpState._context_write,
    InsertElement: _WarpState._insert,
    ExtractElement: _WarpState._extract,
    Broadcast: _WarpState._broadcast,
    Reduce: _WarpState._reduce,
}

_TERMINATORS = {
    Branch: _WarpState._branch,
    CondBranch: _WarpState._cond_branch,
    Switch: _WarpState._switch,
    Yield: _WarpState._yield,
    Exit: _WarpState._exit,
    BarrierTerm: _WarpState._barrier_term,
}
