"""Executable lowering and interpretation of IR functions.

``load_function`` is this simulator's stand-in for JIT code generation.
It is a *specializing lowering pass*: every IR instruction is compiled
once, at load time, into a pre-bound Python closure — the handler is
resolved per instruction type, operand registers are renumbered to
integer slots of a flat per-warp register file, constants are
pre-converted to machine values, and the address-space dispatch of
memory operations is resolved statically. Per-instruction cycle/flop
charges are folded into per-block sums (:func:`~repro.machine.
costmodel.aggregate_block_cost`), so the interpreter inner loop is
``for op in body: op(state)`` plus one statistics update per block.

``execute`` then runs a warp of thread contexts through the lowered
function, starting at the scheduler block, until the function yields
back to the execution manager with a resume status (§3's subkernel
execution). The pre-lowering dynamic-dispatch interpreter is retained
as the ``"dispatch"`` mode: it is the executable reference the
closure path is A/B-tested against (modeled statistics must be
bit-identical between the two).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import (
    DeadlineExceeded,
    ExecutionError,
    InstructionLimitExceeded,
)
from ..ir.function import IRFunction
from ..ir.instructions import (
    AtomicRMW,
    BarrierTerm,
    BinaryOp,
    Branch,
    Broadcast,
    Compare,
    CondBranch,
    ContextRead,
    ContextWrite,
    Convert,
    Exit,
    ExtractElement,
    FusedMultiplyAdd,
    InsertElement,
    Intrinsic,
    Load,
    Reduce,
    ResumeStatus,
    Select,
    Store,
    Switch,
    UnaryOp,
    VectorLoad,
    VectorStore,
    Yield,
)
from ..ir.values import Constant, VirtualRegister
from ..ptx.types import AddressSpace, DataType
from .costmodel import (
    FunctionCostTable,
    aggregate_block_cost,
    build_cost_table,
)
from .descriptor import MachineDescription
from .memory import MemorySystem

# NumPy integer wraparound is the desired machine semantics, but only
# while guest code is executing: the error-state switch is scoped with
# ``np.errstate`` around the run loops (and the array backend's batch
# walk) instead of mutated globally, so importing repro never changes
# the host process's ``np.geterr()`` settings.
_GUEST_ERRSTATE = {
    "over": "ignore",
    "invalid": "ignore",
    "divide": "ignore",
}


def guest_errstate():
    """The numpy error-state context for guest kernel execution."""
    return np.errstate(**_GUEST_ERRSTATE)

_DEFAULT_INSTRUCTION_LIMIT = 200_000_000

#: How many executed instructions may pass between wall-clock deadline
#: checks (the check itself is one ``time.monotonic`` call).
_DEADLINE_CHECK_STRIDE = 4096


def _annotate_fault(fault, label, index) -> None:
    """Attach the program counter (block label + instruction index) to
    an escaping ExecutionError, so the execution manager can build a
    structured trap. First writer wins (the innermost frame knows the
    true fault site); exceptions with __slots__ are left unannotated."""
    if getattr(fault, "trap_label", None) is not None:
        return
    try:
        fault.trap_label = label
        fault.trap_index = index
    except (AttributeError, TypeError):  # pragma: no cover
        pass


@dataclass
class ExecutionStats:
    """Per-execution accounting consumed by the runtime statistics."""

    kernel_cycles: int = 0
    yield_cycles: int = 0
    instructions: int = 0
    flops: int = 0

    def merge(self, other: "ExecutionStats") -> None:
        self.kernel_cycles += other.kernel_cycles
        self.yield_cycles += other.yield_cycles
        self.instructions += other.instructions
        self.flops += other.flops

    def reset(self) -> None:
        """Zero all counters (pooled warp states reuse one instance)."""
        self.kernel_cycles = 0
        self.yield_cycles = 0
        self.instructions = 0
        self.flops = 0


@dataclass
class ExecutableFunction:
    """A lowered function.

    ``blocks`` holds the dynamic-dispatch form consumed by the legacy
    reference interpreter: per block, a tuple of (instruction, cycles,
    flops, overhead) records plus the terminator and its cost.

    ``compiled_blocks`` holds the closure-specialized form: per block,
    ``(ops, kernel_cycles, yield_cycles, flops, instructions,
    terminator, precise, op_indices)`` where ``ops`` is a tuple of
    pre-bound closures taking the warp state, the middle fields are the
    block's aggregated static cost, ``terminator`` is a closure
    returning either the next block label (str) or a resume status
    (int), ``precise`` marks blocks whose ops carry their own
    per-instruction accounting (``%clock`` readers), and ``op_indices``
    maps each op back to the block instruction index it starts at (the
    trap PC — fused runs cover several instructions).
    """

    function: IRFunction
    cost_table: FunctionCostTable
    blocks: Dict[str, tuple] = field(default_factory=dict)
    compiled_blocks: Dict[str, tuple] = field(default_factory=dict)
    #: register name -> slot in the flat per-warp register file
    register_slots: Dict[str, int] = field(default_factory=dict)
    register_count: int = 0
    entry_label: str = ""
    #: Batched array lowering (``machine.array_backend``): per block,
    #: ``(ops, terminator)`` operating on all resident warps at once.
    #: ``None`` when the loading backend does not build one (plain
    #: interpreter, sanitized/dispatch modes, or a function the array
    #: translator excludes, e.g. one containing atomics).
    array_blocks: Optional[Dict[str, tuple]] = None

    @property
    def name(self) -> str:
        return self.function.name

    @property
    def warp_size(self) -> int:
        return self.function.warp_size


@dataclass
class Continuation:
    """Mid-kernel hand-off from the array backend to the closure path.

    When a batched warp leaves the uniform array region (a divergent
    terminator, or a block with no array lowering), the batch runner
    builds one Continuation per warp: the label to continue from, the
    warp's register rows extracted from the batched register file, and
    the counters the batched prefix already accumulated. ``execute``
    seeds a warp state with them and resumes ``run_compiled`` from the
    label — with ``at_terminator`` set, the block body already ran
    batched and only the terminator remains to evaluate.
    """

    label: str
    at_terminator: bool
    executed: int
    kernel_cycles: int
    yield_cycles: int
    flops: int
    #: ``(slot, value)`` pairs to transplant into the register file.
    registers: Tuple = ()


#: Lowering/execution strategies of :class:`Interpreter`.
INTERPRETER_MODES = ("closure", "dispatch")


class Interpreter:
    """Executes lowered IR functions against a memory system.

    ``mode`` selects the execution strategy: ``"closure"`` (default)
    runs the closure-specialized fast path produced at load time;
    ``"dispatch"`` runs the legacy per-instruction dynamic-dispatch
    reference path. Both are lowered by :meth:`load_function` and
    produce bit-identical modeled statistics and memory effects.
    """

    def __init__(
        self,
        machine: MachineDescription,
        memory: MemorySystem,
        instruction_limit: int = _DEFAULT_INSTRUCTION_LIMIT,
        mode: str = "closure",
        sanitizer=None,
    ):
        if mode not in INTERPRETER_MODES:
            raise ValueError(
                f"unknown interpreter mode {mode!r}; "
                f"expected one of {INTERPRETER_MODES}"
            )
        if sanitizer is not None and mode != "closure":
            raise ValueError(
                "the sanitizer is a closure-lowering variant; "
                "dispatch mode cannot sanitize"
            )
        self.machine = machine
        self.memory = memory
        self.instruction_limit = instruction_limit
        self.mode = mode
        #: Attached :class:`~repro.sanitizer.KernelSanitizer`. When set,
        #: :meth:`load_function` lowers memory instructions to checked
        #: closures; ``None`` keeps the fast path untouched.
        self.sanitizer = sanitizer

    # -- lowering ("code generation") ------------------------------------

    def load_function(self, function: IRFunction) -> ExecutableFunction:
        """Lower ``function`` for execution.

        Builds both executable forms (see :class:`ExecutableFunction`):
        the closure-specialized fast path and the dynamic-dispatch
        reference path, sharing one static cost table. Lowering happens
        once per specialization — the translation cache keeps the
        returned executable, so launches never re-lower.
        """
        cost_table = build_cost_table(function, self.machine)
        slots = function.register_slots(refresh=True)
        executable = ExecutableFunction(
            function=function,
            cost_table=cost_table,
            register_slots=slots,
            register_count=len(slots),
            entry_label=function.entry_label,
        )
        for block in function.ordered_blocks():
            body = []
            for instruction in block.instructions:
                cost = cost_table.cost_of(instruction)
                body.append(
                    (
                        instruction,
                        cost.cycles,
                        cost.flops,
                        bool(getattr(instruction, "overhead", False)),
                    )
                )
            terminator = block.terminator
            terminator_cost = cost_table.cost_of(terminator)
            executable.blocks[block.label] = (
                tuple(body),
                terminator,
                terminator_cost.cycles,
                bool(getattr(terminator, "overhead", False)),
            )
            executable.compiled_blocks[block.label] = _compile_block(
                block, cost_table, slots, self.memory, self.sanitizer
            )
        return executable

    # -- execution ---------------------------------------------------------

    def new_state(self) -> "_WarpState":
        """A reusable warp-execution state (pool one per execution
        manager and pass it to :meth:`execute` to avoid per-warp
        allocation of the register file and statistics)."""
        return _WarpState(self)

    def execute(
        self,
        executable: ExecutableFunction,
        warp,
        param_base: int,
        stats: Optional[ExecutionStats] = None,
        state: Optional["_WarpState"] = None,
        continuation: Optional["Continuation"] = None,
    ) -> int:
        """Run ``warp`` through ``executable`` from its scheduler block.

        Returns the resume status; each context's ``resume_point`` has
        been updated by the exit handlers before a branch/barrier yield.
        ``state`` may be a pooled :meth:`new_state` instance to reuse
        across executions; per-warp results are then available on
        ``state.stats`` (also merged into ``stats`` when given).

        ``continuation`` resumes the closure fast path mid-kernel: the
        array backend hands over a :class:`Continuation` when a batched
        warp leaves the uniform region, carrying the register rows and
        accumulated counters of the batched prefix (closure mode only).
        """
        if state is None:
            state = _WarpState(self)
        state.reset(executable, warp, param_base)
        with guest_errstate():
            if continuation is not None:
                status = state.run_continuation(continuation)
            elif self.mode == "closure":
                status = state.run_compiled()
            else:
                status = state.run()
        if stats is not None:
            stats.merge(state.stats)
        return status


class _WarpState:
    """Mutable state of one warp execution.

    Instances are reusable: :meth:`reset` rebinds them to a new
    (executable, warp) pair, so execution managers pool one state
    object instead of reallocating registers and statistics per warp.
    The closure fast path reads/writes ``regs`` (a flat list indexed by
    the executable's register slots); the dispatch reference path uses
    the name-keyed ``registers`` dict.
    """

    __slots__ = (
        "machine",
        "memory",
        "limit",
        "deadline",
        "executable",
        "function",
        "warp",
        "contexts",
        "param_base",
        "warp_size",
        "registers",
        "regs",
        "stats",
        "_constants",
    )

    def __init__(
        self, interpreter, executable=None, warp=None, param_base=0
    ):
        self.machine = interpreter.machine
        self.memory = interpreter.memory
        self.limit = interpreter.instruction_limit
        #: Optional wall-clock deadline (``time.monotonic`` value) the
        #: watchdog installs per launch; checked every few thousand
        #: executed instructions so a non-yielding loop cannot outlive
        #: ``ExecutionConfig.launch_timeout_s``.
        self.deadline = None
        self.stats = ExecutionStats()
        self.registers: Dict[str, object] = {}
        self.regs: List[object] = []
        self._constants: Dict[int, object] = {}
        self.executable = None
        self.function = None
        self.warp = None
        self.contexts = ()
        self.param_base = 0
        self.warp_size = 0
        if executable is not None:
            self.reset(executable, warp, param_base)

    def reset(self, executable, warp, param_base) -> None:
        """Rebind this state to a fresh warp execution."""
        self.executable = executable
        self.function = executable.function
        self.warp = warp
        self.contexts = warp.contexts
        self.param_base = param_base
        self.warp_size = executable.warp_size
        self.stats.reset()
        self.registers = {}
        self._constants = {}
        self.regs = [None] * executable.register_count
        if len(self.contexts) != self.warp_size:
            raise ExecutionError(
                f"{executable.name}: warp of {len(self.contexts)} threads "
                f"given to a warp-size-{self.warp_size} specialization"
            )

    # -- value plumbing ------------------------------------------------------

    def fetch(self, value):
        if isinstance(value, VirtualRegister):
            current = self.registers.get(value.name)
            if current is None:
                current = self._default(value)
                self.registers[value.name] = current
            return current
        cached = self._constants.get(id(value))
        if cached is None:
            cached = value.dtype.numpy_dtype.type(value.value)
            self._constants[id(value)] = cached
        return cached

    def fetch_typed(self, value, dtype):
        """Fetch and bit-reinterpret to the instruction's type (PTX
        registers are untyped bit containers; instructions impose the
        interpretation, e.g. ``max.s32`` on a ``.u32`` register)."""
        fetched = self.fetch(value)
        wanted = dtype.numpy_dtype
        current = getattr(fetched, "dtype", None)
        if current is None or current == wanted:
            return fetched
        if dtype.is_predicate or current == np.bool_:
            return fetched
        if current.itemsize == wanted.itemsize:
            return fetched.view(wanted)
        return fetched.astype(wanted)

    def _default(self, register: VirtualRegister):
        dtype = register.dtype.numpy_dtype
        if register.width > 1:
            return np.zeros(register.width, dtype=dtype)
        return dtype.type(0)

    def set(self, register: VirtualRegister, value) -> None:
        self.registers[register.name] = value

    # -- address resolution ----------------------------------------------

    def resolve_address(self, space, base, offset: int, lane: int) -> int:
        address = int(base) + offset
        if space is AddressSpace.global_:
            return address
        if space is AddressSpace.param:
            return self.param_base + address
        if space is AddressSpace.shared:
            return self.contexts[lane].shared_base + address
        if space is AddressSpace.local:
            return self.contexts[lane].local_base + address
        raise ExecutionError(f"unresolvable address space {space}")

    # -- main loop ---------------------------------------------------------

    def run(self) -> int:
        blocks = self.executable.blocks
        label = self.function.entry_label
        executed = 0
        stats = self.stats
        deadline = self.deadline
        next_deadline_check = _DEADLINE_CHECK_STRIDE
        position = -1
        try:
            while True:
                body, terminator, terminator_cycles, terminator_overhead = (
                    blocks[label]
                )
                position = -1
                for position, (
                    instruction, cycles, flops, overhead
                ) in enumerate(body):
                    _HANDLERS[type(instruction)](self, instruction)
                    if overhead:
                        stats.yield_cycles += cycles
                    else:
                        stats.kernel_cycles += cycles
                    stats.flops += flops
                position = len(body)
                executed += len(body) + 1
                if executed > self.limit:
                    raise InstructionLimitExceeded(
                        f"{self.executable.name}: instruction limit "
                        f"exceeded ({self.limit}); possible infinite loop"
                    )
                if deadline is not None and executed >= next_deadline_check:
                    if time.monotonic() > deadline:
                        raise DeadlineExceeded(
                            f"{self.executable.name}: wall-clock deadline "
                            f"exceeded mid-warp"
                        )
                    next_deadline_check = executed + _DEADLINE_CHECK_STRIDE
                stats.instructions = executed
                if terminator_overhead:
                    stats.yield_cycles += terminator_cycles
                else:
                    stats.kernel_cycles += terminator_cycles
                next_label = _TERMINATORS[type(terminator)](
                    self, terminator
                )
                if isinstance(next_label, int):
                    stats.instructions = executed
                    return next_label
                label = next_label
        except ExecutionError as fault:
            _annotate_fault(fault, label, position)
            raise

    def run_continuation(self, continuation: "Continuation") -> int:
        """Resume the closure fast path mid-kernel (the array backend's
        fallback): seed the statistics with the batched prefix's
        counters, transplant the warp's register rows, then continue
        from the continuation's label. With ``at_terminator`` set the
        block body already ran batched, so only its terminator is
        evaluated before the walk continues."""
        stats = self.stats
        stats.kernel_cycles = continuation.kernel_cycles
        stats.yield_cycles = continuation.yield_cycles
        stats.flops = continuation.flops
        stats.instructions = continuation.executed
        regs = self.regs
        for slot, value in continuation.registers:
            regs[slot] = value
        label = continuation.label
        if continuation.at_terminator:
            compiled = self.executable.compiled_blocks[label]
            try:
                result = compiled[5](self)
            except ExecutionError as fault:
                block = self.function.blocks.get(label)
                index = (
                    len(block.instructions) if block is not None else -1
                )
                _annotate_fault(fault, label, index)
                raise
            if type(result) is int:
                return result
            label = result
        return self.run_compiled(
            start_label=label, start_executed=continuation.executed
        )

    def run_compiled(
        self,
        start_label: Optional[str] = None,
        start_executed: int = 0,
    ) -> int:
        """The closure fast path: one pre-bound closure per instruction
        and one statistics update per block executed. Cycle/flop sums
        accumulate in locals and flush to ``stats`` lazily — before any
        precise block (whose ops observe the counters mid-block via
        ``%clock``) and at exit. ``start_label``/``start_executed``
        resume mid-kernel (array-backend fallback); counters already in
        ``stats`` are kept and accumulated onto."""
        blocks = self.executable.compiled_blocks
        label = (
            self.executable.entry_label
            if start_label is None
            else start_label
        )
        executed = start_executed
        stats = self.stats
        limit = self.limit
        deadline = self.deadline
        next_deadline_check = _DEADLINE_CHECK_STRIDE
        kernel_cycles = yield_cycles = flops = 0
        op_position = -1
        op_indices = ()
        try:
            while True:
                (
                    ops,
                    block_kernel_cycles,
                    block_yield_cycles,
                    block_flops,
                    count,
                    terminator,
                    precise,
                    op_indices,
                ) = blocks[label]
                if precise:
                    stats.kernel_cycles += kernel_cycles
                    stats.yield_cycles += yield_cycles
                    stats.flops += flops
                    kernel_cycles = yield_cycles = flops = 0
                op_position = -1
                for op_position, op in enumerate(ops):
                    op(self)
                op_position = -2  # past the body: faults are in the
                # terminator (or the bookkeeping) below
                kernel_cycles += block_kernel_cycles
                yield_cycles += block_yield_cycles
                flops += block_flops
                executed += count
                if executed > limit:
                    raise InstructionLimitExceeded(
                        f"{self.executable.name}: instruction limit "
                        f"exceeded ({limit}); possible infinite loop"
                    )
                if deadline is not None and executed >= next_deadline_check:
                    if time.monotonic() > deadline:
                        raise DeadlineExceeded(
                            f"{self.executable.name}: wall-clock deadline "
                            f"exceeded mid-warp"
                        )
                    next_deadline_check = (
                        executed + _DEADLINE_CHECK_STRIDE
                    )
                result = terminator(self)
                if type(result) is int:
                    stats.kernel_cycles += kernel_cycles
                    stats.yield_cycles += yield_cycles
                    stats.flops += flops
                    stats.instructions = executed
                    return result
                label = result
        except ExecutionError as fault:
            if op_position == -2:
                block = self.function.blocks.get(label)
                index = (
                    len(block.instructions) if block is not None else -1
                )
            elif 0 <= op_position < len(op_indices):
                index = op_indices[op_position]
            else:
                index = -1
            _annotate_fault(fault, label, index)
            # Counters accumulated in locals would otherwise be lost;
            # flush them so a trapped launch still reports its partial
            # cycle/instruction work.
            stats.kernel_cycles += kernel_cycles
            stats.yield_cycles += yield_cycles
            stats.flops += flops
            stats.instructions = executed
            raise

    # -- instruction implementations ---------------------------------------

    def _binary(self, inst: BinaryOp) -> None:
        a = self.fetch_typed(inst.a, inst.dtype)
        b = self.fetch_typed(inst.b, inst.dtype)
        self.set(inst.dst, _BINARY_IMPL[inst.op](a, b, inst.dtype))

    def _unary(self, inst: UnaryOp) -> None:
        a = self.fetch_typed(inst.a, inst.dtype)
        op = inst.op
        if op == "mov":
            result = a
            if (
                inst.dst.width > 1
                and not (isinstance(a, np.ndarray) and a.ndim == 1)
            ):
                result = np.full(
                    inst.dst.width, a, dtype=inst.dtype.numpy_dtype
                )
        elif op == "neg":
            result = np.negative(a)
        elif op == "abs":
            result = np.abs(a)
        elif op == "not":
            if inst.dtype.is_predicate:
                result = np.logical_not(a)
            else:
                result = np.invert(a)
        elif op == "cnot":
            result = np.where(
                a == 0, inst.dtype.numpy_dtype.type(1),
                inst.dtype.numpy_dtype.type(0),
            )
        else:
            raise ExecutionError(f"unknown unary op {op}")
        self.set(inst.dst, result)

    def _fma(self, inst: FusedMultiplyAdd) -> None:
        a = self.fetch_typed(inst.a, inst.dtype)
        b = self.fetch_typed(inst.b, inst.dtype)
        c = self.fetch_typed(inst.c, inst.dtype)
        self.set(inst.dst, a * b + c)

    def _compare(self, inst: Compare) -> None:
        a = self.fetch_typed(inst.a, inst.dtype)
        b = self.fetch_typed(inst.b, inst.dtype)
        self.set(inst.dst, _COMPARE_IMPL[inst.op](a, b))

    def _select(self, inst: Select) -> None:
        predicate = self.fetch(inst.predicate)
        a = self.fetch(inst.a)
        b = self.fetch(inst.b)
        if inst.dst.width > 1:
            result = np.where(predicate, a, b).astype(
                inst.dtype.numpy_dtype
            )
        else:
            result = a if bool(predicate) else b
            result = inst.dtype.numpy_dtype.type(result)
        self.set(inst.dst, result)

    def _convert(self, inst: Convert) -> None:
        source = self.fetch_typed(inst.src, inst.src_type)
        destination_dtype = inst.dst_type
        numpy_dtype = destination_dtype.numpy_dtype
        if destination_dtype.is_float or not inst.src_type.is_float:
            result = np.asarray(source).astype(numpy_dtype)
        else:
            round_fn = _ROUNDING_FNS.get(
                inst.rounding or "rzi", np.trunc
            )
            result = _saturating_float_to_int(
                source, round_fn, numpy_dtype
            )
        if result.ndim == 0:
            result = result[()]
        self.set(inst.dst, result)

    def _intrinsic(self, inst: Intrinsic) -> None:
        argument = self.fetch(inst.args[0])
        name = inst.name
        if name == "sqrt":
            result = np.sqrt(argument)
        elif name == "rsqrt":
            result = 1.0 / np.sqrt(argument)
        elif name == "rcp":
            result = 1.0 / np.asarray(argument)
        elif name == "sin":
            result = np.sin(argument)
        elif name == "cos":
            result = np.cos(argument)
        elif name == "ex2":
            result = np.exp2(argument)
        elif name == "lg2":
            result = np.log2(argument)
        else:
            raise ExecutionError(f"unknown intrinsic {name}")
        numpy_dtype = inst.dtype.numpy_dtype
        result = np.asarray(result).astype(numpy_dtype)
        if result.ndim == 0:
            result = result[()]
        self.set(inst.dst, result)

    def _load(self, inst: Load) -> None:
        address = self.resolve_address(
            inst.space, self.fetch(inst.base), inst.offset, inst.lane
        )
        self.set(inst.dst, self.memory.load(inst.dtype, address))

    def _store(self, inst: Store) -> None:
        address = self.resolve_address(
            inst.space, self.fetch(inst.base), inst.offset, inst.lane
        )
        self.memory.store(inst.dtype, address, self.fetch(inst.value))

    def _vector_load(self, inst: VectorLoad) -> None:
        address = self.resolve_address(
            inst.space, self.fetch(inst.base), inst.offset, inst.lane
        )
        self.set(
            inst.dst,
            self.memory.read_array(
                address, inst.dtype.numpy_dtype, inst.dst.width
            ),
        )

    def _vector_store(self, inst: VectorStore) -> None:
        address = self.resolve_address(
            inst.space, self.fetch(inst.base), inst.offset, inst.lane
        )
        value = self.fetch(inst.value)
        width = self.warp_size
        array = np.asarray(value, dtype=inst.dtype.numpy_dtype)
        if array.ndim == 0:
            array = np.full(
                width, array, dtype=inst.dtype.numpy_dtype
            )
        self.memory.write_array(address, array)

    def _atomic(self, inst: AtomicRMW) -> None:
        address = self.resolve_address(
            inst.space, self.fetch(inst.base), inst.offset, inst.lane
        )
        old = self.memory.load(inst.dtype, address)
        operand = self.fetch(inst.value)
        op = inst.op
        if op == "add":
            new = old + operand
        elif op == "min":
            new = min(old, operand)
        elif op == "max":
            new = max(old, operand)
        elif op == "exch":
            new = operand
        elif op == "and":
            new = old & operand
        elif op == "or":
            new = old | operand
        elif op == "xor":
            new = old ^ operand
        elif op == "inc":
            new = 0 if old >= operand else old + 1
        elif op == "dec":
            new = operand if (old == 0 or old > operand) else old - 1
        elif op == "cas":
            compare = self.fetch(inst.compare)
            new = operand if old == compare else old
        else:
            raise ExecutionError(f"unknown atomic op {op}")
        self.memory.store(inst.dtype, address, new)
        if inst.dst is not None:
            self.set(inst.dst, old)

    def _context_read(self, inst: ContextRead) -> None:
        context = self.contexts[inst.lane]
        field_name = inst.field_name
        value = _CONTEXT_GETTERS[field_name](context, self, inst.lane)
        self.set(inst.dst, inst.dtype.numpy_dtype.type(value))

    def _context_write(self, inst: ContextWrite) -> None:
        context = self.contexts[inst.lane]
        if inst.field_name == "resume_point":
            context.resume_point = int(self.fetch(inst.value))
        else:
            raise ExecutionError(
                f"unwritable context field {inst.field_name}"
            )

    def _insert(self, inst: InsertElement) -> None:
        if inst.src is None:
            vector = np.zeros(
                inst.dst.width, dtype=inst.dst.dtype.numpy_dtype
            )
        else:
            vector = np.array(
                self.fetch(inst.src), dtype=inst.dst.dtype.numpy_dtype
            )
            if vector.ndim == 0:
                vector = np.full(
                    inst.dst.width, vector,
                    dtype=inst.dst.dtype.numpy_dtype,
                )
        vector[inst.index] = self.fetch(inst.scalar)
        self.set(inst.dst, vector)

    def _extract(self, inst: ExtractElement) -> None:
        vector = self.fetch(inst.src)
        if isinstance(vector, np.ndarray) and vector.ndim == 1:
            self.set(inst.dst, vector[inst.index])
        else:
            self.set(inst.dst, vector)

    def _broadcast(self, inst: Broadcast) -> None:
        scalar = self.fetch(inst.src)
        self.set(
            inst.dst,
            np.full(
                inst.dst.width, scalar, dtype=inst.dst.dtype.numpy_dtype
            ),
        )

    def _reduce(self, inst: Reduce) -> None:
        source = np.asarray(self.fetch(inst.src))
        op = inst.op
        if op == "add":
            result = int(np.count_nonzero(source)) if (
                source.dtype == np.bool_
            ) else int(source.sum())
        elif op == "any":
            result = bool(source.any())
        elif op == "all":
            result = bool(source.all())
        elif op == "uni":
            result = bool((source == source.flat[0]).all())
        elif op == "ballot":
            bits = 0
            for index, value in enumerate(np.atleast_1d(source)):
                if value:
                    bits |= 1 << index
            result = bits
        else:
            raise ExecutionError(f"unknown reduction {op}")
        self.set(inst.dst, inst.dst.dtype.numpy_dtype.type(result))

    # -- terminators -------------------------------------------------------

    def _branch(self, inst: Branch):
        return inst.target

    def _cond_branch(self, inst: CondBranch):
        predicate = self.fetch(inst.predicate)
        return inst.taken if bool(predicate) else inst.fallthrough

    def _switch(self, inst: Switch):
        value = int(self.fetch(inst.value))
        return inst.cases.get(value, inst.default)

    def _yield(self, inst: Yield):
        return inst.status

    def _exit(self, inst: Exit):
        return ResumeStatus.THREAD_EXIT

    def _barrier_term(self, inst: BarrierTerm):
        raise ExecutionError(
            "raw barrier terminator reached the machine; kernels must be "
            "specialized through the vectorizer first"
        )


# -- context field getters ----------------------------------------------


def _context_getter(attribute, axis):
    def getter(context, state, lane):
        return getattr(context, attribute)[axis]

    return getter


_CONTEXT_GETTERS = {
    "tid.x": _context_getter("tid", 0),
    "tid.y": _context_getter("tid", 1),
    "tid.z": _context_getter("tid", 2),
    "ntid.x": _context_getter("ntid", 0),
    "ntid.y": _context_getter("ntid", 1),
    "ntid.z": _context_getter("ntid", 2),
    "ctaid.x": _context_getter("ctaid", 0),
    "ctaid.y": _context_getter("ctaid", 1),
    "ctaid.z": _context_getter("ctaid", 2),
    "nctaid.x": _context_getter("nctaid", 0),
    "nctaid.y": _context_getter("nctaid", 1),
    "nctaid.z": _context_getter("nctaid", 2),
    "laneid": lambda context, state, lane: lane,
    "warpid": lambda context, state, lane: state.warp.warp_id,
    "clock": lambda context, state, lane: (
        state.stats.kernel_cycles + state.stats.yield_cycles
    ),
    "resume_point": lambda context, state, lane: context.resume_point,
}


# -- conversion helpers ----------------------------------------------------


_ROUNDING_FNS = {
    "rni": np.rint,
    "rmi": np.floor,
    "rpi": np.ceil,
    "rzi": np.trunc,
}


def _saturating_float_to_int(source, round_fn, numpy_dtype):
    """PTX float→integer ``cvt``: round, then *saturate* to the
    destination range; NaN converts to 0. A plain ``astype`` wraps
    modulo 2**N (and is undefined for NaN), so out-of-range lanes are
    masked to 0 before the cast and patched with the saturated bound
    afterwards. Returns an ndarray (0-d for scalar input).

    The range comparison runs in float64. For 64-bit destinations the
    exact integer bounds are not representable there: the nearest
    float64 at or above ``iinfo.max`` is used as the high cutoff, so
    any float that would overflow the cast still saturates.
    """
    array = np.asarray(source)
    rounded = round_fn(array)
    info = np.iinfo(numpy_dtype)
    compare = rounded.astype(np.float64)
    # float64(info.max) rounds *up* to 2**63 / 2**64 for the 64-bit
    # types; >= keeps the cutoff exact in every width.
    high_cutoff = np.float64(info.max)
    low_cutoff = np.float64(info.min)
    nan_mask = np.isnan(compare)
    high_mask = compare >= high_cutoff
    low_mask = compare <= low_cutoff
    out_of_range = nan_mask | high_mask | low_mask
    safe = np.where(out_of_range, 0.0, rounded)
    result = safe.astype(numpy_dtype)
    if out_of_range.any():
        result = np.where(
            high_mask, numpy_dtype.type(info.max), result
        )
        result = np.where(
            low_mask, numpy_dtype.type(info.min), result
        )
        result = result.astype(numpy_dtype)
    return result


# -- binary operator implementations -------------------------------------


def _shift_amount(b):
    """Shift counts as unsigned 64-bit values (negative counts on a
    signed operand reinterpret as huge, clamping like PTX)."""
    b = np.asarray(b)
    if b.dtype.kind == "i":
        b = b.view(np.dtype(f"u{b.dtype.itemsize}"))
    return b.astype(np.uint64)


def _clamped_shl(a, b, dtype: DataType):
    """PTX ``shl``: shift amounts >= the type width yield 0 (no modulo
    reduction). The hardware shifter clamps, it does not wrap."""
    bits = dtype.size * 8
    amount = _shift_amount(b)
    safe = np.minimum(amount, np.uint64(bits - 1))
    shifted = a << safe.astype(dtype.numpy_dtype)
    result = np.where(amount >= bits, np.zeros_like(shifted), shifted)
    return result if result.ndim else result[()]


def _clamped_lshr(a, b, dtype: DataType):
    """PTX logical ``shr``: amounts >= the type width yield 0."""
    bits = dtype.size * 8
    unsigned = np.dtype(f"u{dtype.size}")
    amount = _shift_amount(b)
    safe = np.minimum(amount, np.uint64(bits - 1))
    shifted = np.asarray(a).view(unsigned) >> safe.astype(unsigned)
    result = np.where(
        amount >= bits, np.zeros_like(shifted), shifted
    ).view(dtype.numpy_dtype)
    return result if result.ndim else result[()]


def _clamped_ashr(a, b, dtype: DataType):
    """PTX arithmetic ``shr``: amounts >= the type width fill with the
    sign bit — identical to shifting by width-1, so clamping the
    amount is the whole fix."""
    bits = dtype.size * 8
    signed = np.dtype(f"i{dtype.size}")
    safe = np.minimum(_shift_amount(b), np.uint64(bits - 1))
    result = (
        np.asarray(a).view(signed) >> safe.astype(signed)
    ).view(dtype.numpy_dtype)
    return result if result.ndim else result[()]


def _int_div(a, b, dtype):
    if dtype.is_float:
        return np.asarray(a) / np.asarray(b)
    a = np.asarray(a)
    b = np.asarray(b)
    safe_b = np.where(b == 0, 1, b)
    quotient = a // safe_b
    remainder = a - quotient * safe_b
    if dtype.is_signed:
        adjust = (remainder != 0) & ((a < 0) != (b < 0))
        quotient = quotient + adjust
    result = np.where(b == 0, 0, quotient).astype(dtype.numpy_dtype)
    return result if result.ndim else result[()]


def _int_rem(a, b, dtype):
    if dtype.is_float:
        return np.fmod(a, b)
    quotient = _int_div(a, b, dtype)
    b = np.asarray(b)
    result = np.where(
        b == 0, 0, np.asarray(a) - np.asarray(quotient) * b
    ).astype(dtype.numpy_dtype)
    return result if result.ndim else result[()]


def _mulhi(a, b, dtype):
    bits = dtype.size * 8
    if bits <= 32:
        wide = np.int64 if dtype.is_signed else np.uint64
        product = np.asarray(a).astype(wide) * np.asarray(b).astype(wide)
        result = (product >> bits).astype(dtype.numpy_dtype)
        return result if result.ndim else result[()]
    # 64-bit: exact Python integers.
    a_list = np.atleast_1d(np.asarray(a)).tolist()
    b_list = np.atleast_1d(np.asarray(b)).tolist()
    if len(a_list) == 1 and len(b_list) > 1:
        a_list = a_list * len(b_list)
    if len(b_list) == 1 and len(a_list) > 1:
        b_list = b_list * len(a_list)
    values = [
        ((int(x) * int(y)) >> bits) & ((1 << bits) - 1)
        for x, y in zip(a_list, b_list)
    ]
    result = np.array(values).astype(dtype.numpy_dtype)
    return result if len(values) > 1 else result[0]


def _logical_or_bitwise(numpy_bitop, numpy_logicalop):
    def implementation(a, b, dtype):
        if dtype.is_predicate:
            return numpy_logicalop(a, b)
        return numpy_bitop(a, b)

    return implementation


_BINARY_IMPL = {
    "add": lambda a, b, dt: a + b,
    "sub": lambda a, b, dt: a - b,
    "mul": lambda a, b, dt: a * b,
    "mulhi": _mulhi,
    "div": _int_div,
    "rem": _int_rem,
    "min": lambda a, b, dt: np.minimum(a, b),
    "max": lambda a, b, dt: np.maximum(a, b),
    "and": _logical_or_bitwise(np.bitwise_and, np.logical_and),
    "or": _logical_or_bitwise(np.bitwise_or, np.logical_or),
    "xor": _logical_or_bitwise(np.bitwise_xor, np.logical_xor),
    "shl": _clamped_shl,
    "lshr": _clamped_lshr,
    "ashr": _clamped_ashr,
}


def _unordered(op):
    def implementation(a, b):
        nan = np.isnan(a) | np.isnan(b)
        return op(a, b) | nan

    return implementation


_COMPARE_IMPL = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "ltu": _unordered(lambda a, b: a < b),
    "leu": _unordered(lambda a, b: a <= b),
    "gtu": _unordered(lambda a, b: a > b),
    "geu": _unordered(lambda a, b: a >= b),
    "num": lambda a, b: ~(np.isnan(a) | np.isnan(b)),
    "nan": lambda a, b: np.isnan(a) | np.isnan(b),
}


_HANDLERS = {
    BinaryOp: _WarpState._binary,
    UnaryOp: _WarpState._unary,
    FusedMultiplyAdd: _WarpState._fma,
    Compare: _WarpState._compare,
    Select: _WarpState._select,
    Convert: _WarpState._convert,
    Intrinsic: _WarpState._intrinsic,
    Load: _WarpState._load,
    Store: _WarpState._store,
    VectorLoad: _WarpState._vector_load,
    VectorStore: _WarpState._vector_store,
    AtomicRMW: _WarpState._atomic,
    ContextRead: _WarpState._context_read,
    ContextWrite: _WarpState._context_write,
    InsertElement: _WarpState._insert,
    ExtractElement: _WarpState._extract,
    Broadcast: _WarpState._broadcast,
    Reduce: _WarpState._reduce,
}

_TERMINATORS = {
    Branch: _WarpState._branch,
    CondBranch: _WarpState._cond_branch,
    Switch: _WarpState._switch,
    Yield: _WarpState._yield,
    Exit: _WarpState._exit,
    BarrierTerm: _WarpState._barrier_term,
}


# ---------------------------------------------------------------------------
# Closure-specialized lowering (the fast path built by load_function)
# ---------------------------------------------------------------------------
#
# Everything static about an instruction is resolved here, once, at
# load time: the handler (one compile function per instruction type),
# operand register slots, machine-value constants, dtype objects, and
# the address-space dispatch of memory operations. What remains per
# execution is only what genuinely varies per warp: the register file,
# the thread contexts, and the parameter segment base.


def _machine_constant(value: Constant):
    """Pre-convert an IR constant to its machine (NumPy) value."""
    return value.dtype.numpy_dtype.type(value.value)


def _typed_constant(value: Constant, dtype: DataType):
    """A constant as seen through ``fetch_typed``'s bit
    reinterpretation, computed once at lowering time."""
    fetched = _machine_constant(value)
    wanted = dtype.numpy_dtype
    current = fetched.dtype
    if current == wanted:
        return fetched
    if dtype.is_predicate or current == np.bool_:
        return fetched
    if current.itemsize == wanted.itemsize:
        return fetched.view(wanted)
    return fetched.astype(wanted)


def _raw_reader(value, slots):
    """Compile an untyped operand accessor: ``read(regs) -> value``."""
    if isinstance(value, Constant):
        constant = _machine_constant(value)

        def read(regs, constant=constant):
            return constant

        return read
    slot = slots[value.name]
    if value.width > 1:
        width = value.width
        numpy_dtype = value.dtype.numpy_dtype

        def read(regs):
            current = regs[slot]
            if current is None:
                current = regs[slot] = np.zeros(width, dtype=numpy_dtype)
            return current

    else:
        zero = value.dtype.numpy_dtype.type(0)

        def read(regs):
            current = regs[slot]
            if current is None:
                current = regs[slot] = zero
            return current

    return read


def _typed_reader(value, slots, dtype: DataType):
    """Compile a typed operand accessor replicating ``fetch_typed``:
    registers are untyped bit containers, the instruction's dtype
    imposes the interpretation. Single-layer closures: the register
    lookup, lazy default, and bit reinterpretation are one call."""
    if isinstance(value, Constant):
        constant = _typed_constant(value, dtype)

        def read(regs, constant=constant):
            return constant

        return read
    slot = slots[value.name]
    wanted = dtype.numpy_dtype
    predicate = dtype.is_predicate
    if value.width > 1:
        width = value.width
        stored_dtype = value.dtype.numpy_dtype

        def default(regs):
            fetched = regs[slot] = np.zeros(width, dtype=stored_dtype)
            return fetched

    else:
        zero = value.dtype.numpy_dtype.type(0)

        def default(regs):
            regs[slot] = zero
            return zero

    def read(regs):
        fetched = regs[slot]
        if fetched is None:
            fetched = default(regs)
        current = getattr(fetched, "dtype", None)
        if current is wanted or current is None or current == wanted:
            return fetched
        if predicate or current == np.bool_:
            return fetched
        if current.itemsize == wanted.itemsize:
            return fetched.view(wanted)
        return fetched.astype(wanted)

    return read


def _address_reader(inst, slots):
    """Compile the address computation of a memory instruction with the
    address-space dispatch resolved statically (and the whole address
    folded to a constant when the base is one)."""
    space = inst.space
    offset = inst.offset
    lane = inst.lane
    base = inst.base
    if isinstance(base, Constant):
        static = int(_machine_constant(base)) + offset
        if space is AddressSpace.global_:
            return lambda state: static
        if space is AddressSpace.param:
            return lambda state: state.param_base + static
        if space is AddressSpace.shared:
            return lambda state: (
                state.contexts[lane].shared_base + static
            )
        if space is AddressSpace.local:
            return lambda state: (
                state.contexts[lane].local_base + static
            )
        raise ExecutionError(f"unresolvable address space {space}")
    read = _raw_reader(base, slots)
    if space is AddressSpace.global_:
        return lambda state: int(read(state.regs)) + offset
    if space is AddressSpace.param:
        return lambda state: (
            state.param_base + int(read(state.regs)) + offset
        )
    if space is AddressSpace.shared:
        return lambda state: (
            state.contexts[lane].shared_base
            + int(read(state.regs))
            + offset
        )
    if space is AddressSpace.local:
        return lambda state: (
            state.contexts[lane].local_base
            + int(read(state.regs))
            + offset
        )
    raise ExecutionError(f"unresolvable address space {space}")


# -- per-type instruction compilers ---------------------------------------


def _fused_op(dst, operands, slots, dtype, expr, fallback, extra=None):
    """Generate a fused fast-path closure for an ALU instruction.

    ``operands`` is a list of ``(varname, value)`` pairs; constants are
    pre-converted and bound into the generated code's namespace,
    register operands become inline ``regs[slot]`` reads guarded by a
    dtype-identity check. On any guard failure (lazy default still
    ``None``, a reinterpreting read, a Python ``bool`` predicate) the
    generated code defers to ``fallback``, which routes through the
    full ``fetch_typed`` readers. Returns ``None`` when no register
    operand exists to guard (all-constant operands).
    """
    namespace = {"wanted": dtype.numpy_dtype, "fallback": fallback}
    if extra:
        namespace.update(extra)
    assigns = []
    guards = []
    for varname, value in operands:
        if isinstance(value, Constant):
            namespace[f"const_{varname}"] = _typed_constant(
                value, dtype
            )
            assigns.append(f"{varname} = const_{varname}")
        else:
            assigns.append(f"{varname} = regs[{slots[value.name]}]")
            guards.append(f"{varname}.dtype is wanted")
    if not guards:
        return None
    body = "\n        ".join(assigns)
    guard = " and ".join(guards)
    source = (
        "def op(state):\n"
        "    regs = state.regs\n"
        "    try:\n"
        f"        {body}\n"
        f"        if {guard}:\n"
        f"            regs[{dst}] = {expr}\n"
        "            return\n"
        "    except AttributeError:\n"
        "        pass\n"
        "    fallback(state)\n"
    )
    exec(compile(source, "<fused-lowering>", "exec"), namespace)
    return namespace["op"]


def _compile_binary(inst: BinaryOp, slots, memory):
    impl = _BINARY_IMPL[inst.op]
    dtype = inst.dtype
    read_a = _typed_reader(inst.a, slots, dtype)
    read_b = _typed_reader(inst.b, slots, dtype)
    dst = slots[inst.dst.name]

    def fallback(state):
        regs = state.regs
        regs[dst] = impl(read_a(regs), read_b(regs), dtype)

    fused = _fused_op(
        dst,
        [("a", inst.a), ("b", inst.b)],
        slots,
        dtype,
        "impl(a, b, dtype)",
        fallback,
        extra={"impl": impl, "dtype": dtype},
    )
    return fused if fused is not None else fallback


def _compile_unary(inst: UnaryOp, slots, memory):
    dtype = inst.dtype
    read_a = _typed_reader(inst.a, slots, dtype)
    dst = slots[inst.dst.name]
    operation = inst.op
    if operation == "mov":
        if inst.dst.width > 1:
            width = inst.dst.width
            numpy_dtype = dtype.numpy_dtype

            def op(state):
                regs = state.regs
                value = read_a(regs)
                if not (
                    isinstance(value, np.ndarray) and value.ndim == 1
                ):
                    value = np.full(width, value, dtype=numpy_dtype)
                regs[dst] = value

        else:

            def op(state):
                regs = state.regs
                regs[dst] = read_a(regs)

    elif operation == "neg":

        def op(state):
            regs = state.regs
            regs[dst] = np.negative(read_a(regs))

    elif operation == "abs":

        def op(state):
            regs = state.regs
            regs[dst] = np.abs(read_a(regs))

    elif operation == "not":
        invert = np.logical_not if dtype.is_predicate else np.invert

        def op(state):
            regs = state.regs
            regs[dst] = invert(read_a(regs))

    elif operation == "cnot":
        one = dtype.numpy_dtype.type(1)
        zero = dtype.numpy_dtype.type(0)

        def op(state):
            regs = state.regs
            regs[dst] = np.where(read_a(regs) == 0, one, zero)

    else:
        raise ExecutionError(f"unknown unary op {operation}")
    return op


def _compile_fma(inst: FusedMultiplyAdd, slots, memory):
    dtype = inst.dtype
    read_a = _typed_reader(inst.a, slots, dtype)
    read_b = _typed_reader(inst.b, slots, dtype)
    read_c = _typed_reader(inst.c, slots, dtype)
    dst = slots[inst.dst.name]

    def fallback(state):
        regs = state.regs
        regs[dst] = read_a(regs) * read_b(regs) + read_c(regs)

    fused = _fused_op(
        dst,
        [("a", inst.a), ("b", inst.b), ("c", inst.c)],
        slots,
        dtype,
        "a * b + c",
        fallback,
    )
    return fused if fused is not None else fallback


def _compile_compare(inst: Compare, slots, memory):
    impl = _COMPARE_IMPL[inst.op]
    read_a = _typed_reader(inst.a, slots, inst.dtype)
    read_b = _typed_reader(inst.b, slots, inst.dtype)
    dst = slots[inst.dst.name]

    def fallback(state):
        regs = state.regs
        regs[dst] = impl(read_a(regs), read_b(regs))

    fused = _fused_op(
        dst,
        [("a", inst.a), ("b", inst.b)],
        slots,
        inst.dtype,
        "impl(a, b)",
        fallback,
        extra={"impl": impl},
    )
    return fused if fused is not None else fallback


def _compile_select(inst: Select, slots, memory):
    read_predicate = _raw_reader(inst.predicate, slots)
    read_a = _raw_reader(inst.a, slots)
    read_b = _raw_reader(inst.b, slots)
    dst = slots[inst.dst.name]
    numpy_dtype = inst.dtype.numpy_dtype
    if inst.dst.width > 1:

        def op(state):
            regs = state.regs
            regs[dst] = np.where(
                read_predicate(regs), read_a(regs), read_b(regs)
            ).astype(numpy_dtype)

    else:
        scalar = numpy_dtype.type

        def op(state):
            regs = state.regs
            regs[dst] = scalar(
                read_a(regs)
                if bool(read_predicate(regs))
                else read_b(regs)
            )

    return op


def _compile_convert(inst: Convert, slots, memory):
    read = _typed_reader(inst.src, slots, inst.src_type)
    numpy_dtype = inst.dst_type.numpy_dtype
    dst = slots[inst.dst.name]
    if inst.dst_type.is_float or not inst.src_type.is_float:

        def op(state):
            regs = state.regs
            result = np.asarray(read(regs)).astype(numpy_dtype)
            regs[dst] = result[()] if result.ndim == 0 else result

    else:
        rounding = inst.rounding or "rzi"
        round_fn = _ROUNDING_FNS.get(rounding, np.trunc)

        def op(state):
            regs = state.regs
            result = _saturating_float_to_int(
                read(regs), round_fn, numpy_dtype
            )
            regs[dst] = result[()] if result.ndim == 0 else result

    return op


def _rsqrt(argument):
    return 1.0 / np.sqrt(argument)


def _rcp(argument):
    return 1.0 / np.asarray(argument)


_INTRINSIC_IMPL = {
    "sqrt": np.sqrt,
    "rsqrt": _rsqrt,
    "rcp": _rcp,
    "sin": np.sin,
    "cos": np.cos,
    "ex2": np.exp2,
    "lg2": np.log2,
}


def _compile_intrinsic(inst: Intrinsic, slots, memory):
    impl = _INTRINSIC_IMPL.get(inst.name)
    if impl is None:
        raise ExecutionError(f"unknown intrinsic {inst.name}")
    read = _raw_reader(inst.args[0], slots)
    numpy_dtype = inst.dtype.numpy_dtype
    dst = slots[inst.dst.name]

    def op(state):
        regs = state.regs
        result = np.asarray(impl(read(regs))).astype(numpy_dtype)
        regs[dst] = result[()] if result.ndim == 0 else result

    return op


def _compile_load(inst: Load, slots, memory):
    address = _address_reader(inst, slots)
    load = memory.load
    dtype = inst.dtype
    dst = slots[inst.dst.name]

    def op(state):
        state.regs[dst] = load(dtype, address(state))

    return op


def _compile_store(inst: Store, slots, memory):
    address = _address_reader(inst, slots)
    read_value = _raw_reader(inst.value, slots)
    store = memory.store
    dtype = inst.dtype

    def op(state):
        store(dtype, address(state), read_value(state.regs))

    return op


def _compile_vector_load(inst: VectorLoad, slots, memory):
    address = _address_reader(inst, slots)
    read_array = memory.read_array
    numpy_dtype = inst.dtype.numpy_dtype
    width = inst.dst.width
    dst = slots[inst.dst.name]

    def op(state):
        state.regs[dst] = read_array(address(state), numpy_dtype, width)

    return op


def _compile_vector_store(inst: VectorStore, slots, memory):
    address = _address_reader(inst, slots)
    read_value = _raw_reader(inst.value, slots)
    write_array = memory.write_array
    numpy_dtype = inst.dtype.numpy_dtype

    def op(state):
        array = np.asarray(read_value(state.regs), dtype=numpy_dtype)
        if array.ndim == 0:
            array = np.full(state.warp_size, array, dtype=numpy_dtype)
        write_array(address(state), array)

    return op


def _atomic_compute(inst: AtomicRMW, slots):
    """The read-modify-write combining function of one atomic, shared
    by the fast and checked lowerings: ``compute(old, operand, regs)``
    returns the value to store back."""
    operation = inst.op
    if operation == "cas":
        read_compare = _raw_reader(inst.compare, slots)

        def compute(old, operand, regs):
            return operand if old == read_compare(regs) else old

    elif operation == "add":
        def compute(old, operand, regs):
            return old + operand
    elif operation == "min":
        def compute(old, operand, regs):
            return min(old, operand)
    elif operation == "max":
        def compute(old, operand, regs):
            return max(old, operand)
    elif operation == "exch":
        def compute(old, operand, regs):
            return operand
    elif operation == "and":
        def compute(old, operand, regs):
            return old & operand
    elif operation == "or":
        def compute(old, operand, regs):
            return old | operand
    elif operation == "xor":
        def compute(old, operand, regs):
            return old ^ operand
    elif operation == "inc":
        def compute(old, operand, regs):
            return 0 if old >= operand else old + 1
    elif operation == "dec":
        def compute(old, operand, regs):
            return operand if (old == 0 or old > operand) else old - 1
    else:
        raise ExecutionError(f"unknown atomic op {operation}")
    return compute


def _compile_atomic(inst: AtomicRMW, slots, memory):
    address = _address_reader(inst, slots)
    read_value = _raw_reader(inst.value, slots)
    load = memory.load
    store = memory.store
    dtype = inst.dtype
    dst = slots[inst.dst.name] if inst.dst is not None else None
    compute = _atomic_compute(inst, slots)

    def op(state):
        regs = state.regs
        location = address(state)
        old = load(dtype, location)
        store(dtype, location, compute(old, read_value(regs), regs))
        if dst is not None:
            regs[dst] = old

    return op


# -- checked (sanitized) memory compilers ----------------------------------
#
# The sanitizer variant of the memory lowering: identical address
# computation and register plumbing, but every access routes through
# the sanitizer's guest_* entry points, which classify it against the
# shadow state (and feed shared accesses to the race detector) before
# touching the arena. These compilers are only selected when a
# sanitizer is attached, so the unchecked fast path above stays
# byte-for-byte what PR 2 shipped. ``sanitizer.guest_*`` is looked up
# per call (late binding) so fault-injection harnesses can patch the
# sanitizer instance even after translation.


def _compile_checked_load(inst: Load, slots, memory, sanitizer, label, index):
    address = _address_reader(inst, slots)
    dtype = inst.dtype
    dst = slots[inst.dst.name]
    lane = inst.lane
    shared = inst.space is AddressSpace.shared

    def op(state):
        state.regs[dst] = sanitizer.guest_load(
            state, lane, address(state), dtype, shared, label, index
        )

    return op


def _compile_checked_store(
    inst: Store, slots, memory, sanitizer, label, index
):
    address = _address_reader(inst, slots)
    read_value = _raw_reader(inst.value, slots)
    dtype = inst.dtype
    lane = inst.lane
    shared = inst.space is AddressSpace.shared

    def op(state):
        sanitizer.guest_store(
            state, lane, address(state), dtype,
            read_value(state.regs), shared, label, index,
        )

    return op


def _compile_checked_vector_load(
    inst: VectorLoad, slots, memory, sanitizer, label, index
):
    address = _address_reader(inst, slots)
    numpy_dtype = inst.dtype.numpy_dtype
    width = inst.dst.width
    dst = slots[inst.dst.name]
    lane = getattr(inst, "lane", 0)
    shared = inst.space is AddressSpace.shared

    def op(state):
        state.regs[dst] = sanitizer.guest_read_vector(
            state, lane, address(state), numpy_dtype, width, shared,
            label, index,
        )

    return op


def _compile_checked_vector_store(
    inst: VectorStore, slots, memory, sanitizer, label, index
):
    address = _address_reader(inst, slots)
    read_value = _raw_reader(inst.value, slots)
    numpy_dtype = inst.dtype.numpy_dtype
    lane = getattr(inst, "lane", 0)
    shared = inst.space is AddressSpace.shared

    def op(state):
        array = np.asarray(read_value(state.regs), dtype=numpy_dtype)
        if array.ndim == 0:
            array = np.full(state.warp_size, array, dtype=numpy_dtype)
        sanitizer.guest_write_vector(
            state, lane, address(state), array, shared, label, index
        )

    return op


def _compile_checked_atomic(
    inst: AtomicRMW, slots, memory, sanitizer, label, index
):
    address = _address_reader(inst, slots)
    read_value = _raw_reader(inst.value, slots)
    dtype = inst.dtype
    dst = slots[inst.dst.name] if inst.dst is not None else None
    lane = inst.lane
    shared = inst.space is AddressSpace.shared
    compute = _atomic_compute(inst, slots)

    def op(state):
        regs = state.regs
        location = address(state)
        old = sanitizer.guest_load(
            state, lane, location, dtype, shared, label, index,
            atomic=True,
        )
        sanitizer.guest_store(
            state, lane, location, dtype,
            compute(old, read_value(regs), regs), shared, label, index,
            atomic=True,
        )
        if dst is not None:
            regs[dst] = old

    return op


#: Context fields that read a plain (attribute, axis) coordinate.
_CONTEXT_COORDINATES = {
    "tid.x": ("tid", 0),
    "tid.y": ("tid", 1),
    "tid.z": ("tid", 2),
    "ntid.x": ("ntid", 0),
    "ntid.y": ("ntid", 1),
    "ntid.z": ("ntid", 2),
    "ctaid.x": ("ctaid", 0),
    "ctaid.y": ("ctaid", 1),
    "ctaid.z": ("ctaid", 2),
    "nctaid.x": ("nctaid", 0),
    "nctaid.y": ("nctaid", 1),
    "nctaid.z": ("nctaid", 2),
}


def _compile_context_read(inst: ContextRead, slots, memory):
    lane = inst.lane
    convert = inst.dtype.numpy_dtype.type
    dst = slots[inst.dst.name]
    field_name = inst.field_name
    if field_name == "laneid":
        value = convert(lane)

        def op(state):
            state.regs[dst] = value

    elif field_name == "warpid":

        def op(state):
            state.regs[dst] = convert(state.warp.warp_id)

    elif field_name == "clock":

        def op(state):
            stats = state.stats
            state.regs[dst] = convert(
                stats.kernel_cycles + stats.yield_cycles
            )

    elif field_name == "resume_point":

        def op(state):
            state.regs[dst] = convert(
                state.contexts[lane].resume_point
            )

    elif field_name in _CONTEXT_COORDINATES:
        attribute, axis = _CONTEXT_COORDINATES[field_name]

        def op(state):
            state.regs[dst] = convert(
                getattr(state.contexts[lane], attribute)[axis]
            )

    else:
        raise ExecutionError(f"unknown context field {field_name}")
    return op


def _compile_context_write(inst: ContextWrite, slots, memory):
    if inst.field_name != "resume_point":
        raise ExecutionError(
            f"unwritable context field {inst.field_name}"
        )
    lane = inst.lane
    read = _raw_reader(inst.value, slots)

    def op(state):
        state.contexts[lane].resume_point = int(read(state.regs))

    return op


def _compile_insert(inst: InsertElement, slots, memory):
    dst = slots[inst.dst.name]
    numpy_dtype = inst.dst.dtype.numpy_dtype
    width = inst.dst.width
    index = inst.index
    read_scalar = _raw_reader(inst.scalar, slots)
    if inst.src is None:

        def op(state):
            regs = state.regs
            vector = np.zeros(width, dtype=numpy_dtype)
            vector[index] = read_scalar(regs)
            regs[dst] = vector

    else:
        read_src = _raw_reader(inst.src, slots)

        def op(state):
            regs = state.regs
            vector = np.array(read_src(regs), dtype=numpy_dtype)
            if vector.ndim == 0:
                vector = np.full(width, vector, dtype=numpy_dtype)
            vector[index] = read_scalar(regs)
            regs[dst] = vector

    return op


def _compile_extract(inst: ExtractElement, slots, memory):
    read = _raw_reader(inst.src, slots)
    index = inst.index
    dst = slots[inst.dst.name]

    def op(state):
        regs = state.regs
        vector = read(regs)
        if isinstance(vector, np.ndarray) and vector.ndim == 1:
            regs[dst] = vector[index]
        else:
            regs[dst] = vector

    return op


def _compile_broadcast(inst: Broadcast, slots, memory):
    read = _raw_reader(inst.src, slots)
    width = inst.dst.width
    numpy_dtype = inst.dst.dtype.numpy_dtype
    dst = slots[inst.dst.name]

    def op(state):
        regs = state.regs
        regs[dst] = np.full(width, read(regs), dtype=numpy_dtype)

    return op


def _reduce_add(source):
    if source.dtype == np.bool_:
        return int(np.count_nonzero(source))
    return int(source.sum())


def _reduce_uni(source):
    return bool((source == source.flat[0]).all())


def _reduce_ballot(source):
    bits = 0
    for index, value in enumerate(np.atleast_1d(source)):
        if value:
            bits |= 1 << index
    return bits


_REDUCE_IMPL = {
    "add": _reduce_add,
    "any": lambda source: bool(source.any()),
    "all": lambda source: bool(source.all()),
    "uni": _reduce_uni,
    "ballot": _reduce_ballot,
}


def _compile_reduce(inst: Reduce, slots, memory):
    impl = _REDUCE_IMPL.get(inst.op)
    if impl is None:
        raise ExecutionError(f"unknown reduction {inst.op}")
    read = _raw_reader(inst.src, slots)
    convert = inst.dst.dtype.numpy_dtype.type
    dst = slots[inst.dst.name]

    def op(state):
        regs = state.regs
        regs[dst] = convert(impl(np.asarray(read(regs))))

    return op


# -- terminator compilers --------------------------------------------------


def _compile_branch(inst: Branch, slots):
    target = inst.target
    return lambda state: target


def _compile_cond_branch(inst: CondBranch, slots):
    read = _raw_reader(inst.predicate, slots)
    taken = inst.taken
    fallthrough = inst.fallthrough
    return lambda state: (
        taken if bool(read(state.regs)) else fallthrough
    )


def _compile_switch(inst: Switch, slots):
    read = _raw_reader(inst.value, slots)
    cases = dict(inst.cases)
    default = inst.default
    return lambda state: cases.get(int(read(state.regs)), default)


def _compile_yield(inst: Yield, slots):
    status = inst.status
    return lambda state: status


def _compile_exit(inst: Exit, slots):
    status = ResumeStatus.THREAD_EXIT
    return lambda state: status


def _compile_barrier_term(inst: BarrierTerm, slots):
    def terminate(state):
        raise ExecutionError(
            "raw barrier terminator reached the machine; kernels must "
            "be specialized through the vectorizer first"
        )

    return terminate


_COMPILERS = {
    BinaryOp: _compile_binary,
    UnaryOp: _compile_unary,
    FusedMultiplyAdd: _compile_fma,
    Compare: _compile_compare,
    Select: _compile_select,
    Convert: _compile_convert,
    Intrinsic: _compile_intrinsic,
    Load: _compile_load,
    Store: _compile_store,
    VectorLoad: _compile_vector_load,
    VectorStore: _compile_vector_store,
    AtomicRMW: _compile_atomic,
    ContextRead: _compile_context_read,
    ContextWrite: _compile_context_write,
    InsertElement: _compile_insert,
    ExtractElement: _compile_extract,
    Broadcast: _compile_broadcast,
    Reduce: _compile_reduce,
}

#: The sanitizer-aware lowering variant: memory instructions whose
#: closures route through the attached sanitizer. Signature
#: ``(inst, slots, memory, sanitizer, block_label, instruction_index)``
#: — label/index pin every finding to its exact program point.
_CHECKED_COMPILERS = {
    Load: _compile_checked_load,
    Store: _compile_checked_store,
    VectorLoad: _compile_checked_vector_load,
    VectorStore: _compile_checked_vector_store,
    AtomicRMW: _compile_checked_atomic,
}

_TERMINATOR_COMPILERS = {
    Branch: _compile_branch,
    CondBranch: _compile_cond_branch,
    Switch: _compile_switch,
    Yield: _compile_yield,
    Exit: _compile_exit,
    BarrierTerm: _compile_barrier_term,
}


def _wrap_precise(op, cycles: int, flops: int, overhead: bool):
    """Per-instruction accounting wrapper for blocks that observe the
    cycle counter mid-block (``%clock``): the aggregated per-block sums
    would lag the reference interpreter's view, so such blocks charge
    each instruction as it executes, exactly like the dispatch path."""
    if overhead:

        def wrapped(state):
            op(state)
            stats = state.stats
            stats.yield_cycles += cycles
            stats.flops += flops

    else:

        def wrapped(state):
            op(state)
            stats = state.stats
            stats.kernel_cycles += cycles
            stats.flops += flops

    return wrapped


# -- run fusion ------------------------------------------------------------
#
# Consecutive simple ALU instructions (FMA and the pure binary ops whose
# implementation is a single expression) compile into ONE generated
# closure per run: values flow through Python locals instead of the
# register file, dtype guards are hoisted to the run entry (one per
# upward-exposed register), and the register file is written once per
# defined register at the end. Any guard failure falls back to the
# per-instruction closures, which replicate ``fetch_typed`` exactly.

_FUSABLE_BINARY_EXPR = {
    "add": "{a} + {b}",
    "sub": "{a} - {b}",
    "mul": "{a} * {b}",
    "min": "np.minimum({a}, {b})",
    "max": "np.maximum({a}, {b})",
}


def _is_fusable(instruction) -> bool:
    if isinstance(instruction, FusedMultiplyAdd):
        return True
    return (
        isinstance(instruction, BinaryOp)
        and instruction.op in _FUSABLE_BINARY_EXPR
    )


def _try_fuse_run(run, slots, fallback_ops):
    """Compile a run of fusable instructions into one closure, or
    return ``None`` when the run's dataflow cannot be proven
    dtype-consistent statically (the per-op closures then stay)."""
    namespace = {"np": np, "fallback_ops": fallback_ops}
    preload: Dict[int, object] = {}  # slot -> guarded np.dtype
    written: Dict[int, object] = {}  # slot -> producing np.dtype
    lines = []
    counter = 0

    def operand(value, dtype):
        nonlocal counter
        if isinstance(value, Constant):
            name = f"k{counter}"
            counter += 1
            namespace[name] = _typed_constant(value, dtype)
            return name
        slot = slots[value.name]
        wanted = dtype.numpy_dtype
        produced = written.get(slot)
        if produced is not None:
            # Defined earlier in the run: the local carries the
            # producer's dtype; a reinterpreting consumer needs the
            # full fetch_typed path, so refuse to fuse.
            return None if produced != wanted else f"v{slot}"
        guarded = preload.get(slot)
        if guarded is None:
            preload[slot] = wanted
        elif guarded != wanted:
            return None
        return f"v{slot}"

    for instruction in run:
        if isinstance(instruction, FusedMultiplyAdd):
            dtype = instruction.dtype
            a = operand(instruction.a, dtype)
            b = operand(instruction.b, dtype)
            c = operand(instruction.c, dtype)
            if a is None or b is None or c is None:
                return None
            expression = f"{a} * {b} + {c}"
        else:
            dtype = instruction.dtype
            a = operand(instruction.a, dtype)
            b = operand(instruction.b, dtype)
            if a is None or b is None:
                return None
            expression = _FUSABLE_BINARY_EXPR[instruction.op].format(
                a=a, b=b
            )
        dst = slots[instruction.dst.name]
        lines.append(f"v{dst} = {expression}")
        written[dst] = dtype.numpy_dtype

    loads = []
    guards = []
    for slot, wanted in preload.items():
        loads.append(f"v{slot} = regs[{slot}]")
        guards.append(f"v{slot}.dtype is w{slot}")
        namespace[f"w{slot}"] = wanted
    flush = [f"regs[{slot}] = v{slot}" for slot in written]
    indent = "\n            "
    guard = " and ".join(guards) if guards else "True"
    source = (
        "def run_ops(state):\n"
        "    regs = state.regs\n"
        "    try:\n"
        f"        {(chr(10) + '        ').join(loads)}\n"
        f"        if {guard}:\n"
        f"            {indent.join(lines)}\n"
        f"            {indent.join(flush)}\n"
        "            return\n"
        "    except AttributeError:\n"
        "        pass\n"
        "    for op in fallback_ops:\n"
        "        op(state)\n"
    )
    exec(compile(source, "<fused-run>", "exec"), namespace)
    return namespace["run_ops"]


def _fuse_block_ops(block, slots, ops):
    """Replace runs of >=2 consecutive fusable instruction closures in
    ``ops`` with single generated run closures. Statistics are per
    block, so fusion never changes modeled accounting. Returns
    ``(fused_ops, op_indices)`` where ``op_indices[i]`` is the block
    instruction index of the first instruction ``fused_ops[i]`` covers
    (the trap PC of a fault inside a fused run points at its head)."""
    fused = []
    indices = []
    instructions = block.instructions
    index = 0
    total = len(instructions)
    while index < total:
        if not _is_fusable(instructions[index]):
            fused.append(ops[index])
            indices.append(index)
            index += 1
            continue
        end = index + 1
        while end < total and _is_fusable(instructions[end]):
            end += 1
        if end - index < 2:
            fused.append(ops[index])
            indices.append(index)
        else:
            run = instructions[index:end]
            fallback_ops = tuple(ops[index:end])
            run_op = _try_fuse_run(run, slots, fallback_ops)
            if run_op is None:
                fused.extend(fallback_ops)
                indices.extend(range(index, end))
            else:
                fused.append(run_op)
                indices.append(index)
        index = end
    return fused, indices


def _compile_block(block, cost_table, slots, memory, sanitizer=None):
    """Lower one basic block to its compiled tuple (see
    :class:`ExecutableFunction.compiled_blocks`). With a ``sanitizer``,
    memory instructions lower to checked closures instead of the
    pre-bound fast-path ones."""
    precise = any(
        isinstance(instruction, ContextRead)
        and instruction.field_name == "clock"
        for instruction in block.instructions
    )
    ops = []
    label = block.label
    for index, instruction in enumerate(block.instructions):
        checked_fn = (
            _CHECKED_COMPILERS.get(type(instruction))
            if sanitizer is not None
            else None
        )
        if checked_fn is not None:
            op = checked_fn(
                instruction, slots, memory, sanitizer, label, index
            )
        else:
            compile_fn = _COMPILERS.get(type(instruction))
            if compile_fn is None:
                raise ExecutionError(
                    f"no lowering for instruction {instruction!r}"
                )
            op = compile_fn(instruction, slots, memory)
        if precise:
            cost = cost_table.cost_of(instruction)
            op = _wrap_precise(
                op,
                cost.cycles,
                cost.flops,
                bool(getattr(instruction, "overhead", False)),
            )
        ops.append(op)
    op_indices = list(range(len(ops)))
    if not precise:
        # Precise blocks need per-op accounting; every other block may
        # fuse runs of simple ALU ops into single generated closures.
        ops, op_indices = _fuse_block_ops(block, slots, ops)
    terminator = block.terminator
    compile_terminator = _TERMINATOR_COMPILERS.get(type(terminator))
    if compile_terminator is None:
        raise ExecutionError(
            f"no lowering for terminator {terminator!r}"
        )
    cost = aggregate_block_cost(block, cost_table)
    if precise:
        # Body charges were folded into the per-op wrappers; only the
        # terminator's cycles remain block-level.
        terminator_cost = cost_table.cost_of(terminator)
        if getattr(terminator, "overhead", False):
            kernel_cycles, yield_cycles = 0, terminator_cost.cycles
        else:
            kernel_cycles, yield_cycles = terminator_cost.cycles, 0
        flops = 0
    else:
        kernel_cycles = cost.kernel_cycles
        yield_cycles = cost.yield_cycles
        flops = cost.flops
    return (
        tuple(ops),
        kernel_cycles,
        yield_cycles,
        flops,
        cost.instructions,
        compile_terminator(terminator, slots),
        precise,
        tuple(op_indices),
    )
