"""Array-vectorized execution backend.

The closure interpreter runs one warp at a time; this backend runs
*every resident warp at once*. At load time each basic block is given
a second, batched lowering — a per-opcode translation table emitting
numpy array operations, structured like a staged binary translator:
registers become ``(n_warps,)`` / ``(n_warps, warp_size)`` ndarrays,
loads and stores become gather/scatter on the arena, and control flow
stays in the batched region only while it is *uniform* across the
batch. The points where control leaves the region are explicit exits:

- a Yield/Exit terminator ends the batch with one status for all warps
  (every warp took the same exit handler, so one batched walk modeled
  exactly ``n_warps`` sequential executions);
- a divergent CondBranch/Switch, or a successor block with no array
  lowering (atomics, ``%clock``, an injected-fault harness), hands
  each warp a :class:`~repro.machine.interpreter.Continuation` and the
  closure path finishes it sequentially — correctness is inherited,
  the array region only ever *accelerates* uniform prefixes.

Costs are not recomputed: the batched walk charges the same per-block
aggregates (``compiled_blocks[label][1:5]``) the closure path charges,
once per block, and each warp in the batch absorbs an identical copy —
so every modeled statistic is bit-identical to sequential execution.

Known deviation: within one batched block, an instruction's memory
accesses complete for *all* warps before the next instruction runs.
Programs where warps race on shared addresses can observe a different
(but equally legal) interleaving than the sequential schedule; such
programs are racy on real hardware too. Atomics therefore disable the
array lowering for the whole function.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..errors import ExecutionError
from ..ir.function import IRFunction
from ..ir.instructions import (
    AtomicRMW,
    BinaryOp,
    Branch,
    Broadcast,
    Compare,
    CondBranch,
    ContextRead,
    ContextWrite,
    Convert,
    Exit,
    ExtractElement,
    FusedMultiplyAdd,
    InsertElement,
    Intrinsic,
    Load,
    Reduce,
    ResumeStatus,
    Select,
    Store,
    Switch,
    UnaryOp,
    VectorLoad,
    VectorStore,
    Yield,
)
from ..ir.values import Constant, VirtualRegister
from ..ptx.types import AddressSpace
from .interpreter import (
    _BINARY_IMPL,
    _COMPARE_IMPL,
    _CONTEXT_COORDINATES,
    _DEADLINE_CHECK_STRIDE,
    _INTRINSIC_IMPL,
    _REDUCE_IMPL,
    _ROUNDING_FNS,
    Continuation,
    ExecutableFunction,
    ExecutionStats,
    Interpreter,
    _annotate_fault,
    _machine_constant,
    _mulhi,
    _saturating_float_to_int,
    _typed_constant,
    guest_errstate,
)


class _Unsupported(Exception):
    """Raised by the translation table for an instruction (or block)
    with no batched lowering; the block is simply left out of
    ``array_blocks`` and the closure path executes it."""


# ---------------------------------------------------------------------------
# Batched machine state
# ---------------------------------------------------------------------------


class _BatchState:
    """Register file and context plumbing for one batched region walk.

    ``regs[slot]`` holds, per virtual register: ``None`` (unwritten),
    a ``(B,)`` array (one value per warp), a ``(B, width)`` array (one
    vector per warp), or — rarely — a numpy scalar shared by every
    warp. Lazy zero defaults mirror the sequential register file.
    """

    __slots__ = (
        "memory",
        "size",
        "warp_size",
        "regs",
        "param_base",
        "contexts",
        "warp_ids",
        "_coordinates",
        "_segment_bases",
    )

    def __init__(self, executable, warps, param_base, memory):
        self.memory = memory
        self.size = len(warps)
        self.warp_size = executable.warp_size
        self.regs: List[object] = [None] * executable.register_count
        self.param_base = param_base
        #: Per warp, the tuple of thread contexts (lane-indexed).
        self.contexts = [warp.contexts for warp in warps]
        self.warp_ids = np.array(
            [warp.warp_id for warp in warps], dtype=np.int64
        )
        self._coordinates: Dict[tuple, np.ndarray] = {}
        self._segment_bases: Dict[tuple, np.ndarray] = {}

    def coordinates(self, attribute: str, axis: int, lane: int):
        """``(B,)`` int64 array of a launch-geometry coordinate
        (immutable per batch, so cached across reads)."""
        key = (attribute, axis, lane)
        cached = self._coordinates.get(key)
        if cached is None:
            cached = np.array(
                [
                    getattr(contexts[lane], attribute)[axis]
                    for contexts in self.contexts
                ],
                dtype=np.int64,
            )
            self._coordinates[key] = cached
        return cached

    def segment_base(self, attribute: str, lane: int):
        """``(B,)`` int64 array of per-thread segment bases
        (``shared_base`` / ``local_base``)."""
        key = (attribute, lane)
        cached = self._segment_bases.get(key)
        if cached is None:
            cached = np.array(
                [
                    getattr(contexts[lane], attribute)
                    for contexts in self.contexts
                ],
                dtype=np.int64,
            )
            self._segment_bases[key] = cached
        return cached


# ---------------------------------------------------------------------------
# Operand readers (the batched twins of _raw_reader / _typed_reader)
# ---------------------------------------------------------------------------


def _abatch_raw(value, slots):
    """Batched untyped operand accessor: ``read(bstate) -> array``."""
    if isinstance(value, Constant):
        constant = _machine_constant(value)

        def read(bstate, constant=constant):
            return constant

        return read
    slot = slots[value.name]
    numpy_dtype = value.dtype.numpy_dtype
    if value.width > 1:
        width = value.width

        def read(bstate):
            current = bstate.regs[slot]
            if current is None:
                current = bstate.regs[slot] = np.zeros(
                    (bstate.size, width), dtype=numpy_dtype
                )
            return current

    else:

        def read(bstate):
            current = bstate.regs[slot]
            if current is None:
                current = bstate.regs[slot] = np.zeros(
                    bstate.size, dtype=numpy_dtype
                )
            return current

    return read


def _abatch_typed(value, slots, dtype):
    """Batched typed accessor replicating ``fetch_typed``: view on
    equal itemsize, convert otherwise, predicates/bools pass through."""
    if isinstance(value, Constant):
        constant = _typed_constant(value, dtype)

        def read(bstate, constant=constant):
            return constant

        return read
    raw = _abatch_raw(value, slots)
    wanted = dtype.numpy_dtype
    predicate = dtype.is_predicate

    def read(bstate):
        fetched = raw(bstate)
        current = fetched.dtype
        if current == wanted:
            return fetched
        if predicate or current == np.bool_:
            return fetched
        if current.itemsize == wanted.itemsize:
            return fetched.view(wanted)
        return fetched.astype(wanted)

    return read


def _ensure_batched(result, bstate):
    """Expand an all-constant (scalar) result to its ``(B,)`` form; a
    result that already carries the batch axis passes through."""
    if getattr(result, "ndim", 0) >= 1:
        return result
    out = np.empty(bstate.size, dtype=np.asarray(result).dtype)
    out[...] = result
    return out


def _align2(a, b):
    """Give scalar-per-warp operands a broadcast axis when the other
    operand is a per-warp *vector*: ``(B,)`` reshapes to ``(B, 1)``
    only in mixed-rank combinations, so pure-scalar operations keep
    producing ``(B,)`` results (one value per warp, exactly like the
    sequential path's scalar results)."""
    a_ndim = getattr(a, "ndim", 0)
    b_ndim = getattr(b, "ndim", 0)
    if a_ndim == 2 or b_ndim == 2:
        if a_ndim == 1:
            a = a.reshape(-1, 1)
        if b_ndim == 1:
            b = b.reshape(-1, 1)
    return a, b


def _align3(a, b, c):
    ndims = (
        getattr(a, "ndim", 0),
        getattr(b, "ndim", 0),
        getattr(c, "ndim", 0),
    )
    if 2 in ndims:
        if ndims[0] == 1:
            a = a.reshape(-1, 1)
        if ndims[1] == 1:
            b = b.reshape(-1, 1)
        if ndims[2] == 1:
            c = c.reshape(-1, 1)
    return a, b, c


# ---------------------------------------------------------------------------
# Address computation (batched _address_reader)
# ---------------------------------------------------------------------------


def _abatch_address(inst, slots):
    """``addresses(bstate) -> (B,) int64 array`` with the address-space
    dispatch resolved statically, like the sequential reader."""
    space = inst.space
    offset = inst.offset
    lane = inst.lane
    base = inst.base
    if isinstance(base, Constant):
        static = int(_machine_constant(base)) + offset
        if space is AddressSpace.global_:
            return lambda bstate: np.full(
                bstate.size, static, dtype=np.int64
            )
        if space is AddressSpace.param:
            return lambda bstate: np.full(
                bstate.size, bstate.param_base + static, dtype=np.int64
            )
        if space is AddressSpace.shared:
            return lambda bstate: (
                bstate.segment_base("shared_base", lane) + static
            )
        if space is AddressSpace.local:
            return lambda bstate: (
                bstate.segment_base("local_base", lane) + static
            )
        raise _Unsupported()
    if base.width > 1:
        raise _Unsupported()
    read = _abatch_raw(base, slots)

    def bases(bstate):
        raw = np.asarray(read(bstate)).astype(np.int64)
        if raw.ndim == 0:
            raw = np.full(bstate.size, int(raw), dtype=np.int64)
        return raw

    if space is AddressSpace.global_:
        return lambda bstate: bases(bstate) + offset
    if space is AddressSpace.param:
        return lambda bstate: (
            bases(bstate) + (bstate.param_base + offset)
        )
    if space is AddressSpace.shared:
        return lambda bstate: (
            bstate.segment_base("shared_base", lane)
            + bases(bstate)
            + offset
        )
    if space is AddressSpace.local:
        return lambda bstate: (
            bstate.segment_base("local_base", lane)
            + bases(bstate)
            + offset
        )
    raise _Unsupported()


# ---------------------------------------------------------------------------
# The per-opcode translation table
# ---------------------------------------------------------------------------


def _batched_mulhi(a, b, dtype):
    """``_mulhi``'s 64-bit path converts through Python lists, which
    only handles 1-d input; flatten the batched operands through it."""
    a2, b2 = np.broadcast_arrays(np.asarray(a), np.asarray(b))
    flat = _mulhi(a2.ravel(), b2.ravel(), dtype)
    return np.asarray(flat).reshape(a2.shape)


def _acompile_binary(inst: BinaryOp, slots):
    impl = _BINARY_IMPL[inst.op]
    dtype = inst.dtype
    if inst.op == "mulhi" and dtype.size == 8:
        impl = _batched_mulhi
    read_a = _abatch_typed(inst.a, slots, dtype)
    read_b = _abatch_typed(inst.b, slots, dtype)
    dst = slots[inst.dst.name]

    def op(bstate):
        a, b = _align2(read_a(bstate), read_b(bstate))
        bstate.regs[dst] = _ensure_batched(impl(a, b, dtype), bstate)

    return op


def _acompile_unary(inst: UnaryOp, slots):
    dtype = inst.dtype
    read_a = _abatch_typed(inst.a, slots, dtype)
    dst = slots[inst.dst.name]
    operation = inst.op
    if operation == "mov":
        if inst.dst.width > 1:
            width = inst.dst.width
            numpy_dtype = dtype.numpy_dtype

            def op(bstate):
                value = read_a(bstate)
                if getattr(value, "ndim", 0) != 2:
                    out = np.empty(
                        (bstate.size, width), dtype=numpy_dtype
                    )
                    if getattr(value, "ndim", 0) == 1:
                        out[...] = value.reshape(-1, 1)
                    else:
                        out[...] = value
                    value = out
                bstate.regs[dst] = value

        else:

            def op(bstate):
                bstate.regs[dst] = _ensure_batched(
                    read_a(bstate), bstate
                )

    elif operation == "neg":

        def op(bstate):
            bstate.regs[dst] = _ensure_batched(
                np.negative(read_a(bstate)), bstate
            )

    elif operation == "abs":

        def op(bstate):
            bstate.regs[dst] = _ensure_batched(
                np.abs(read_a(bstate)), bstate
            )

    elif operation == "not":
        invert = np.logical_not if dtype.is_predicate else np.invert

        def op(bstate):
            bstate.regs[dst] = _ensure_batched(
                invert(read_a(bstate)), bstate
            )

    elif operation == "cnot":
        one = dtype.numpy_dtype.type(1)
        zero = dtype.numpy_dtype.type(0)

        def op(bstate):
            bstate.regs[dst] = _ensure_batched(
                np.where(read_a(bstate) == 0, one, zero), bstate
            )

    else:
        raise _Unsupported()
    return op


def _acompile_fma(inst: FusedMultiplyAdd, slots):
    dtype = inst.dtype
    read_a = _abatch_typed(inst.a, slots, dtype)
    read_b = _abatch_typed(inst.b, slots, dtype)
    read_c = _abatch_typed(inst.c, slots, dtype)
    dst = slots[inst.dst.name]
    operands = (inst.a, inst.b, inst.c)
    wanted = dtype.numpy_dtype

    def op(bstate):
        a, b, c = _align3(
            read_a(bstate), read_b(bstate), read_c(bstate)
        )
        result = a * b
        if (
            getattr(result, "shape", None) == getattr(c, "shape", ())
            and result.dtype == getattr(c, "dtype", None)
        ):
            result += c
        else:
            result = result + c
        bstate.regs[dst] = _ensure_batched(result, bstate)

    if all(isinstance(operand, Constant) for operand in operands):
        return op
    sa, sb, sc = (
        None if isinstance(operand, Constant) else slots[operand.name]
        for operand in operands
    )
    ca, cb, cc = (
        _typed_constant(operand, dtype)
        if isinstance(operand, Constant)
        else None
        for operand in operands
    )
    if any(
        constant is not None and constant.dtype != wanted
        for constant in (ca, cb, cc)
    ):
        return op

    def fast(bstate):
        # FMA chains are the hottest array ops (the Table-1 throughput
        # kernel is an unrolled FMA loop), so the common case — every
        # register operand written, carrying the instruction dtype, at
        # one rank — reads its slots directly and adds in place into
        # the fresh product; anything atypical (an unwritten register,
        # an aliased dtype from an untyped mov, a rank mismatch) takes
        # the generic closure. Constant operands are pre-typed numpy
        # scalars and broadcast against the register operands.
        regs = bstate.regs
        a = ca if sa is None else regs[sa]
        b = cb if sb is None else regs[sb]
        c = cc if sc is None else regs[sc]
        shape = None
        for value, slot in ((a, sa), (b, sb), (c, sc)):
            if slot is None:
                continue
            if value is None or value.dtype != wanted:
                return op(bstate)
            if shape is None:
                shape = value.shape
            elif value.shape != shape:
                return op(bstate)
        result = a * b
        result += c
        regs[dst] = result

    return fast


def _acompile_compare(inst: Compare, slots):
    impl = _COMPARE_IMPL[inst.op]
    read_a = _abatch_typed(inst.a, slots, inst.dtype)
    read_b = _abatch_typed(inst.b, slots, inst.dtype)
    dst = slots[inst.dst.name]

    def op(bstate):
        a, b = _align2(read_a(bstate), read_b(bstate))
        bstate.regs[dst] = _ensure_batched(impl(a, b), bstate)

    return op


def _acompile_select(inst: Select, slots):
    read_predicate = _abatch_raw(inst.predicate, slots)
    read_a = _abatch_raw(inst.a, slots)
    read_b = _abatch_raw(inst.b, slots)
    numpy_dtype = inst.dtype.numpy_dtype
    dst = slots[inst.dst.name]

    def op(bstate):
        predicate, a, b = _align3(
            read_predicate(bstate), read_a(bstate), read_b(bstate)
        )
        result = np.where(predicate, a, b).astype(numpy_dtype)
        bstate.regs[dst] = _ensure_batched(result, bstate)

    return op


def _acompile_convert(inst: Convert, slots):
    read = _abatch_typed(inst.src, slots, inst.src_type)
    numpy_dtype = inst.dst_type.numpy_dtype
    dst = slots[inst.dst.name]
    if inst.dst_type.is_float or not inst.src_type.is_float:

        def op(bstate):
            result = np.asarray(read(bstate)).astype(numpy_dtype)
            bstate.regs[dst] = _ensure_batched(result, bstate)

    else:
        rounding = inst.rounding or "rzi"
        round_fn = _ROUNDING_FNS.get(rounding, np.trunc)

        def op(bstate):
            result = _saturating_float_to_int(
                read(bstate), round_fn, numpy_dtype
            )
            bstate.regs[dst] = _ensure_batched(result, bstate)

    return op


def _acompile_intrinsic(inst: Intrinsic, slots):
    impl = _INTRINSIC_IMPL.get(inst.name)
    if impl is None:
        raise _Unsupported()
    read = _abatch_raw(inst.args[0], slots)
    numpy_dtype = inst.dtype.numpy_dtype
    dst = slots[inst.dst.name]

    def op(bstate):
        result = np.asarray(impl(read(bstate))).astype(numpy_dtype)
        bstate.regs[dst] = _ensure_batched(result, bstate)

    return op


def _acompile_load(inst: Load, slots):
    addresses = _abatch_address(inst, slots)
    dtype = inst.dtype
    dst = slots[inst.dst.name]

    def op(bstate):
        bstate.regs[dst] = bstate.memory.gather(
            dtype, addresses(bstate)
        )

    return op


def _acompile_store(inst: Store, slots):
    if (
        isinstance(inst.value, VirtualRegister)
        and inst.value.width > 1
    ):
        raise _Unsupported()
    addresses = _abatch_address(inst, slots)
    read_value = _abatch_raw(inst.value, slots)
    dtype = inst.dtype

    def op(bstate):
        bstate.memory.scatter(
            dtype, addresses(bstate), read_value(bstate)
        )

    return op


def _acompile_vector_load(inst: VectorLoad, slots):
    addresses = _abatch_address(inst, slots)
    numpy_dtype = np.dtype(inst.dtype.numpy_dtype)
    width = inst.dst.width
    size = numpy_dtype.itemsize
    row = np.arange(width)
    dst = slots[inst.dst.name]

    def op(bstate):
        memory = bstate.memory
        base = addresses(bstate)
        if memory._patched("read_array"):
            out = np.empty((bstate.size, width), dtype=numpy_dtype)
            for position, address in enumerate(base):
                out[position] = memory.read_array(
                    int(address), numpy_dtype, width
                )
            bstate.regs[dst] = out
            return
        memory._check_batch(base, size * width)
        memory.load_count += base.size * width
        if not (base % size).any():
            index = (base // size)[:, None] + row
            bstate.regs[dst] = memory.data.view(numpy_dtype)[index]
            return
        out = np.empty((bstate.size, width), dtype=numpy_dtype)
        for position, address in enumerate(base):
            out[position] = memory.data[
                address : address + size * width
            ].view(numpy_dtype)
        bstate.regs[dst] = out

    return op


def _acompile_vector_store(inst: VectorStore, slots):
    addresses = _abatch_address(inst, slots)
    read_value = _abatch_raw(inst.value, slots)
    numpy_dtype = np.dtype(inst.dtype.numpy_dtype)
    size = numpy_dtype.itemsize

    def op(bstate):
        memory = bstate.memory
        base = addresses(bstate)
        values = np.asarray(read_value(bstate))
        if values.ndim == 2 and values.dtype == numpy_dtype:
            out = values
        elif values.ndim == 2:
            out = values.astype(numpy_dtype)
        else:
            # One scalar per warp (or one shared constant): every lane
            # of the stored vector carries it, as the sequential
            # path's np.full expansion does.
            out = np.empty(
                (bstate.size, bstate.warp_size), dtype=numpy_dtype
            )
            out[...] = (
                values.reshape(-1, 1) if values.ndim == 1 else values
            )
        width = out.shape[1]
        if memory._patched("write_array"):
            for position, address in enumerate(base):
                memory.write_array(int(address), out[position])
            return
        memory._check_batch(base, size * width)
        memory.store_count += base.size * width
        if not (base % size).any():
            index = (base // size)[:, None] + np.arange(width)
            memory.data.view(numpy_dtype)[index] = out
            return
        for position, address in enumerate(base):
            memory.data[
                address : address + size * width
            ] = np.ascontiguousarray(out[position]).view(np.uint8)

    return op


def _acompile_context_read(inst: ContextRead, slots):
    lane = inst.lane
    numpy_dtype = inst.dtype.numpy_dtype
    dst = slots[inst.dst.name]
    field_name = inst.field_name
    if field_name == "laneid":

        def op(bstate):
            bstate.regs[dst] = np.full(
                bstate.size, lane, dtype=numpy_dtype
            )

    elif field_name == "warpid":

        def op(bstate):
            bstate.regs[dst] = bstate.warp_ids.astype(numpy_dtype)

    elif field_name == "resume_point":

        def op(bstate):
            bstate.regs[dst] = np.array(
                [
                    contexts[lane].resume_point
                    for contexts in bstate.contexts
                ],
                dtype=numpy_dtype,
            )

    elif field_name in _CONTEXT_COORDINATES:
        attribute, axis = _CONTEXT_COORDINATES[field_name]

        def op(bstate):
            bstate.regs[dst] = bstate.coordinates(
                attribute, axis, lane
            ).astype(numpy_dtype)

    else:
        # %clock observes mid-block cycle counters; such blocks run
        # in the sequential precise path only.
        raise _Unsupported()
    return op


def _acompile_context_write(inst: ContextWrite, slots):
    if inst.field_name != "resume_point":
        raise _Unsupported()
    lane = inst.lane
    read = _abatch_raw(inst.value, slots)

    def op(bstate):
        values = read(bstate)
        if getattr(values, "ndim", 0) == 0:
            value = int(values)
            for contexts in bstate.contexts:
                contexts[lane].resume_point = value
        else:
            for position, contexts in enumerate(bstate.contexts):
                contexts[lane].resume_point = int(values[position])

    return op


def _acompile_insert(inst: InsertElement, slots):
    dst = slots[inst.dst.name]
    numpy_dtype = inst.dst.dtype.numpy_dtype
    width = inst.dst.width
    index = inst.index
    read_scalar = _abatch_raw(inst.scalar, slots)
    if inst.src is None:

        def op(bstate):
            vector = np.zeros((bstate.size, width), dtype=numpy_dtype)
            vector[:, index] = read_scalar(bstate)
            bstate.regs[dst] = vector

    else:
        read_src = _abatch_raw(inst.src, slots)

        def op(bstate):
            source = read_src(bstate)
            if getattr(source, "ndim", 0) == 2:
                vector = source.astype(numpy_dtype)
                if vector is source:
                    vector = source.copy()
            else:
                vector = np.empty(
                    (bstate.size, width), dtype=numpy_dtype
                )
                vector[...] = (
                    source.reshape(-1, 1)
                    if getattr(source, "ndim", 0) == 1
                    else source
                )
            vector[:, index] = read_scalar(bstate)
            bstate.regs[dst] = vector

    return op


def _acompile_extract(inst: ExtractElement, slots):
    read = _abatch_raw(inst.src, slots)
    index = inst.index
    dst = slots[inst.dst.name]

    def op(bstate):
        vector = read(bstate)
        if getattr(vector, "ndim", 0) == 2:
            bstate.regs[dst] = vector[:, index].copy()
        else:
            bstate.regs[dst] = vector

    return op


def _acompile_broadcast(inst: Broadcast, slots):
    read = _abatch_raw(inst.src, slots)
    width = inst.dst.width
    numpy_dtype = inst.dst.dtype.numpy_dtype
    dst = slots[inst.dst.name]

    def op(bstate):
        source = read(bstate)
        out = np.empty((bstate.size, width), dtype=numpy_dtype)
        out[...] = (
            source.reshape(-1, 1)
            if getattr(source, "ndim", 0) == 1
            else source
        )
        bstate.regs[dst] = out

    return op


def _acompile_reduce(inst: Reduce, slots):
    impl = _REDUCE_IMPL.get(inst.op)
    if impl is None:
        raise _Unsupported()
    read = _abatch_raw(inst.src, slots)
    convert = inst.dst.dtype.numpy_dtype.type
    dst = slots[inst.dst.name]

    def op(bstate):
        # Row-wise through the *scalar* reduction implementations:
        # their Python-int accumulation semantics (e.g. exact sums
        # truncated on conversion) are part of the reference
        # behavior and must match bit for bit.
        source = np.asarray(read(bstate))
        if source.ndim == 2:
            values = [
                convert(impl(source[position]))
                for position in range(bstate.size)
            ]
        elif source.ndim == 1:
            values = [
                convert(impl(np.asarray(source[position])))
                for position in range(bstate.size)
            ]
        else:
            value = convert(impl(source))
            values = [value] * bstate.size
        bstate.regs[dst] = np.array(values)

    return op


_ACOMPILERS = {
    BinaryOp: _acompile_binary,
    UnaryOp: _acompile_unary,
    FusedMultiplyAdd: _acompile_fma,
    Compare: _acompile_compare,
    Select: _acompile_select,
    Convert: _acompile_convert,
    Intrinsic: _acompile_intrinsic,
    Load: _acompile_load,
    Store: _acompile_store,
    VectorLoad: _acompile_vector_load,
    VectorStore: _acompile_vector_store,
    ContextRead: _acompile_context_read,
    ContextWrite: _acompile_context_write,
    InsertElement: _acompile_insert,
    ExtractElement: _acompile_extract,
    Broadcast: _acompile_broadcast,
    Reduce: _acompile_reduce,
    # AtomicRMW deliberately absent: see compile_array_blocks.
}


# ---------------------------------------------------------------------------
# Terminators: uniform control flow or region exit
# ---------------------------------------------------------------------------


def _acompile_terminator(terminator, slots):
    """Batched terminator: returns the successor label (str) when all
    warps agree, a resume status (int) when all warps yield, or
    ``None`` when the batch diverges (per-warp fallback)."""
    if isinstance(terminator, Branch):
        target = terminator.target
        return lambda bstate: target
    if isinstance(terminator, CondBranch):
        predicate = terminator.predicate
        if (
            isinstance(predicate, VirtualRegister)
            and predicate.width > 1
        ):
            raise _Unsupported()
        read = _abatch_raw(predicate, slots)
        taken = terminator.taken
        fallthrough = terminator.fallthrough

        def aterm(bstate):
            values = read(bstate)
            if getattr(values, "ndim", 0) == 0:
                return taken if bool(values) else fallthrough
            nonzero = values != 0
            if nonzero.all():
                return taken
            if not nonzero.any():
                return fallthrough
            return None

        return aterm
    if isinstance(terminator, Switch):
        read = _abatch_raw(terminator.value, slots)
        cases = dict(terminator.cases)
        default = terminator.default

        def aterm(bstate):
            values = read(bstate)
            if getattr(values, "ndim", 0) == 0:
                return cases.get(int(values), default)
            first = cases.get(int(values[0]), default)
            for value in values[1:]:
                if cases.get(int(value), default) != first:
                    return None
            return first

        return aterm
    if isinstance(terminator, Yield):
        status = terminator.status
        return lambda bstate: status
    if isinstance(terminator, Exit):
        status = ResumeStatus.THREAD_EXIT
        return lambda bstate: status
    # BarrierTerm (or anything new) has no batched form.
    raise _Unsupported()


# ---------------------------------------------------------------------------
# Block translation
# ---------------------------------------------------------------------------


def compile_array_blocks(
    function: IRFunction, slots
) -> Optional[Dict[str, tuple]]:
    """Build the batched lowering: ``{label: (ops, terminator)}``.

    Blocks the translation table cannot express are left out (the
    runner exits the region when the walk reaches one). A function
    containing atomics gets no array lowering at all: an atomic's
    sequential read-modify-write interleaving across warps is exactly
    what batching cannot preserve.
    """
    for block in function.ordered_blocks():
        for instruction in block.instructions:
            if isinstance(instruction, AtomicRMW):
                return None
    array_blocks: Dict[str, tuple] = {}
    for block in function.ordered_blocks():
        precise = any(
            isinstance(instruction, ContextRead)
            and instruction.field_name == "clock"
            for instruction in block.instructions
        )
        if precise:
            continue
        try:
            ops = []
            for instruction in block.instructions:
                compile_fn = _ACOMPILERS.get(type(instruction))
                if compile_fn is None:
                    raise _Unsupported()
                ops.append(compile_fn(instruction, slots))
            terminator = _acompile_terminator(block.terminator, slots)
        except _Unsupported:
            continue
        array_blocks[block.label] = (tuple(ops), terminator)
    return array_blocks


# ---------------------------------------------------------------------------
# The batch runner
# ---------------------------------------------------------------------------


@dataclass
class BatchOutcome:
    """Result of one batched region walk.

    ``kind == "yield"``: every warp took the same exit; ``status`` and
    ``stats`` apply identically to each warp in the batch.

    ``kind == "fallback"``: the region ended before a yield (divergent
    terminator, untranslated block, or a conservative instruction-
    limit/deadline exit); ``continuations`` carries one per-warp
    :class:`Continuation` for the closure path to finish.
    """

    kind: str
    status: int = 0
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    continuations: Tuple[Continuation, ...] = ()


def _warp_registers(bstate, position):
    """Extract one warp's ``(slot, value)`` register rows from the
    batched register file."""
    rows = []
    for slot, value in enumerate(bstate.regs):
        if value is None:
            continue
        ndim = getattr(value, "ndim", 0)
        if ndim == 0:
            rows.append((slot, value))
        elif ndim == 1:
            rows.append((slot, value[position]))
        else:
            rows.append((slot, value[position].copy()))
    return tuple(rows)


def _continuations(
    bstate, label, at_terminator, executed,
    kernel_cycles, yield_cycles, flops,
):
    return tuple(
        Continuation(
            label=label,
            at_terminator=at_terminator,
            executed=executed,
            kernel_cycles=kernel_cycles,
            yield_cycles=yield_cycles,
            flops=flops,
            registers=_warp_registers(bstate, position),
        )
        for position in range(bstate.size)
    )


class ArrayBackend(Interpreter):
    """The batched execution backend.

    Inherits the complete sequential machinery — ``load_function``'s
    closure lowering, ``execute``'s per-warp run loop — and adds the
    array lowering plus :meth:`execute_batch`. The sequential path
    stays available on the same instance: it is the fallback target
    for continuations and for warps the execution manager cannot
    batch (degraded widths, traced runs, static formation).
    """

    #: Feature-tested by the execution manager.
    supports_batching = True

    def load_function(self, function: IRFunction) -> ExecutableFunction:
        executable = super().load_function(function)
        if self.mode == "closure" and self.sanitizer is None:
            executable.array_blocks = compile_array_blocks(
                function, executable.register_slots
            )
        return executable

    def execute_batch(
        self,
        executable: ExecutableFunction,
        warps,
        param_base: int,
        limit: int,
        deadline: Optional[float] = None,
    ) -> BatchOutcome:
        """Run a batch of same-entry-point warps through the array
        region, starting at the scheduler block. Modeled costs are
        charged per block from the same aggregates the closure path
        uses; instruction-limit and deadline exits are *conservative*
        (the region is left before the offending block, and each
        warp's sequential resume re-detects the condition with
        byte-identical accounting)."""
        bstate = _BatchState(executable, warps, param_base, self.memory)
        with guest_errstate():
            return self._run_batch(executable, bstate, limit, deadline)

    def _run_batch(self, executable, bstate, limit, deadline):
        array_blocks = executable.array_blocks
        compiled_blocks = executable.compiled_blocks
        label = executable.entry_label
        executed = 0
        kernel_cycles = yield_cycles = flops = 0
        next_deadline_check = _DEADLINE_CHECK_STRIDE
        while True:
            entry = array_blocks.get(label)
            if entry is None:
                # Untranslated block: leave the region at its entry.
                return BatchOutcome(
                    "fallback",
                    continuations=_continuations(
                        bstate, label, False, executed,
                        kernel_cycles, yield_cycles, flops,
                    ),
                )
            block_cost = compiled_blocks[label]
            count = block_cost[4]
            if executed + count > limit:
                return BatchOutcome(
                    "fallback",
                    continuations=_continuations(
                        bstate, label, False, executed,
                        kernel_cycles, yield_cycles, flops,
                    ),
                )
            if (
                deadline is not None
                and executed + count >= next_deadline_check
            ):
                if time.monotonic() > deadline:
                    return BatchOutcome(
                        "fallback",
                        continuations=_continuations(
                            bstate, label, False, executed,
                            kernel_cycles, yield_cycles, flops,
                        ),
                    )
                next_deadline_check = (
                    executed + count + _DEADLINE_CHECK_STRIDE
                )
            ops, terminator = entry
            position = -1
            try:
                for position, op in enumerate(ops):
                    op(bstate)
                position = -2
                result = terminator(bstate)
            except ExecutionError as fault:
                if position == -2:
                    block = executable.function.blocks.get(label)
                    index = (
                        len(block.instructions)
                        if block is not None
                        else -1
                    )
                else:
                    # Array ops are 1:1 with block instructions (no
                    # run fusion), so the loop position is the PC.
                    index = position
                # The execution manager abandons a faulting batch and
                # re-runs its warps sequentially (exact trap
                # attribution); the annotation serves direct callers.
                _annotate_fault(fault, label, index)
                raise
            kernel_cycles += block_cost[1]
            yield_cycles += block_cost[2]
            flops += block_cost[3]
            executed += count
            if result is None:
                # Divergent terminator: the block body ran batched;
                # each warp evaluates its own terminator sequentially.
                return BatchOutcome(
                    "fallback",
                    continuations=_continuations(
                        bstate, label, True, executed,
                        kernel_cycles, yield_cycles, flops,
                    ),
                )
            if isinstance(result, str):
                label = result
                continue
            stats = ExecutionStats()
            stats.kernel_cycles = kernel_cycles
            stats.yield_cycles = yield_cycles
            stats.flops = flops
            stats.instructions = executed
            return BatchOutcome("yield", status=int(result), stats=stats)
