"""Simulated vector processor: machine description, flat memory with
segment windows, static cost model, and the interpreter that stands in
for JIT code generation + native execution (see DESIGN.md for the
substitution rationale)."""

from .costmodel import (
    FunctionCostTable,
    InstructionCost,
    build_cost_table,
    vector_register_pressure,
)
from .descriptor import (
    MACHINES,
    MachineDescription,
    avx_machine,
    knights_ferry,
    sandybridge,
)
from .interpreter import (
    ExecutableFunction,
    ExecutionStats,
    Interpreter,
)
from .memory import Allocation, MemorySystem

__all__ = [
    "Allocation",
    "ExecutableFunction",
    "ExecutionStats",
    "FunctionCostTable",
    "InstructionCost",
    "Interpreter",
    "MACHINES",
    "MachineDescription",
    "MemorySystem",
    "avx_machine",
    "build_cost_table",
    "knights_ferry",
    "sandybridge",
    "vector_register_pressure",
]
