"""Machine description of the simulated vector processor.

Calibrated to the paper's evaluation platform, an Intel Sandybridge
i7-2600 (§6): four cores at 3.4 GHz, SSE 4.2 (4 x f32 vector lanes),
16 architectural vector registers. The peak single-precision
throughput of this description is ``cores x lanes x 2 flops x clock``
~= 108 GFLOP/s, matching the paper's estimate.

The costs are issue-slot charges consumed by the cost model, not a
pipeline simulation: the paper's microbenchmark hides latency with
thread-level parallelism (Volkov-style), so sustained throughput is
governed by issue bandwidth — which is what these numbers express.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass(frozen=True)
class MachineDescription:
    """Parameters of the simulated CPU with vector extensions."""

    name: str = "sandybridge-sse"
    #: Worker cores (each runs one execution manager; §3).
    cores: int = 4
    #: Core clock in Hz.
    clock_hz: float = 3.4e9
    #: SIMD lanes per vector register (SSE: 4 x f32).
    vector_width: int = 4
    #: Architectural vector registers (xmm0-15).
    vector_registers: int = 16
    #: Issue-slot cost of one scalar/vector ALU operation.
    alu_cost: int = 1
    #: Issue-slot cost of a transcendental intrinsic.
    intrinsic_cost: int = 8
    #: Cost of one scalar memory access (L1-resident working sets).
    memory_cost: int = 3
    #: Cost of a thread-local (stack) access: the spill/restore slots
    #: of the yield machinery are store-to-load-forwarded, always-hot
    #: cache lines (§6.1: compiler-inserted context save/restore is
    #: "at least as efficient as other cooperative threading
    #: libraries").
    local_memory_cost: int = 1
    #: Cost of reading/writing a thread-context field.
    context_cost: int = 2
    #: Cost of an insertelement/extractelement shuffle.
    shuffle_cost: int = 1
    #: Cost of an atomic read-modify-write (lock prefix).
    atomic_cost: int = 20
    #: Branch / switch issue cost.
    branch_cost: int = 1
    switch_cost: int = 2
    #: Fixed cost of a yield (beyond the explicit spill stores).
    yield_cost: int = 5
    #: Extra issue slots per vector chunk when live vector state
    #: exceeds the physical register file (spill/fill traffic) — this
    #: is what degrades warp sizes beyond the machine width (Table 1).
    spill_penalty: int = 2
    #: Execution-manager costs (per §5.2): fixed cost of one
    #: scheduling event plus a per-thread component for warp formation
    #: and status updates.
    em_event_cost: int = 40
    em_per_thread_cost: int = 6
    #: Cost of a barrier bookkeeping operation per thread.
    em_barrier_cost: int = 4

    @property
    def peak_vector_gflops(self) -> float:
        """Peak single-precision GFLOP/s with full vector FMA issue."""
        return (
            self.cores * self.vector_width * 2 * self.clock_hz / 1e9
        )

    @property
    def peak_scalar_gflops(self) -> float:
        return self.cores * 2 * self.clock_hz / 1e9

    def vector_chunks(self, width: int) -> int:
        """Number of machine-width operations needed for one logical
        vector operation of ``width`` lanes."""
        if width <= 1:
            return 1
        return -(-width // self.vector_width)


def sandybridge() -> MachineDescription:
    """The paper's evaluation machine (i7-2600 with SSE 4.2)."""
    return MachineDescription()


def avx_machine() -> MachineDescription:
    """An 8-wide AVX variant of the same core (the paper expected to
    target AVX once LLVM's code generator supported it)."""
    return MachineDescription(
        name="sandybridge-avx", vector_width=8, vector_registers=16
    )


def knights_ferry() -> MachineDescription:
    """A 16-lane many-core machine in the spirit of Intel's Knights
    Ferry (§2/§6 mention it as the expected scaling target)."""
    return MachineDescription(
        name="knights-ferry",
        cores=32,
        clock_hz=1.2e9,
        vector_width=16,
        vector_registers=32,
    )


MACHINES: Dict[str, MachineDescription] = {
    "sandybridge-sse": sandybridge(),
    "sandybridge-avx": avx_machine(),
    "knights-ferry": knights_ferry(),
}
