"""Execution configuration: which specializations exist and how warps
are formed. Mirrors the experiment axes of §6."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple


@dataclass(frozen=True)
class ExecutionConfig:
    """Configuration of the dynamic compilation pipeline + runtime.

    Attributes
    ----------
    warp_sizes:
        Specialization widths kept in the translation cache. The paper
        uses (1, 2, 4) on the 4-wide SSE machine (§4.1: "each kernel
        has been specialized for warp sizes of 1 thread, 2 threads, and
        4 threads").
    static_warps:
        Static warp formation (§6.2): warps are consecutive ``tid.x``
        threads of one CTA instead of dynamically re-formed groups.
    thread_invariant_elimination:
        Scalarize provably thread-invariant expressions (§6.2).
    optimize:
        Run the traditional cleanup pipeline (constant folding, CSE,
        DCE, block fusion) after vectorization (§5.1).
    scalar_yields_at_branches:
        Whether the width-1 specialization yields at conditional
        branches so threads can re-form wider warps (Fig. 4b). ``None``
        = automatic: True when wider specializations exist, False for
        the pure scalar baseline.
    cta_window:
        How many CTAs each execution manager keeps simultaneously
        active (bounds shared/local memory footprint).
    allow_cross_cta_warps:
        Permit warps mixing threads of different CTAs (Fig. 2 draws
        the formation pool from several CTAs). Off by default: warp
        primitives (``vote``) are warp-scoped, and same-CTA formation
        matches Ocelot's multicore backend.
    """

    warp_sizes: Tuple[int, ...] = (1, 2, 4)
    static_warps: bool = False
    thread_invariant_elimination: bool = False
    optimize: bool = True
    scalar_yields_at_branches: Optional[bool] = None
    cta_window: int = 4
    allow_cross_cta_warps: bool = False
    #: Enable the affine vector-memory optimization (§4 future work):
    #: contiguous per-lane accesses become single vector loads/stores.
    #: Only effective together with static_warps.
    vector_memory: bool = False
    #: If-convert short pure diamonds into selects before vectorizing
    #: (the predication-style conditional data flow of Karrenberg/Shin,
    #: §7) — trades both-arms execution for fewer divergence yields.
    if_conversion: bool = False
    #: Control-flow melding (DARM): align and merge the arms of
    #: divergent diamonds into predicated straight-line code before
    #: vectorizing, guarded by a cost-model profitability check at the
    #: maximum configured warp width. Can also be forced with
    #: ``REPRO_MELD=1`` in the environment (resolved at Device
    #: construction). See :mod:`repro.transforms.melding`.
    meld: bool = False
    #: Opt into the persistent translation-cache tier: vectorized IR is
    #: pickled on disk so cold processes skip translation. Can also be
    #: force-enabled with ``REPRO_CACHE=1`` in the environment.
    persistent_cache: bool = False
    #: Directory of the persistent tier. ``None`` falls back to
    #: ``$REPRO_CACHE_DIR``, then ``~/.cache/repro``.
    cache_dir: Optional[str] = None
    #: How the machine executes lowered specializations: ``"closure"``
    #: (the specializing lowering — pre-bound closures, default) or
    #: ``"dispatch"`` (the per-instruction reference interpreter, kept
    #: for A/B validation of modeled statistics).
    interpreter_mode: str = "closure"
    #: Watchdog: per-worker modeled-cycle budget for one launch. When a
    #: launch's kernel+yield+EM cycles exceed this, it is terminated
    #: with :class:`~repro.errors.LaunchTimeout` naming every live
    #: thread's program point. Runaway loops that never yield are
    #: bounded too: the per-warp instruction cap is clamped to the
    #: remaining cycle budget (every kernel instruction costs at least
    #: one modeled cycle). ``None`` disables the budget.
    max_kernel_cycles: Optional[int] = None
    #: Watchdog: wall-clock deadline (host seconds) for one launch,
    #: measured from launch entry and shared by all workers. Checked at
    #: warp boundaries and every few thousand instructions inside
    #: non-yielding warps. ``None`` disables the deadline.
    launch_timeout_s: Optional[float] = None
    #: Kernel sanitizer (checked execution): ``False`` (off — the
    #: default, leaving the lowered fast path byte-for-byte untouched),
    #: ``True`` (all checks), or an iterable drawn from
    #: ``("memcheck", "racecheck", "initcheck")``. Normalized to a
    #: tuple of check names. Requires the closure interpreter mode
    #: (the checked lowering is a closure-path variant). Can also be
    #: forced from the environment with ``REPRO_SANITIZE=1`` (resolved
    #: at Device construction).
    sanitize: object = False
    #: Fatal sanitizer findings raise
    #: :class:`~repro.errors.SanitizerError` (contained as a
    #: KernelTrap); ``False`` accumulates non-fatal
    #: ``SanitizerReport``s on ``LaunchStatistics.sanitizer`` instead.
    sanitize_fatal: bool = True
    #: Execution backend (:data:`repro.machine.backend.BACKENDS`):
    #: ``"interpreter"`` runs one warp at a time through the selected
    #: ``interpreter_mode``; ``"array"`` batches every resident warp
    #: of an entry point into numpy array programs over uniform block
    #: runs, falling back to the closure path on divergence. Can also
    #: be selected with ``REPRO_BACKEND=array`` in the environment
    #: (resolved at Device construction).
    backend: str = "interpreter"

    def __post_init__(self):
        from ..machine.backend import BACKENDS

        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r} "
                f"(expected one of {BACKENDS})"
            )
        if (
            self.backend == "array"
            and self.interpreter_mode != "closure"
        ):
            raise ValueError(
                "the array backend extends the closure lowering "
                "(its fallback path resumes compiled blocks); "
                "interpreter_mode='dispatch' cannot batch"
            )
        if self.interpreter_mode not in ("closure", "dispatch"):
            raise ValueError(
                f"unknown interpreter_mode {self.interpreter_mode!r} "
                f"(expected 'closure' or 'dispatch')"
            )
        if not self.warp_sizes:
            raise ValueError("warp_sizes must not be empty")
        if sorted(self.warp_sizes) != list(self.warp_sizes):
            raise ValueError("warp_sizes must be ascending")
        if 1 not in self.warp_sizes:
            raise ValueError(
                "a width-1 specialization is required (threads resume "
                "scalar execution after divergence)"
            )
        if self.max_kernel_cycles is not None and self.max_kernel_cycles <= 0:
            raise ValueError("max_kernel_cycles must be positive")
        if self.launch_timeout_s is not None and self.launch_timeout_s <= 0:
            raise ValueError("launch_timeout_s must be positive")
        from ..sanitizer.core import normalize_checks

        checks = normalize_checks(self.sanitize)
        object.__setattr__(self, "sanitize", checks)
        if checks and self.interpreter_mode != "closure":
            raise ValueError(
                "the sanitizer is a closure-lowering variant; "
                "interpreter_mode='dispatch' cannot sanitize"
            )

    @property
    def max_warp_size(self) -> int:
        return max(self.warp_sizes)

    @property
    def sanitize_checks(self) -> Tuple[str, ...]:
        """The normalized sanitizer check tuple (empty when off)."""
        return self.sanitize  # normalized by __post_init__

    @property
    def vectorized(self) -> bool:
        return self.max_warp_size > 1

    def yields_at_branches(self, warp_size: int) -> bool:
        """Yield policy of one specialization.

        Dynamic formation: sub-maximal widths yield at every formerly
        conditional branch so the execution manager can re-form wider
        warps (Fig. 4b's reconvergence). The maximal width yields only
        on divergence (Algorithm 2's switch).

        Static formation (§6.2): the thread-to-warp mapping is fixed a
        priori, so chasing re-formation is pointless — diverged
        sub-warps run on without yielding and only barriers regroup
        them ("constrained warp formation").
        """
        if self.static_warps:
            return False
        if warp_size >= self.max_warp_size:
            return False
        if warp_size == 1 and self.scalar_yields_at_branches is not None:
            return self.scalar_yields_at_branches
        return True

    def cache_key(self) -> tuple:
        """The axes that change generated code. Part of every
        specialization digest, so two configs differing in any of these
        can never exchange cache entries. ``persistent_cache`` /
        ``cache_dir`` / ``cta_window`` / ``allow_cross_cta_warps`` /
        ``interpreter_mode`` / ``max_kernel_cycles`` /
        ``launch_timeout_s`` are deliberately absent: they affect where
        code is stored or how warps are formed/executed/bounded at
        runtime, not the code itself (both interpreter modes consume
        the same vectorized IR and produce bit-identical
        statistics). ``sanitize`` participates only when ON (checked
        closures replace the memory closures), as an appended entry —
        the off-mode key is byte-identical to pre-sanitizer releases so
        persistent-cache digests stay stable. ``backend`` follows the
        same pattern: the non-default backend attaches an extra
        lowering (the array translation table) to its executables, so
        it gets its own cache namespace, while the default backend's
        key stays byte-identical to earlier releases.
        ``sanitize_fatal`` is runtime report routing, not codegen, and
        stays out."""
        key = (
            self.warp_sizes,
            self.static_warps,
            self.thread_invariant_elimination,
            self.optimize,
            self.scalar_yields_at_branches,
            self.vector_memory,
            self.if_conversion,
        )
        if self.sanitize:
            key += (("sanitize",) + tuple(self.sanitize),)
        if self.backend != "interpreter":
            key += (("backend", self.backend),)
        if self.meld:
            # Appended (like sanitize/backend) so meld-off digests stay
            # byte-identical to pre-melding releases.
            key += (("meld",),)
        return key


def apply_backend_env(config: ExecutionConfig) -> ExecutionConfig:
    """Resolve the ``REPRO_BACKEND`` environment override.

    A config that already selects a non-default backend wins over the
    environment. Dispatch-mode configs are left untouched (the array
    backend requires the closure lowering; CI's backend matrix still
    exercises dispatch-mode tests under their configured backend)."""
    import os
    from dataclasses import replace

    override = os.environ.get("REPRO_BACKEND", "").strip()
    if not override or override == config.backend:
        return config
    if config.backend != "interpreter":
        return config
    if config.interpreter_mode != "closure":
        return config
    from ..machine.backend import BACKENDS

    if override not in BACKENDS:
        raise ValueError(
            f"REPRO_BACKEND={override!r} is not a known backend "
            f"(expected one of {BACKENDS})"
        )
    return replace(config, backend=override)


def apply_meld_env(config: ExecutionConfig) -> ExecutionConfig:
    """Resolve the ``REPRO_MELD`` environment override.

    ``REPRO_MELD=1`` (or any truthy spelling) forces control-flow
    melding on for devices that did not select it explicitly — the CI
    meld leg runs the whole suite this way. A config that already
    enables melding is returned unchanged."""
    import os
    from dataclasses import replace

    override = os.environ.get("REPRO_MELD", "").strip().lower()
    if override in ("", "0", "false", "off", "no"):
        return config
    if config.meld:
        return config
    return replace(config, meld=True)


def baseline_config() -> ExecutionConfig:
    """The paper's baseline: pure scalar serialization with the
    [16]-style thread scheduler — no vectorization, no branch yields."""
    return ExecutionConfig(
        warp_sizes=(1,), scalar_yields_at_branches=False
    )


def vectorized_config(max_warp_size: int = 4) -> ExecutionConfig:
    """Dynamic warp formation with specializations up to
    ``max_warp_size`` (Figure 6's configuration)."""
    sizes = [1]
    while sizes[-1] * 2 <= max_warp_size:
        sizes.append(sizes[-1] * 2)
    return ExecutionConfig(warp_sizes=tuple(sizes))


def static_tie_config(
    max_warp_size: int = 4, vector_memory: bool = False
) -> ExecutionConfig:
    """Static warp formation + thread-invariant elimination
    (Figure 10's configuration). ``vector_memory=True`` additionally
    enables the affine vector load/store optimization the paper left
    as future work."""
    sizes = [1]
    while sizes[-1] * 2 <= max_warp_size:
        sizes.append(sizes[-1] * 2)
    return ExecutionConfig(
        warp_sizes=tuple(sizes),
        static_warps=True,
        thread_invariant_elimination=True,
        vector_memory=vector_memory,
    )
