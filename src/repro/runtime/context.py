"""Thread contexts and warps.

A :class:`ThreadContext` is the paper's "context object identifying the
executing thread" (§4): grid/block geometry, thread coordinates, base
pointers for its shared and local segments, and the resume point used
by the yield-on-diverge machinery. A :class:`Warp` is an ordered
collection of contexts entering the same block (§3, "warp formation").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from ..ir.instructions import ResumeStatus


@dataclass
class ThreadContext:
    """One light-weight PTX thread."""

    tid: Tuple[int, int, int]
    ntid: Tuple[int, int, int]
    ctaid: Tuple[int, int, int]
    nctaid: Tuple[int, int, int]
    #: Absolute arena address of this thread's CTA shared segment.
    shared_base: int = 0
    #: Absolute arena address of this thread's private local segment
    #: (user .local variables followed by the spill area).
    local_base: int = 0
    #: Entry-point ID at which the thread resumes (0 = kernel entry).
    resume_point: int = 0
    #: Last resume status observed for this thread.
    status: int = ResumeStatus.RUNNING

    @property
    def linear_tid(self) -> int:
        x, y, z = self.tid
        nx, ny, _ = self.ntid
        return x + nx * (y + ny * z)

    @property
    def linear_ctaid(self) -> int:
        x, y, z = self.ctaid
        nx, ny, _ = self.nctaid
        return x + nx * (y + ny * z)

    @property
    def global_linear_id(self) -> int:
        threads_per_cta = self.ntid[0] * self.ntid[1] * self.ntid[2]
        return self.linear_ctaid * threads_per_cta + self.linear_tid

    def __repr__(self):
        return (
            f"<Thread cta={self.ctaid} tid={self.tid} "
            f"entry={self.resume_point}>"
        )


@dataclass
class Warp:
    """Threads executing one vectorized subkernel entry together."""

    contexts: List[ThreadContext]
    warp_id: int = 0

    @property
    def size(self) -> int:
        return len(self.contexts)

    @property
    def entry_point(self) -> int:
        return self.contexts[0].resume_point

    def validate(self) -> bool:
        """All member threads must wait at the same entry point."""
        entry = self.entry_point
        return all(c.resume_point == entry for c in self.contexts)

    def __repr__(self):
        return (
            f"<Warp #{self.warp_id} size={self.size} "
            f"entry={self.entry_point}>"
        )
