"""HTTP front-end for the :class:`~repro.runtime.pool.DevicePool`.

``python -m repro.serve`` starts a :class:`KernelServer`: a small
JSON-over-HTTP service through which concurrent clients register PTX
modules, allocate and fill device buffers, submit launches, and
collect results. Each client identifies itself by a tenant name; the
pool pins the tenant to a worker process and schedules its launches
through the weighted fair queue, so one client's trapping kernel
never blocks or corrupts another client's work.

Endpoints (all bodies JSON):

===============  ====  ====================================================
path             verb  action
===============  ====  ====================================================
``/v1/session``  POST  create/fetch a tenant session (weight, quotas)
``/v1/register`` POST  register a PTX module (tenant-private)
``/v1/malloc``   POST  allocate ``size`` bytes → allocation handle
``/v1/upload``   POST  allocate + write ``data`` (list + dtype)
``/v1/write``    POST  overwrite an allocation with ``data``
``/v1/read``     POST  read ``count`` items of ``dtype`` → list
``/v1/free``     POST  release an allocation
``/v1/launch``   POST  queue an async launch → launch id
``/v1/collect``  POST  wait for a launch id → result or structured error
``/v1/reset``    POST  clear the tenant's sticky fault
``/v1/inject``   POST  arm a fault-injection site on the tenant's worker
``/v1/disarm``   POST  restore all fault sites on the tenant's worker
``/v1/stats``    GET   pool-level report + per-tenant counters
``/v1/health``   GET   liveness: supervision snapshot, always 200
``/v1/ready``    GET   readiness: 503 while draining / breaker open
===============  ====  ====================================================

``/v1/session`` accepts an optional ``durability`` field
(``"none"`` | ``"journal"`` | ``"checkpoint"``, default the server's
``--durability``): durable tenants get the pool's state journaling /
checkpoint layer, so a worker crash is restored transparently and
re-dispatched collects carry ``"restored": true`` instead of a
``DeviceLost`` error payload.

Health is split for load balancers: ``/v1/health`` is *liveness* —
it always answers 200 while the process serves HTTP, reporting the
supervision snapshot. ``/v1/ready`` is *readiness* — it answers 503
with ``ready: false`` while the server drains or any worker's circuit
breaker is open (respawns suspended), so balancers stop routing new
work but keep the process alive to finish what it has.

Errors map onto status codes: quota rejections are 429, launch/usage
errors 400, contained kernel faults arrive as ``ok: false`` collect
payloads (the *request* succeeded; the *launch* trapped) carrying the
rendered trap report and partial statistics.

Overload safety: launch admission is bounded — when the tenant's or
the server's total outstanding-launch depth reaches its limit, or the
server is draining for shutdown, ``/v1/launch`` sheds the request
with **503** and a ``Retry-After`` header instead of queueing without
bound (:class:`~repro.errors.ServiceUnavailable` client-side).
Launches accept a ``deadline`` (seconds of queue wait) after which
they fail with ``DeadlineExpired`` rather than running late.
:meth:`KernelServer.shutdown` drains gracefully by default: new
launches are shed, queued work flushes, then the workers stop.
"""

from __future__ import annotations

import json
import random
import socket
import threading
import time
from collections import OrderedDict
from http.client import HTTPConnection
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

import numpy as np

from ..errors import (
    DeviceLost,
    LaunchError,
    QuotaExceeded,
    ReproError,
    ServiceUnavailable,
)
from .pool import (
    DevicePool,
    RemoteAllocation,
    RetryPolicy,
    TenantSession,
    _retry_seed,
)


class _ServiceState:
    """Mutable server state shared across handler threads."""

    def __init__(
        self,
        pool: DevicePool,
        max_queue_depth: Optional[int] = None,
        max_tenant_queue: Optional[int] = None,
        default_deadline: Optional[float] = None,
        retry_after: float = 1.0,
        durability: str = "none",
        checkpoint_interval: int = 32,
    ):
        self.pool = pool
        self.max_queue_depth = max_queue_depth
        self.max_tenant_queue = max_tenant_queue
        self.default_deadline = default_deadline
        self.retry_after = retry_after
        #: default session durability for tenants that don't pick one
        self.durability = durability
        self.checkpoint_interval = checkpoint_interval
        self.draining = False
        self.lock = threading.Lock()
        self.allocations: Dict[int, RemoteAllocation] = {}
        self.futures: Dict[int, Tuple[str, object]] = {}
        #: recently-collected payloads, keyed by launch id — kept so a
        #: client whose collect *response* was lost to a connection
        #: reset can retry the same id and get the same answer instead
        #: of "unknown launch id" (bounded LRU)
        self.collected: "OrderedDict[int, Tuple[str, dict]]" = (
            OrderedDict()
        )
        self.collected_limit = 256
        self.next_id = 1

    def admit(self, session: TenantSession) -> None:
        """Launch admission control: shed (503 + Retry-After) instead
        of queueing without bound or accepting work mid-drain."""
        if self.draining:
            raise ServiceUnavailable(
                "server is draining for shutdown",
                retry_after=self.retry_after,
            )
        if (
            self.max_tenant_queue is not None
            and session.pending >= self.max_tenant_queue
        ):
            raise ServiceUnavailable(
                f"tenant {session.tenant!r} has {session.pending} "
                f"launches queued (limit {self.max_tenant_queue}); "
                f"back off and retry",
                retry_after=self.retry_after,
            )
        if self.max_queue_depth is not None:
            depth = sum(s.pending for s in self.pool.sessions())
            if depth >= self.max_queue_depth:
                raise ServiceUnavailable(
                    f"server has {depth} launches queued (limit "
                    f"{self.max_queue_depth}); back off and retry",
                    retry_after=self.retry_after,
                )

    def allot(self, table: Dict[int, object], value) -> int:
        with self.lock:
            handle = self.next_id
            self.next_id += 1
            table[handle] = value
        return handle

    def session(self, body: dict) -> TenantSession:
        tenant = body.get("tenant")
        if not tenant:
            raise LaunchError("request body must name a tenant")
        return self.pool.session(
            str(tenant),
            weight=float(body.get("weight", 1.0)),
            max_pending=body.get("max_pending"),
            max_launches=body.get("max_launches"),
            worker=body.get("worker"),
            durability=str(body.get("durability") or self.durability),
            checkpoint_interval=int(
                body.get("checkpoint_interval")
                or self.checkpoint_interval
            ),
        )

    def allocation(self, body: dict, session: TenantSession):
        handle = body.get("allocation")
        with self.lock:
            allocation = self.allocations.get(handle)
        if allocation is None:
            raise LaunchError(f"unknown allocation id {handle!r}")
        if allocation.tenant != session.tenant:
            raise LaunchError(
                f"allocation {handle} belongs to tenant "
                f"{allocation.tenant!r}, not {session.tenant!r}"
            )
        return allocation


def _error_payload(error: BaseException) -> dict:
    payload = {
        "type": type(error).__name__,
        "message": str(error),
    }
    report = getattr(error, "remote_report", None)
    if report:
        payload["report"] = report
    statistics = getattr(error, "statistics", None)
    if statistics is not None:
        payload["instructions"] = statistics.instructions
    if isinstance(error, DeviceLost):
        payload["worker"] = error.worker
        payload["cause"] = error.cause
        payload["epoch"] = error.epoch
        payload["delivered"] = error.delivered
    return payload


class _Handler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    state: _ServiceState = None  # patched onto the subclass per server

    # -- plumbing ----------------------------------------------------------

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # keep the server silent; stats go through /v1/stats

    def _reply(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0))
        if length == 0:
            return {}
        raw = self.rfile.read(length)
        try:
            body = json.loads(raw)
        except json.JSONDecodeError as error:
            raise LaunchError(f"request body is not JSON: {error}")
        if not isinstance(body, dict):
            raise LaunchError("request body must be a JSON object")
        return body

    # -- dispatch ----------------------------------------------------------

    def _worker_snapshot(self) -> list:
        return [
            {
                "worker": health.worker,
                "alive": health.alive,
                "state": health.state,
                "epoch": health.epoch,
                "respawns": health.respawns,
                "failures": health.consecutive_failures,
                "in_flight": health.in_flight,
                "last_cause": health.last_cause,
                "restores": health.restores,
                "last_restore_seconds": health.last_restore_seconds,
            }
            for health in self.state.pool.health()
        ]

    def do_GET(self):  # noqa: N802 - stdlib naming
        if self.path == "/v1/health":
            # Liveness: the process is serving HTTP — always 200. A
            # lost worker is the supervisor's problem (it respawns),
            # not a reason for an orchestrator to kill the server.
            workers = self._worker_snapshot()
            self._reply(
                200,
                {
                    "ok": all(entry["alive"] for entry in workers),
                    "draining": self.state.draining,
                    "workers": workers,
                },
            )
            return
        if self.path == "/v1/ready":
            # Readiness: should a load balancer route new work here?
            # Not while draining (launches shed with 503 anyway) and
            # not while any breaker is open (respawns suspended — the
            # pool cannot heal until the cooldown elapses).
            workers = self._worker_snapshot()
            breaker_open = any(
                entry["state"] == "open" for entry in workers
            )
            ready = not self.state.draining and not breaker_open
            self._reply(
                200 if ready else 503,
                {
                    "ready": ready,
                    "draining": self.state.draining,
                    "breaker_open": breaker_open,
                    "workers": workers,
                },
            )
            return
        if self.path != "/v1/stats":
            self._reply(404, {"error": f"unknown path {self.path}"})
            return
        pool = self.state.pool
        tenants = {
            tenant: {
                "worker": stats.worker,
                "weight": stats.weight,
                "submitted": stats.submitted,
                "completed": stats.completed,
                "failed": stats.failed,
                "traps": stats.traps,
                "rejected": stats.rejected,
                "instructions": stats.statistics.instructions,
                "restores": stats.restores,
                "restored_launches": stats.restored_launches,
                "checkpoints": stats.checkpoints,
            }
            for tenant, stats in pool.statistics().items()
        }
        self._reply(
            200,
            {
                "workers": pool.workers,
                "tenants": tenants,
                "report": pool.report(),
            },
        )

    def do_POST(self):  # noqa: N802 - stdlib naming
        try:
            body = self._read_body()
            handler = {
                "/v1/session": self._post_session,
                "/v1/register": self._post_register,
                "/v1/malloc": self._post_malloc,
                "/v1/upload": self._post_upload,
                "/v1/write": self._post_write,
                "/v1/read": self._post_read,
                "/v1/free": self._post_free,
                "/v1/launch": self._post_launch,
                "/v1/collect": self._post_collect,
                "/v1/reset": self._post_reset,
                "/v1/inject": self._post_inject,
                "/v1/disarm": self._post_disarm,
            }.get(self.path)
            if handler is None:
                self._reply(404, {"error": f"unknown path {self.path}"})
                return
            self._reply(200, handler(body))
        except ServiceUnavailable as error:
            retry_after = (
                self.state.retry_after
                if error.retry_after is None
                else error.retry_after
            )
            self._reply(
                503,
                {"error": _error_payload(error)},
                headers={"Retry-After": f"{retry_after:g}"},
            )
        except QuotaExceeded as error:
            self._reply(429, {"error": _error_payload(error)})
        except (LaunchError, ReproError, ValueError, KeyError) as error:
            self._reply(400, {"error": _error_payload(error)})
        except Exception as error:  # pragma: no cover - defensive
            self._reply(500, {"error": _error_payload(error)})

    # -- endpoints ---------------------------------------------------------

    def _post_session(self, body: dict) -> dict:
        session = self.state.session(body)
        return {
            "tenant": session.tenant,
            "worker": session.worker_index,
            "weight": session.weight,
        }

    def _post_register(self, body: dict) -> dict:
        session = self.state.session(body)
        kernels = session.register_module(body["source"])
        return {"kernels": kernels}

    def _post_malloc(self, body: dict) -> dict:
        session = self.state.session(body)
        allocation = session.malloc(
            int(body["size"]), label=body.get("label")
        )
        return {
            "allocation": self.state.allot(
                self.state.allocations, allocation
            ),
            "address": allocation.address,
            "size": allocation.size,
        }

    def _post_upload(self, body: dict) -> dict:
        session = self.state.session(body)
        array = np.asarray(
            body["data"], dtype=np.dtype(body.get("dtype", "f4"))
        )
        allocation = session.upload(array, label=body.get("label"))
        return {
            "allocation": self.state.allot(
                self.state.allocations, allocation
            ),
            "address": allocation.address,
            "size": allocation.size,
        }

    def _post_write(self, body: dict) -> dict:
        session = self.state.session(body)
        allocation = self.state.allocation(body, session)
        session.write(
            allocation,
            np.asarray(
                body["data"], dtype=np.dtype(body.get("dtype", "f4"))
            ),
        )
        return {"ok": True}

    def _post_read(self, body: dict) -> dict:
        session = self.state.session(body)
        allocation = self.state.allocation(body, session)
        values = session.read(
            allocation, np.dtype(body["dtype"]), int(body["count"])
        )
        return {"data": np.asarray(values).tolist()}

    def _post_free(self, body: dict) -> dict:
        session = self.state.session(body)
        allocation = self.state.allocation(body, session)
        session.free(allocation)
        with self.state.lock:
            self.state.allocations.pop(body.get("allocation"), None)
        return {"ok": True}

    def _post_launch(self, body: dict) -> dict:
        session = self.state.session(body)
        self.state.admit(session)
        args = []
        for value in body.get("args", ()):
            if isinstance(value, dict) and "allocation" in value:
                args.append(self.state.allocation(value, session))
            else:
                args.append(value)
        deadline = body.get("deadline", self.state.default_deadline)
        future = session.launch_async(
            body["kernel"],
            body.get("grid", 1),
            body.get("block", 1),
            args,
            deadline=deadline,
        )
        return {
            "launch": self.state.allot(
                self.state.futures, (session.tenant, future)
            )
        }

    def _post_collect(self, body: dict) -> dict:
        session = self.state.session(body)
        handle = body.get("launch")
        with self.state.lock:
            entry = self.state.futures.pop(handle, None)
            if entry is None:
                # Collect is idempotent: a client that lost the
                # *response* to a connection reset retries the same
                # launch id and gets the cached payload back.
                cached = self.state.collected.get(handle)
                if cached is not None and cached[0] == session.tenant:
                    return cached[1]
        if entry is None:
            raise LaunchError(f"unknown launch id {handle!r}")
        tenant, future = entry
        if tenant != session.tenant:
            with self.state.lock:
                self.state.futures[handle] = entry
            raise LaunchError(
                f"launch {handle} belongs to tenant {tenant!r}"
            )
        try:
            error = future.exception(timeout=body.get("timeout", 60.0))
        except LaunchError:
            # Wait timed out — put the future back so the client can
            # poll the same launch id again.
            with self.state.lock:
                self.state.futures[handle] = entry
            raise
        if error is not None:
            payload = {"ok": False, "error": _error_payload(error)}
        else:
            result = future.result()
            payload = {
                "ok": True,
                "kernel": result.kernel_name,
                "instructions": result.statistics.instructions,
                "cycles": result.statistics.total_cycles,
                "restored": bool(getattr(result, "restored", False)),
            }
        with self.state.lock:
            self.state.collected[handle] = (tenant, payload)
            while len(self.state.collected) > self.state.collected_limit:
                self.state.collected.popitem(last=False)
        return payload

    def _post_reset(self, body: dict) -> dict:
        self.state.session(body).reset()
        return {"ok": True}

    def _post_inject(self, body: dict) -> dict:
        session = self.state.session(body)
        session.inject_fault(
            body["site"],
            probability=float(body.get("probability", 1.0)),
            seed=body.get("seed"),
            **body.get("options", {}),
        )
        return {"ok": True}

    def _post_disarm(self, body: dict) -> dict:
        self.state.session(body).disarm_faults()
        return {"ok": True}


class KernelServer:
    """Threaded HTTP server in front of a DevicePool.

    ::

        pool = DevicePool(workers=2, modules=[PTX])
        server = KernelServer(pool, port=0)
        server.start_background()
        ... ServeClient(server.host, server.port) ...
        server.shutdown()
    """

    def __init__(
        self,
        pool: DevicePool,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queue_depth: Optional[int] = None,
        max_tenant_queue: Optional[int] = None,
        default_deadline: Optional[float] = None,
        retry_after: float = 1.0,
        durability: str = "none",
        checkpoint_interval: int = 32,
    ):
        self.pool = pool
        self._state = _ServiceState(
            pool,
            max_queue_depth=max_queue_depth,
            max_tenant_queue=max_tenant_queue,
            default_deadline=default_deadline,
            retry_after=retry_after,
            durability=durability,
            checkpoint_interval=checkpoint_interval,
        )
        handler = type("BoundHandler", (_Handler,), {"state": self._state})
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    def serve_forever(self) -> None:
        self._httpd.serve_forever(poll_interval=0.1)

    def start_background(self) -> None:
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve", daemon=True
        )
        self._thread.start()

    @property
    def draining(self) -> bool:
        return self._state.draining

    def drain(self, timeout: Optional[float] = None) -> None:
        """Stop admitting launches (new ones shed with 503) and block
        until every already-queued launch has completed. Collects,
        reads, and stats keep working throughout, so clients can
        harvest in-flight results during the drain."""
        self._state.draining = True
        for session in self.pool.sessions():
            session.synchronize(timeout=timeout)

    def shutdown(
        self,
        shutdown_pool: bool = True,
        drain: bool = True,
        drain_timeout: Optional[float] = 30.0,
    ) -> None:
        """Graceful by default: shed new launches, flush the queues,
        stop accepting connections, then stop the workers. Pass
        ``drain=False`` for an immediate stop (queued launches fail
        with ``LaunchError``)."""
        if drain:
            try:
                self.drain(timeout=drain_timeout)
            except LaunchError:
                pass  # flush timed out; fall through to hard stop
        self._httpd.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=10)
            self._thread = None
        self._httpd.server_close()
        if shutdown_pool:
            self.pool.shutdown()


#: POST paths a ServeClient may safely re-send after a connection
#: reset: they either don't mutate server state (read, session fetch)
#: or are idempotent by construction (collect caches its payload per
#: launch id server-side). Launch/malloc/upload are NOT here — a
#: resend could double-apply them.
_IDEMPOTENT_PATHS = frozenset(
    {"/v1/session", "/v1/read", "/v1/collect", "/v1/stats"}
)


class ServeClient:
    """Minimal blocking client of a :class:`KernelServer` (stdlib
    ``http.client``, HTTP/1.1 keep-alive — one TCP connection per
    client).

    Idempotent requests (GETs, ``/v1/read``, ``/v1/collect`` polls,
    ``/v1/session``) that hit a connection reset/refused — typical
    while a server restarts or a respawn window drops keep-alive
    connections — are retried with the ``retry`` policy's exponential
    backoff instead of surfacing the raw socket error. Mutating
    requests (launch, malloc, upload, ...) are never resent."""

    def __init__(
        self,
        host: str,
        port: int,
        tenant: str,
        weight: float = 1.0,
        max_pending: Optional[int] = None,
        max_launches: Optional[int] = None,
        worker: Optional[int] = None,
        timeout: float = 120.0,
        durability: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
    ):
        self.tenant = tenant
        self._conn = HTTPConnection(host, port, timeout=timeout)
        self._retry = retry or RetryPolicy(
            max_attempts=4, base_delay=0.1
        )
        self._rng = random.Random(_retry_seed())
        self._session_body = {
            "tenant": tenant,
            "weight": weight,
            "max_pending": max_pending,
            "max_launches": max_launches,
        }
        if durability is not None:
            self._session_body["durability"] = durability
        body = dict(self._session_body)
        if worker is not None:
            body["worker"] = worker
        self.worker = self._post("/v1/session", body)["worker"]

    # -- plumbing ----------------------------------------------------------

    def _transport(
        self, method: str, path: str, payload: Optional[bytes]
    ):
        """One request/response over the keep-alive connection;
        returns ``(response, raw_body)``. Connection-level failures
        close the socket (the next attempt reconnects) and re-raise."""
        try:
            headers = {}
            if payload is not None:
                headers["Content-Type"] = "application/json"
            self._conn.request(
                method, path, body=payload, headers=headers
            )
            response = self._conn.getresponse()
            return response, response.read()
        except (ConnectionError, socket.timeout, OSError):
            self._conn.close()
            raise

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict],
        raise_for_status: bool = True,
    ) -> dict:
        payload = (
            None if body is None
            else json.dumps(body).encode("utf-8")
        )
        idempotent = method == "GET" or path in _IDEMPOTENT_PATHS
        attempt = 0
        while True:
            attempt += 1
            try:
                response, raw = self._transport(method, path, payload)
                break
            except (ConnectionError, socket.timeout, OSError):
                if (
                    not idempotent
                    or attempt >= self._retry.max_attempts
                ):
                    raise
                time.sleep(self._retry.backoff(attempt, self._rng))
        reply = json.loads(raw)
        if not raise_for_status:
            return reply
        if response.status == 429:
            raise QuotaExceeded(reply["error"]["message"])
        if response.status == 503:
            header = response.getheader("Retry-After")
            raise ServiceUnavailable(
                reply["error"]["message"],
                retry_after=None if header is None else float(header),
            )
        if response.status != 200:
            error = reply.get("error", {})
            raise LaunchError(
                f"{error.get('type', 'ServeError')}: "
                f"{error.get('message', raw[:200])}"
            )
        return reply

    def _post(self, path: str, body: dict) -> dict:
        return self._request("POST", path, body)

    def _get(self, path: str) -> dict:
        return self._request("GET", path, None)

    def _tenant_body(self, **extra) -> dict:
        body = dict(self._session_body)
        body.update(extra)
        return body

    # -- API ---------------------------------------------------------------

    def register(self, source: str) -> list:
        return self._post(
            "/v1/register", self._tenant_body(source=source)
        )["kernels"]

    def malloc(self, size: int, label: Optional[str] = None) -> int:
        return self._post(
            "/v1/malloc", self._tenant_body(size=size, label=label)
        )["allocation"]

    def upload(self, array, dtype: Optional[str] = None) -> int:
        array = np.asarray(array)
        return self._post(
            "/v1/upload",
            self._tenant_body(
                data=array.tolist(), dtype=dtype or array.dtype.str
            ),
        )["allocation"]

    def write(self, allocation: int, array, dtype=None) -> None:
        array = np.asarray(array)
        self._post(
            "/v1/write",
            self._tenant_body(
                allocation=allocation,
                data=array.tolist(),
                dtype=dtype or array.dtype.str,
            ),
        )

    def read(self, allocation: int, dtype, count: int) -> np.ndarray:
        reply = self._post(
            "/v1/read",
            self._tenant_body(
                allocation=allocation,
                dtype=np.dtype(dtype).str,
                count=count,
            ),
        )
        return np.asarray(reply["data"], dtype=np.dtype(dtype))

    def free(self, allocation: int) -> None:
        self._post("/v1/free", self._tenant_body(allocation=allocation))

    def launch(self, kernel: str, grid, block, args=()) -> int:
        """Queue a launch; returns an id for :meth:`collect`.
        Allocation ids must be wrapped: ``{"allocation": id}``."""
        encoded = []
        for value in args:
            if isinstance(value, dict):
                encoded.append(value)
            elif isinstance(value, (int, float)):
                encoded.append(value)
            else:
                raise LaunchError(
                    f"cannot encode launch argument {value!r}; pass "
                    f"numbers or {{'allocation': id}} references"
                )
        return self._post(
            "/v1/launch",
            self._tenant_body(
                kernel=kernel, grid=grid, block=block, args=encoded
            ),
        )["launch"]

    def collect(self, launch: int, timeout: float = 60.0) -> dict:
        """Wait for a queued launch. Returns the endpoint payload:
        ``{"ok": True, ...}`` or ``{"ok": False, "error": {...}}``."""
        return self._post(
            "/v1/collect",
            self._tenant_body(launch=launch, timeout=timeout),
        )

    def run(self, kernel: str, grid, block, args=()) -> dict:
        """launch + collect; raises LaunchError if the launch failed."""
        reply = self.collect(self.launch(kernel, grid, block, args))
        if not reply["ok"]:
            error = reply["error"]
            raise LaunchError(f"{error['type']}: {error['message']}")
        return reply

    def inject_fault(
        self, site: str, probability: float = 1.0, seed=None, **options
    ) -> None:
        self._post(
            "/v1/inject",
            self._tenant_body(
                site=site,
                probability=probability,
                seed=seed,
                options=options,
            ),
        )

    def disarm_faults(self) -> None:
        self._post("/v1/disarm", self._tenant_body())

    def reset(self) -> None:
        self._post("/v1/reset", self._tenant_body())

    def stats(self) -> dict:
        return self._get("/v1/stats")

    def health(self) -> dict:
        """Liveness: the supervision snapshot. Always 200 while the
        server process is up."""
        return self._get("/v1/health")

    def ready(self) -> dict:
        """Readiness: ``{"ready": bool, ...}``. A draining or
        breaker-open server answers 503, but the payload is returned
        either way (it carries the reason)."""
        return self._request("GET", "/v1/ready", None,
                             raise_for_status=False)

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
