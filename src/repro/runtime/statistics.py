"""Runtime statistics: the quantities Figures 6-10 are built from."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional

from ..ir.instructions import ResumeStatus

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..sanitizer.reports import SanitizerReport
    from .translation_cache import CacheStatistics


@dataclass
class WorkerHealth:
    """Supervision snapshot of one :class:`~repro.runtime.pool.
    DevicePool` worker, rendered into ``DevicePool.report()``.

    ``state`` is the worker's circuit-breaker state: ``"closed"``
    (healthy), ``"open"`` (too many consecutive infrastructure
    failures — respawns are suspended until the cooldown elapses),
    or ``"half-open"`` (cooldown elapsed; the next respawn+probe
    decides). ``epoch`` counts respawns: allocations stamped with an
    older epoch are invalid."""

    worker: int
    alive: bool
    state: str
    epoch: int
    respawns: int = 0
    consecutive_failures: int = 0
    in_flight: int = 0
    last_cause: Optional[str] = None
    #: durable-tenant restores completed onto this worker's epochs
    restores: int = 0
    #: wall-clock seconds of the most recent restore (None if never)
    last_restore_seconds: Optional[float] = None

    def describe(self) -> str:
        cause = f" ({self.last_cause})" if self.last_cause else ""
        restored = ""
        if self.restores:
            latency = (
                f" last {self.last_restore_seconds:.3f}s"
                if self.last_restore_seconds is not None
                else ""
            )
            restored = f" restores={self.restores}{latency}"
        return (
            f"worker {self.worker}: "
            f"{'alive' if self.alive else 'LOST'} "
            f"state={self.state} epoch={self.epoch} "
            f"respawns={self.respawns} "
            f"failures={self.consecutive_failures} "
            f"in-flight={self.in_flight}{restored}{cause}"
        )


@dataclass
class LaunchStatistics:
    """Aggregated over all execution managers of one kernel launch."""

    #: cycles spent inside vectorized subkernels (useful work)
    kernel_cycles: int = 0
    #: cycles spent in compiler-inserted yield machinery
    #: (spill/restore/scheduler — Fig. 9's "yield" category)
    yield_cycles: int = 0
    #: cycles spent in the execution manager itself (warp formation,
    #: barrier bookkeeping, status updates — Fig. 9's "EM" category)
    em_cycles: int = 0
    #: dynamic IR instructions executed
    instructions: int = 0
    #: single-precision floating point operations executed
    flops: int = 0
    #: kernel entries per warp size (Fig. 7)
    warp_size_histogram: Dict[int, int] = field(default_factory=dict)
    #: total threads entering kernels (sum over entries of warp size)
    thread_entries: int = 0
    #: total live values restored across all thread entries (Fig. 8)
    values_restored: int = 0
    #: yields by resume status
    yields_by_status: Dict[int, int] = field(default_factory=dict)
    #: number of warp executions
    warp_executions: int = 0
    #: threads launched
    threads_launched: int = 0
    #: per-worker total cycles (kernel + yield + em)
    worker_cycles: Dict[int, int] = field(default_factory=dict)
    #: runtime faults contained as structured KernelTraps (a trapped
    #: launch raises, but its partial statistics still carry the count)
    traps: int = 0
    #: watchdog expiries (cycle budget or wall-clock deadline)
    watchdog_timeouts: int = 0
    #: warp executions that ran at a narrower width than configured
    #: because a wider specialization failed and was degraded
    degraded_warps: int = 0
    #: warp executions that went through the array backend's batched
    #: path (a host-efficiency counter — it does not participate in
    #: modeled-statistics equivalence between backends)
    batched_warps: int = 0
    #: divergent-branch diamonds the melding pass removed from this
    #: launch's kernel (static per-kernel count attached by the
    #: KernelLauncher; the dynamic effect shows up as fewer
    #: THREAD_BRANCH yields and lower cycle totals)
    melded_regions: int = 0
    #: meldable candidate regions the melding pass declined
    #: (unprofitable or structurally unsafe)
    meld_rejections: int = 0
    #: cycles per region execution the profitability model predicts
    #: saved across all melded regions of the kernel
    meld_predicted_saving: float = 0.0
    #: translation-cache activity attributed to this launch (the delta
    #: of the device cache's counters over the launch, attached by the
    #: KernelLauncher); None until attached
    cache: Optional["CacheStatistics"] = None
    #: non-fatal sanitizer findings of this launch (populated by the
    #: KernelLauncher when checked execution runs with
    #: ``sanitize_fatal=False``; always empty in fatal mode, where the
    #: first finding raises instead)
    sanitizer: List["SanitizerReport"] = field(default_factory=list)

    # -- accumulation ------------------------------------------------------

    def record_entry(
        self, worker_id: int, warp_size: int, restored_values: int
    ) -> None:
        self.warp_executions += 1
        self.warp_size_histogram[warp_size] = (
            self.warp_size_histogram.get(warp_size, 0) + 1
        )
        self.thread_entries += warp_size
        self.values_restored += restored_values * warp_size

    def record_yield(self, status: int) -> None:
        self.yields_by_status[status] = (
            self.yields_by_status.get(status, 0) + 1
        )

    def merge(self, other: "LaunchStatistics") -> None:
        self.kernel_cycles += other.kernel_cycles
        self.yield_cycles += other.yield_cycles
        self.em_cycles += other.em_cycles
        self.instructions += other.instructions
        self.flops += other.flops
        self.thread_entries += other.thread_entries
        self.values_restored += other.values_restored
        self.warp_executions += other.warp_executions
        self.threads_launched += other.threads_launched
        self.traps += other.traps
        self.watchdog_timeouts += other.watchdog_timeouts
        self.degraded_warps += other.degraded_warps
        self.batched_warps += other.batched_warps
        self.melded_regions += other.melded_regions
        self.meld_rejections += other.meld_rejections
        self.meld_predicted_saving += other.meld_predicted_saving
        for key, value in other.warp_size_histogram.items():
            self.warp_size_histogram[key] = (
                self.warp_size_histogram.get(key, 0) + value
            )
        for key, value in other.yields_by_status.items():
            self.yields_by_status[key] = (
                self.yields_by_status.get(key, 0) + value
            )
        for key, value in other.worker_cycles.items():
            self.worker_cycles[key] = (
                self.worker_cycles.get(key, 0) + value
            )
        if other.cache is not None:
            if self.cache is None:
                self.cache = other.cache.snapshot()
            else:
                self.cache.merge(other.cache)
        self.sanitizer.extend(other.sanitizer)

    # -- derived metrics -----------------------------------------------------

    @property
    def total_cycles(self) -> int:
        return self.kernel_cycles + self.yield_cycles + self.em_cycles

    @property
    def elapsed_cycles(self) -> int:
        """Wall-clock cycles: the slowest worker (workers run
        concurrently on separate cores)."""
        if not self.worker_cycles:
            return self.total_cycles
        return max(self.worker_cycles.values())

    def elapsed_seconds(self, clock_hz: float) -> float:
        return self.elapsed_cycles / clock_hz

    def gflops(self, clock_hz: float) -> float:
        seconds = self.elapsed_seconds(clock_hz)
        if seconds == 0:
            return 0.0
        return self.flops / seconds / 1e9

    @property
    def average_warp_size(self) -> float:
        if self.warp_executions == 0:
            return 0.0
        return self.thread_entries / self.warp_executions

    def warp_size_fractions(self) -> Dict[int, float]:
        """Fraction of kernel entries at each warp size (Fig. 7)."""
        total = sum(self.warp_size_histogram.values())
        if total == 0:
            return {}
        return {
            size: count / total
            for size, count in sorted(self.warp_size_histogram.items())
        }

    @property
    def average_values_restored(self) -> float:
        """Average live values restored per thread entry (Fig. 8)."""
        if self.thread_entries == 0:
            return 0.0
        return self.values_restored / self.thread_entries

    def cycle_fractions(self) -> Dict[str, float]:
        """Fraction of cycles in EM / yield / subkernel (Fig. 9)."""
        total = self.total_cycles
        if total == 0:
            return {"em": 0.0, "yield": 0.0, "kernel": 0.0}
        return {
            "em": self.em_cycles / total,
            "yield": self.yield_cycles / total,
            "kernel": self.kernel_cycles / total,
        }

    @property
    def divergent_yields(self) -> int:
        return self.yields_by_status.get(ResumeStatus.THREAD_BRANCH, 0)

    @property
    def barrier_yields(self) -> int:
        return self.yields_by_status.get(ResumeStatus.THREAD_BARRIER, 0)

    def report(self, clock_hz: float = 3.4e9) -> str:
        fractions = self.cycle_fractions()
        lines = [
            f"threads launched     {self.threads_launched}",
            f"warp executions      {self.warp_executions}",
            f"average warp size    {self.average_warp_size:.2f}",
            f"avg values restored  "
            f"{self.average_values_restored:.2f}",
            f"cycles (EM/yld/krn)  {self.em_cycles}/"
            f"{self.yield_cycles}/{self.kernel_cycles}",
            f"cycle fractions      em={fractions['em']:.2%} "
            f"yield={fractions['yield']:.2%} "
            f"kernel={fractions['kernel']:.2%}",
            f"elapsed              "
            f"{self.elapsed_seconds(clock_hz) * 1e3:.3f} ms "
            f"({self.gflops(clock_hz):.1f} GFLOP/s)",
            f"robustness           traps={self.traps} "
            f"watchdog={self.watchdog_timeouts} "
            f"degraded warps={self.degraded_warps}",
        ]
        if self.melded_regions or self.meld_rejections:
            lines.append(
                f"melding              regions={self.melded_regions} "
                f"rejected={self.meld_rejections} "
                f"predicted saving="
                f"{self.meld_predicted_saving:.1f} cycles"
            )
        if self.cache is not None:
            cache = self.cache
            lines.extend(
                [
                    f"cache                hits={cache.hits} "
                    f"misses={cache.misses} "
                    f"translations={cache.translations} "
                    f"invalidations={cache.invalidations}",
                    f"cache disk           hits={cache.disk_hits} "
                    f"misses={cache.disk_misses} "
                    f"errors={cache.disk_errors} "
                    f"evictions={cache.evictions}",
                    f"translation time     "
                    f"{cache.translation_seconds * 1e3:.3f} ms",
                ]
            )
        if self.sanitizer:
            by_kind: Dict[str, int] = {}
            for finding in self.sanitizer:
                count = getattr(finding, "count", 1)
                by_kind[finding.kind] = by_kind.get(finding.kind, 0) + count
            summary = " ".join(
                f"{kind}={count}" for kind, count in sorted(by_kind.items())
            )
            lines.append(f"sanitizer            {summary}")
        return "\n".join(lines)
