"""Structured kernel traps and watchdog reports.

Every runtime fault raised inside the interpreter while a warp executes
is caught at the warp-execution boundary (``ExecutionManager``) and
re-raised as a :class:`~repro.errors.KernelTrap` carrying a
:class:`TrapInfo`: kernel name, grid geometry, per-lane CTA/thread
coordinates, the program counter (block label + instruction index) the
interpreter annotated on the fault, the faulting instruction itself,
and a bounded register snapshot. :func:`format_trap` renders the whole
payload as a human-readable diagnostic report.

Watchdog expiries (:class:`~repro.errors.LaunchTimeout`) carry a list
of :class:`ProgramPoint` — one per live thread — rendered by
:func:`format_timeout`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import DeviceLost, KernelTrap, LaunchTimeout

#: Most register values rendered into a trap snapshot.
SNAPSHOT_LIMIT = 24

#: Most vector elements rendered per register value.
_ELEMENT_LIMIT = 8

#: Most program points listed inline in a LaunchTimeout message (the
#: full list is always available on ``timeout.program_points``).
_POINT_LIMIT = 32


@dataclass(frozen=True)
class LaneState:
    """One warp lane at the moment of a trap."""

    lane: int
    ctaid: Tuple[int, int, int]
    tid: Tuple[int, int, int]
    entry_point: int
    faulting: bool = False


@dataclass
class TrapInfo:
    """The structured payload of a :class:`~repro.errors.KernelTrap`."""

    kernel: str
    worker_id: int
    warp_id: int
    warp_size: int
    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]
    entry_point: int
    entry_label: Optional[str]
    #: Block label the interpreter was executing when the fault fired
    #: (annotated on the exception by the run loops); None if the fault
    #: escaped before any block ran.
    block_label: Optional[str]
    #: Index of the faulting instruction within its block; -1 when
    #: unknown, ``len(body)`` (rendered "terminator") for terminators.
    instruction_index: int
    #: Rendered faulting instruction, when it could be identified.
    instruction: Optional[str]
    lanes: List[LaneState] = field(default_factory=list)
    #: Bounded register/operand snapshot: name -> rendered value.
    registers: Dict[str, str] = field(default_factory=dict)
    cause_type: str = ""
    cause: str = ""
    #: The :class:`~repro.sanitizer.SanitizerReport` behind this trap,
    #: when the cause is a SanitizerError; None for ordinary faults.
    sanitizer: Optional[object] = None

    @property
    def faulting_lanes(self) -> List[LaneState]:
        return [lane for lane in self.lanes if lane.faulting]


@dataclass(frozen=True)
class ProgramPoint:
    """One live thread's program point in a watchdog report."""

    ctaid: Tuple[int, int, int]
    tid: Tuple[int, int, int]
    entry_point: int
    label: Optional[str]
    #: Scheduling state: "running", "ready", or "barrier".
    state: str = "running"

    def __str__(self):
        where = self.label if self.label is not None else "?"
        return (
            f"cta={self.ctaid} tid={self.tid} "
            f"entry={self.entry_point} at {where} [{self.state}]"
        )


def _render_value(value) -> str:
    """A short, bounded rendering of one register value."""
    try:
        import numpy as np

        if isinstance(value, np.ndarray):
            if value.size > _ELEMENT_LIMIT:
                head = ", ".join(
                    str(element) for element in value[:_ELEMENT_LIMIT]
                )
                return f"[{head}, ... +{value.size - _ELEMENT_LIMIT}]"
            return "[" + ", ".join(str(element) for element in value) + "]"
    except Exception:  # pragma: no cover - numpy always importable here
        pass
    return str(value)


def snapshot_registers(state, limit: int = SNAPSHOT_LIMIT) -> Dict[str, str]:
    """A bounded name -> rendered-value snapshot of a warp state's
    register file. Works for both interpreter modes: the closure path's
    flat slot file and the dispatch path's name-keyed dictionary."""
    rendered: Dict[str, str] = {}
    executable = getattr(state, "executable", None)
    slots = getattr(executable, "register_slots", None) or {}
    regs = getattr(state, "regs", None) or []
    for name in sorted(slots):
        slot = slots[name]
        if slot >= len(regs):
            continue
        value = regs[slot]
        if value is None:
            continue
        rendered[name] = _render_value(value)
        if len(rendered) >= limit:
            return rendered
    for name in sorted(getattr(state, "registers", None) or {}):
        if name in rendered:
            continue
        rendered[name] = _render_value(state.registers[name])
        if len(rendered) >= limit:
            break
    return rendered


def _faulting_instruction(executable, label, index):
    """Look up the faulting instruction object, or None."""
    if executable is None or label is None or index is None or index < 0:
        return None
    function = getattr(executable, "function", None)
    if function is None:
        return None
    block = function.blocks.get(label)
    if block is None:
        return None
    if index >= len(block.instructions):
        return block.terminator
    return block.instructions[index]


def build_trap(
    kernel_name: str,
    geometry,
    warp,
    executable,
    state,
    cause: Exception,
    worker_id: int = 0,
) -> KernelTrap:
    """Assemble a :class:`~repro.errors.KernelTrap` from the faulting
    warp's context. ``cause`` is the ExecutionError the interpreter
    raised, annotated (by the run loops) with ``trap_label`` /
    ``trap_index`` when the fault fired inside a block."""
    label = getattr(cause, "trap_label", None)
    index = getattr(cause, "trap_index", None)
    if index is None:
        index = -1
    instruction = _faulting_instruction(executable, label, index)
    # A memory/context instruction names the lane it operates on; only
    # that lane faulted. Anything else implicates the whole warp.
    faulting_lane = getattr(instruction, "lane", None)
    lanes = [
        LaneState(
            lane=position,
            ctaid=context.ctaid,
            tid=context.tid,
            entry_point=context.resume_point,
            faulting=(faulting_lane is None or faulting_lane == position),
        )
        for position, context in enumerate(warp.contexts)
    ]
    function = getattr(executable, "function", None)
    entry_point = warp.entry_point
    entry_label = None
    if function is not None:
        entry_label = function.entry_points.get(entry_point)
    info = TrapInfo(
        kernel=kernel_name,
        worker_id=worker_id,
        warp_id=warp.warp_id,
        warp_size=warp.size,
        grid=geometry.grid,
        block=geometry.block,
        entry_point=entry_point,
        entry_label=entry_label,
        block_label=label,
        instruction_index=index,
        instruction=repr(instruction) if instruction is not None else None,
        lanes=lanes,
        registers=snapshot_registers(state),
        cause_type=type(cause).__name__,
        cause=str(cause),
        sanitizer=getattr(cause, "report", None),
    )
    faulting = info.faulting_lanes or lanes
    coordinates = ", ".join(
        f"cta={lane.ctaid} tid={lane.tid}" for lane in faulting[:4]
    )
    if len(faulting) > 4:
        coordinates += f", ... +{len(faulting) - 4} lanes"
    where = label if label is not None else "?"
    pc = _render_pc(info)
    message = (
        f"kernel trap in {kernel_name!r}: {info.cause_type}: {info.cause} "
        f"at block {where!r} instruction {pc} ({coordinates})"
    )
    return KernelTrap(message, info=info)


def _render_pc(info: TrapInfo) -> str:
    if info.instruction_index < 0:
        return "?"
    function_index = info.instruction_index
    return str(function_index)


def format_trap(trap) -> str:
    """Render a :class:`~repro.errors.KernelTrap` (or a bare
    :class:`TrapInfo`) as a multi-line diagnostic report."""
    info = trap.info if isinstance(trap, KernelTrap) else trap
    if info is None:
        return f"KernelTrap (no structured payload): {trap}"
    lines = [
        f"== kernel trap: {info.kernel} ==",
        f"cause        {info.cause_type}: {info.cause}",
        f"geometry     grid={info.grid} block={info.block}",
        f"warp         id={info.warp_id} size={info.warp_size} "
        f"worker={info.worker_id}",
        f"entry point  {info.entry_point}"
        + (f" ({info.entry_label})" if info.entry_label else ""),
        f"program ctr  block={info.block_label!r} "
        f"instruction index={_render_pc(info)}",
    ]
    if info.instruction is not None:
        lines.append(f"instruction  {info.instruction}")
    lines.append("lanes:")
    for lane in info.lanes:
        marker = " <- FAULT" if lane.faulting else ""
        lines.append(
            f"  lane {lane.lane}: cta={lane.ctaid} tid={lane.tid} "
            f"entry={lane.entry_point}{marker}"
        )
    if info.registers:
        lines.append(f"registers (first {len(info.registers)}):")
        for name, value in info.registers.items():
            lines.append(f"  {name:<16} = {value}")
    if info.sanitizer is not None:
        from ..sanitizer.reports import format_sanitizer_report

        lines.append("sanitizer:")
        for line in format_sanitizer_report(info.sanitizer).splitlines():
            lines.append(f"  {line}")
    return "\n".join(lines)


def build_timeout(
    kernel_name: str,
    reason: str,
    program_points: List[ProgramPoint],
) -> LaunchTimeout:
    """Assemble a :class:`~repro.errors.LaunchTimeout` listing every
    live thread's program point."""
    listed = "\n".join(
        f"  {point}" for point in program_points[:_POINT_LIMIT]
    )
    suffix = ""
    if len(program_points) > _POINT_LIMIT:
        suffix = (
            f"\n  ... +{len(program_points) - _POINT_LIMIT} more threads"
        )
    message = (
        f"launch of {kernel_name!r} timed out: {reason}; "
        f"{len(program_points)} live thread(s):\n{listed}{suffix}"
    )
    return LaunchTimeout(
        message, kernel=kernel_name, program_points=program_points
    )


def format_timeout(timeout: LaunchTimeout) -> str:
    """Render a :class:`~repro.errors.LaunchTimeout` report (the full
    program-point list, not the bounded message form)."""
    lines = [f"== launch timeout: {timeout.kernel} ==", str(timeout)]
    return "\n".join(lines)


def format_device_lost(error: DeviceLost) -> str:
    """Render a :class:`~repro.errors.DeviceLost` report: which worker
    died, why, at which device epoch, and whether the failed request
    had already been delivered to it (and may therefore have run)."""
    lines = [f"== device lost: worker {error.worker} ==", str(error)]
    if error.cause is not None:
        lines.append(f"cause:     {error.cause}")
    if error.epoch is not None:
        lines.append(
            f"epoch:     {error.epoch} (respawned worker runs at "
            f"{error.epoch + 1}; allocations from epoch "
            f"{error.epoch} and earlier are invalid)"
        )
    lines.append(
        "delivered: "
        + (
            "yes — the request reached the worker and may have "
            "mutated guest memory; it is never retried automatically"
            if error.delivered
            else "no — the request never left the parent and is safe "
            "to re-dispatch"
        )
    )
    return "\n".join(lines)
