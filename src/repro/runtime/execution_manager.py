"""The dynamic execution manager (§3, §5.2).

One execution manager runs per worker thread. It owns the thread
contexts of its assigned CTAs, per-CTA shared memory and per-thread
local memory, a ready pool, and the warp former. The main loop:

1. pick a ready entry point (round-robin over the pool),
2. form the largest possible warp of threads waiting at that entry
   (dynamic formation; or a consecutive-``tid.x`` run under static
   formation),
3. query the translation cache for the matching specialization and
   execute it,
4. act on the warp's resume status: re-insert branching threads into
   the ready pool, park barrier threads in their CTA's barrier pool
   (releasing the pool when every live CTA thread has arrived), and
   discard exited threads.

This iterates until all threads of the window have terminated (§3:
"This process iterates until all threads have terminated").

Fault containment: any :class:`~repro.errors.ExecutionError` escaping a
warp execution is caught here — the warp-execution boundary — and
re-raised as a structured :class:`~repro.errors.KernelTrap` built by
:mod:`repro.runtime.traps`. The watchdog (``max_kernel_cycles`` /
``launch_timeout_s``) is enforced here too, both between warps and —
via the interpreter's per-warp instruction cap and wall-clock deadline
— inside warps that never yield.
"""

from __future__ import annotations

import time
from collections import OrderedDict, deque
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import (
    BarrierDeadlock,
    DeadlineExceeded,
    ExecutionError,
    InstructionLimitExceeded,
    LaunchError,
)
from ..ir.instructions import ResumeStatus
from ..machine.descriptor import MachineDescription
from ..machine.interpreter import Interpreter
from ..machine.memory import MemorySystem
from .config import ExecutionConfig
from .context import ThreadContext, Warp
from .statistics import LaunchStatistics
from .translation_cache import TranslationCache
from .traps import ProgramPoint, build_timeout, build_trap


@dataclass(frozen=True)
class LaunchGeometry:
    """Grid and block dimensions of one kernel launch."""

    grid: Tuple[int, int, int]
    block: Tuple[int, int, int]

    @property
    def threads_per_cta(self) -> int:
        return self.block[0] * self.block[1] * self.block[2]

    @property
    def cta_count(self) -> int:
        return self.grid[0] * self.grid[1] * self.grid[2]

    @property
    def total_threads(self) -> int:
        return self.threads_per_cta * self.cta_count

    def cta_coordinates(self, linear: int) -> Tuple[int, int, int]:
        gx, gy, _ = self.grid
        x = linear % gx
        y = (linear // gx) % gy
        z = linear // (gx * gy)
        return (x, y, z)

    def thread_coordinates(self, linear: int) -> Tuple[int, int, int]:
        bx, by, _ = self.block
        x = linear % bx
        y = (linear // bx) % by
        z = linear // (bx * by)
        return (x, y, z)


class _ReadyPool:
    """Ready threads grouped by formation key, visited round-robin.

    The key is the entry point (plus the CTA, unless cross-CTA warps
    are allowed): §5.2's "largest warp possible from other ready
    threads with the same entry point".
    """

    def __init__(self, cross_cta: bool = False):
        self._queues: "OrderedDict[tuple, deque]" = OrderedDict()
        #: Deferred batch results per key (array backend): warps the
        #: batch runner already executed but whose yield handling (and
        #: any sequential fallback resume) must happen at the position
        #: the round-robin would have reached them, so downstream
        #: re-formation sees the exact sequential arrival order.
        self._pending: Dict[tuple, deque] = {}
        self._cross_cta = cross_cta
        self.size = 0

    def _key(self, context: ThreadContext) -> tuple:
        if self._cross_cta:
            return (context.resume_point,)
        return (context.resume_point, context.linear_ctaid)

    def _prune(self) -> Optional[tuple]:
        """Drop emptied head keys; return the live head key or None."""
        while self._queues:
            key, queue = next(iter(self._queues.items()))
            if queue or self._pending.get(key):
                return key
            del self._queues[key]
            self._pending.pop(key, None)
        return None

    def push(self, context: ThreadContext) -> None:
        key = self._key(context)
        queue = self._queues.get(key)
        if queue is None:
            queue = deque()
            self._queues[key] = queue
        queue.append(context)
        self.size += 1

    def head_batch(self, limit: int) -> Optional[tuple]:
        """Peek at the head key without consuming anything:
        ``(entry_point, linear_ctaid, queue_length)``, or None when
        its queue holds fewer than two full ``limit``-sized warps (a
        lone warp gains nothing from the batched path) or deferred
        batch results are still draining. Lets the batch runner decide
        eligibility before committing to a pop."""
        key = self._prune()
        if key is None or self._pending.get(key):
            return None
        queue = self._queues[key]
        if len(queue) < 2 * limit:
            return None
        head = queue[0]
        return (head.resume_point, head.linear_ctaid, len(queue))

    def pop_chunks(self, limit: int) -> List[List[ThreadContext]]:
        """Batch formation (array backend): every full ``limit``-sized
        chunk of the head key's queue, in FIFO order — the same warp
        compositions :meth:`pop_group` would produce across its visits
        to this key, taken at once (arrivals always append, so the
        chunk memberships are interleaving-independent). The remainder
        (fewer than ``limit`` threads) stays queued for the sequential
        former. The key keeps its round-robin position: the caller
        must follow up with :meth:`defer`."""
        key = self._prune()
        if key is None:
            return []
        queue = self._queues[key]
        if len(queue) < 2 * limit:
            return []
        chunks = []
        while len(queue) >= limit:
            chunks.append([queue.popleft() for _ in range(limit)])
        self.size -= limit * len(chunks)
        return chunks

    def defer(self, items) -> None:
        """Park executed-but-unhandled batch warps at the head key and
        advance the round-robin one step, exactly as if the first warp
        of the batch had just been popped: later pops drain these
        deferred items (in order, ahead of the key's remainder and any
        new arrivals) interleaved with the other keys' visits."""
        key = next(iter(self._queues.items()))[0]
        if items:
            pending = self._pending.get(key)
            if pending is None:
                pending = deque()
                self._pending[key] = pending
            for item in items:
                pending.append(item)
                self.size += len(item[0].contexts)
        if self._queues[key] or self._pending.get(key):
            self._queues.move_to_end(key)
        else:
            del self._queues[key]
            self._pending.pop(key, None)

    def restore(self, chunks) -> None:
        """Push chunks popped by :meth:`pop_chunks` back onto the head
        of their key's queue, in their original order — the exact
        inverse of the pop (the key never moved). Used when a batch
        attempt is abandoned so the sequential path re-executes the
        same threads in the same formation."""
        key = next(iter(self._queues.items()))[0]
        queue = self._queues[key]
        for chunk in reversed(chunks):
            for context in reversed(chunk):
                queue.appendleft(context)
                self.size += 1

    def pop_deferred(self):
        """The head key's next deferred batch item, or None when the
        head key has none. Advances the round-robin like
        :meth:`pop_group`."""
        key = self._prune()
        if key is None:
            return None
        pending = self._pending.get(key)
        if not pending:
            return None
        item = pending.popleft()
        self.size -= len(item[0].contexts)
        if not pending:
            del self._pending[key]
        if self._queues[key] or self._pending.get(key):
            self._queues.move_to_end(key)
        else:
            del self._queues[key]
        return item

    def pop_group(self, limit: int) -> List[ThreadContext]:
        """Take up to ``limit`` threads waiting at the next entry point
        in round-robin order."""
        while self._queues:
            key, queue = next(iter(self._queues.items()))
            if not queue:
                if self._pending.get(key):  # pragma: no cover -
                    # deferred items are drained by the caller first
                    return []
                del self._queues[key]
                continue
            members = []
            while queue and len(members) < limit:
                members.append(queue.popleft())
            self.size -= len(members)
            if not queue and not self._pending.get(key):
                del self._queues[key]
            else:
                # Round-robin: move the group to the back.
                self._queues.move_to_end(key)
            return members
        return []

    def contexts(self) -> Iterator[ThreadContext]:
        """All queued contexts, including deferred batch warps' (for
        watchdog/deadlock reports)."""
        for queue in self._queues.values():
            for context in queue:
                yield context
        for pending in self._pending.values():
            for item in pending:
                for context in item[0].contexts:
                    yield context

    def __bool__(self):
        return self.size > 0


class ExecutionManager:
    """Orchestrates the threads of the CTAs assigned to one worker."""

    def __init__(
        self,
        worker_id: int,
        machine: MachineDescription,
        memory: MemorySystem,
        interpreter: Interpreter,
        cache: TranslationCache,
        config: ExecutionConfig,
    ):
        self.worker_id = worker_id
        self.machine = machine
        self.memory = memory
        self.interpreter = interpreter
        self.cache = cache
        self.config = config
        self.stats = LaunchStatistics()
        #: Optional callable receiving (event, payload) tuples:
        #: ("warp", ...), ("yield", ...), ("barrier_release", ...).
        #: Set through KernelLauncher.trace; None disables tracing.
        self.trace = None
        self._warp_counter = 0
        #: Pooled warp-execution state: one register file + statistics
        #: instance reused by every warp this manager runs.
        self._warp_state = interpreter.new_state()
        #: Batched execution (array backend): discovered by feature
        #: test, and only meaningful for dynamic formation on the
        #: unsanitized closure path — the lowering the batch runner's
        #: fallback continuations resume into.
        self._batching = bool(
            getattr(interpreter, "supports_batching", False)
            and getattr(interpreter, "mode", None) == "closure"
            and interpreter.sanitizer is None
            and not config.static_warps
            # Cross-CTA formation keys mix CTAs inside one chunk;
            # same-CTA keys keep each chunk's barrier/exit bookkeeping
            # confined to a single CTA.
            and not config.allow_cross_cta_warps
        )
        #: Per-kernel memo: False once a kernel's maximal-width
        #: executable proves to have no usable array lowering, so
        #: later rounds skip the formation attempt entirely.
        self._batchable_kernels: Dict[str, bool] = {}
        self._shared_slabs: List[int] = []
        self._shared_slab_bytes = 0
        self._local_slab: Optional[int] = None
        self._local_slab_bytes = 0
        #: Watchdog state of the current launch (installed by run()).
        self._cycle_budget: Optional[int] = None
        self._deadline: Optional[float] = None

    # -- public --------------------------------------------------------------

    def run(
        self,
        kernel_name: str,
        geometry: LaunchGeometry,
        cta_ids: List[int],
        param_base: int,
        deadline: Optional[float] = None,
    ) -> LaunchStatistics:
        """Execute the assigned CTAs to completion.

        ``deadline`` is an absolute ``time.monotonic`` value installed
        by the launcher when ``launch_timeout_s`` is configured; it is
        shared by all workers of one launch."""
        self._cycle_budget = self.config.max_kernel_cycles
        self._deadline = deadline
        kernel = self.cache.kernel(kernel_name)
        scalar = self.cache.scalar_ir(kernel_name)
        _, spill_size = self.cache.spill_layout(kernel_name)
        local_bytes = _align(scalar.local_segment_size + spill_size, 16)
        shared_bytes = _align(max(kernel.shared_size, 1), 16)
        window = max(1, self.config.cta_window)
        sanitizer = self.memory.sanitizer
        # Checked execution separates the per-thread local segments
        # with interior redzones so a thread overrunning its local
        # frame faults instead of corrupting its neighbour's spills.
        pad = (
            sanitizer.REDZONE_BYTES
            if sanitizer is not None and local_bytes
            else 0
        )
        local_stride = local_bytes + pad
        self._reserve_slabs(
            window, shared_bytes, local_stride, geometry.threads_per_cta
        )
        if sanitizer is not None:
            for slab in self._shared_slabs:
                sanitizer.shadow.resegment(
                    slab, shared_bytes, self._shared_slab_bytes
                )
            if local_bytes:
                sanitizer.shadow.resegment(
                    self._local_slab, local_bytes, local_stride
                )
        for start in range(0, len(cta_ids), window):
            self._run_window(
                kernel_name,
                geometry,
                cta_ids[start : start + window],
                param_base,
                shared_bytes,
                local_stride,
            )
        return self.stats

    def recover(self) -> None:
        """Restore launch-ready invariants after a contained fault.

        The pooled warp state is replaced (its register file may hold
        the faulted warp's values) and the watchdog disarmed. Reserved
        shared/local slabs are deliberately kept: they are reset per
        window by :meth:`_run_window`, and keeping them means a
        trap-then-relaunch sequence does not grow the arena."""
        self._warp_state = self.interpreter.new_state()
        self._cycle_budget = None
        self._deadline = None

    # -- memory slabs ----------------------------------------------------

    def _reserve_slabs(
        self,
        window: int,
        shared_bytes: int,
        local_stride: int,
        threads_per_cta: int,
    ) -> None:
        """Reuse previously reserved shared/local slabs across launches.

        When a kernel needs wider slabs the old ones are returned to
        the arena before reallocating; when it only needs *more* slabs
        the existing ones are kept and the shortfall appended — so
        repeated launches never grow the arena unboundedly.
        ``local_stride`` is the per-thread local footprint including
        any sanitizer redzone padding between threads."""
        if shared_bytes > self._shared_slab_bytes:
            for slab in self._shared_slabs:
                self.memory.free(slab, self._shared_slab_bytes)
            self._shared_slabs = []
            self._shared_slab_bytes = shared_bytes
        while len(self._shared_slabs) < window:
            self._shared_slabs.append(
                self.memory.allocate(
                    self._shared_slab_bytes,
                    kind="shared",
                    label=f"worker {self.worker_id} shared slab "
                    f"{len(self._shared_slabs)}",
                )
            )
        total_local = max(local_stride * threads_per_cta * window, 16)
        if self._local_slab is None or self._local_slab_bytes < total_local:
            if self._local_slab is not None:
                self.memory.free(self._local_slab, self._local_slab_bytes)
            self._local_slab = self.memory.allocate(
                total_local,
                kind="local",
                label=f"worker {self.worker_id} local slab",
            )
            self._local_slab_bytes = total_local

    # -- one window of CTAs ------------------------------------------------

    def _run_window(
        self,
        kernel_name: str,
        geometry: LaunchGeometry,
        cta_ids: List[int],
        param_base: int,
        shared_bytes: int,
        local_stride: int,
    ) -> None:
        ready = _ReadyPool(cross_cta=self.config.allow_cross_cta_warps)
        live_counts: Dict[int, int] = {}
        barrier_pools: Dict[int, List[ThreadContext]] = {}
        cta_of: Dict[int, int] = {}
        threads_per_cta = geometry.threads_per_cta

        # Clear only the regions this window will actually use (the
        # slabs may be larger than the kernel's footprint and reserved
        # for a wider window): shared memory starts zeroed per CTA,
        # local memory per live thread.
        for slab in self._shared_slabs[: len(cta_ids)]:
            self.memory.fill(slab, shared_bytes, 0)
        live_local = local_stride * threads_per_cta * len(cta_ids)
        if live_local:
            self.memory.fill(self._local_slab, live_local, 0)

        local_cursor = self._local_slab
        for slot, cta_linear in enumerate(cta_ids):
            ctaid = geometry.cta_coordinates(cta_linear)
            shared_base = self._shared_slabs[slot]
            live_counts[cta_linear] = threads_per_cta
            barrier_pools[cta_linear] = []
            for thread_linear in range(threads_per_cta):
                context = ThreadContext(
                    tid=geometry.thread_coordinates(thread_linear),
                    ntid=geometry.block,
                    ctaid=ctaid,
                    nctaid=geometry.grid,
                    shared_base=shared_base,
                    local_base=local_cursor,
                    resume_point=0,
                )
                local_cursor += local_stride
                cta_of[id(context)] = cta_linear
                ready.push(context)
                self.stats.threads_launched += 1

        entry_labels = self.cache.scalar_ir(kernel_name).entry_points

        while ready:
            if self._batching:
                deferred = ready.pop_deferred()
                if deferred is not None:
                    self._finish_batch_item(
                        kernel_name,
                        geometry,
                        deferred,
                        param_base,
                        entry_labels,
                        ready,
                        live_counts,
                        barrier_pools,
                        cta_of,
                    )
                    continue
                if self._execute_batch_round(
                    kernel_name,
                    geometry,
                    ready,
                    live_counts,
                    barrier_pools,
                    cta_of,
                    param_base,
                    entry_labels,
                ):
                    continue
            warp = self._form_warp(kernel_name, ready)
            executable, width = self.cache.get_or_degrade(
                kernel_name, warp.size
            )
            if width < warp.size:
                # The wider build failed and was degraded mid-launch:
                # shrink to the width that did build and re-queue the
                # excess threads for later (narrower) warps.
                self.stats.degraded_warps += 1
                for extra in warp.contexts[width:]:
                    ready.push(extra)
                warp = Warp(
                    contexts=warp.contexts[:width], warp_id=warp.warp_id
                )
            restored = executable.function.restore_counts.get(
                warp.entry_point, 0
            )
            self.stats.record_entry(self.worker_id, warp.size, restored)
            self.stats.em_cycles += (
                self.machine.em_event_cost
                + self.machine.em_per_thread_cost * warp.size
            )
            if self.trace is not None:
                self.trace(
                    "warp",
                    {
                        "worker": self.worker_id,
                        "warp_id": warp.warp_id,
                        "size": warp.size,
                        "entry": warp.entry_point,
                        "kernel": kernel_name,
                    },
                )
            status = self._execute_warp(
                kernel_name,
                geometry,
                warp,
                executable,
                param_base,
                entry_labels,
                ready,
                barrier_pools,
            )
            self._absorb_execution(self._warp_state.stats)
            self.stats.record_yield(status)
            if self.trace is not None:
                self.trace(
                    "yield",
                    {
                        "worker": self.worker_id,
                        "warp_id": warp.warp_id,
                        "status": ResumeStatus.NAMES.get(status, status),
                    },
                )
            self._handle_yield(
                status, warp, ready, live_counts, barrier_pools, cta_of
            )
            self._check_watchdog(
                kernel_name, entry_labels, ready, barrier_pools
            )

        leftovers = {
            cta: waiting
            for cta, waiting in barrier_pools.items()
            if waiting
        }
        if leftovers:
            points = [
                ProgramPoint(
                    ctaid=context.ctaid,
                    tid=context.tid,
                    entry_point=context.resume_point,
                    label=entry_labels.get(context.resume_point),
                    state="barrier",
                )
                for waiting in leftovers.values()
                for context in waiting
            ]
            listed = "; ".join(str(point) for point in points[:16])
            suffix = (
                f"; ... +{len(points) - 16} more" if len(points) > 16 else ""
            )
            raise BarrierDeadlock(
                f"barrier deadlock in {kernel_name!r}: {len(points)} "
                f"thread(s) of CTA(s) {sorted(leftovers)} wait at a "
                f"barrier that can never be released: {listed}{suffix}",
                waiting=points,
            )

    # -- warp execution (the fault-containment boundary) ---------------------

    def _absorb_execution(self, execution) -> None:
        """Fold one warp execution's counters into the launch totals
        (also called on the partial counters of a trapped warp)."""
        self.stats.kernel_cycles += execution.kernel_cycles
        self.stats.yield_cycles += execution.yield_cycles
        self.stats.instructions += execution.instructions
        self.stats.flops += execution.flops

    def _execute_warp(
        self,
        kernel_name: str,
        geometry: LaunchGeometry,
        warp: Warp,
        executable,
        param_base: int,
        entry_labels: Dict[int, str],
        ready: _ReadyPool,
        barrier_pools: Dict[int, List[ThreadContext]],
        continuation=None,
    ) -> int:
        """Run one warp with the watchdog armed; any escaping
        ExecutionError is re-raised as a structured KernelTrap (or a
        LaunchTimeout when the watchdog fired). ``continuation``
        resumes a warp mid-kernel where the array backend's batch
        runner left it."""
        state = self._warp_state
        state.deadline = self._deadline
        state.limit = self.interpreter.instruction_limit
        budget_clamped = False
        if self._cycle_budget is not None:
            # Every kernel instruction costs at least one modeled
            # cycle, so the remaining cycle budget bounds the
            # instruction cap of a warp that never yields.
            remaining = self._cycle_budget - self.total_cycles
            if remaining < state.limit:
                state.limit = max(remaining, 1)
                budget_clamped = True
        try:
            return self.interpreter.execute(
                executable,
                warp,
                param_base,
                state=state,
                continuation=continuation,
            )
        except (DeadlineExceeded, InstructionLimitExceeded) as fault:
            self._absorb_execution(state.stats)
            if isinstance(fault, InstructionLimitExceeded) and (
                not budget_clamped
            ):
                # The interpreter's own global runaway cap fired with
                # no cycle budget configured: contain it as a trap.
                self.stats.traps += 1
                raise build_trap(
                    kernel_name,
                    geometry,
                    warp,
                    executable,
                    state,
                    fault,
                    self.worker_id,
                ) from fault
            self.stats.watchdog_timeouts += 1
            if isinstance(fault, DeadlineExceeded):
                reason = (
                    f"wall-clock deadline of "
                    f"{self.config.launch_timeout_s}s exceeded"
                )
            else:
                reason = (
                    f"modeled cycle budget of {self._cycle_budget} "
                    f"cycles exceeded"
                )
            points = self._program_points(
                entry_labels, ready, barrier_pools, running=warp
            )
            raise build_timeout(kernel_name, reason, points) from fault
        except ExecutionError as fault:
            self._absorb_execution(state.stats)
            self.stats.traps += 1
            raise build_trap(
                kernel_name,
                geometry,
                warp,
                executable,
                state,
                fault,
                self.worker_id,
            ) from fault

    # -- batched execution (array backend) -----------------------------------

    _BATCH_PATCH_POINTS = ("load", "store", "read_array", "write_array")

    def _execute_batch_round(
        self,
        kernel_name: str,
        geometry: LaunchGeometry,
        ready: _ReadyPool,
        live_counts: Dict[int, int],
        barrier_pools: Dict[int, List[ThreadContext]],
        cta_of: Dict[int, int],
        param_base: int,
        entry_labels: Dict[int, str],
    ) -> bool:
        """One batched round: form every full maximal-width warp of the
        head ready-pool key and run them all at once through the array
        backend.

        Scheduling parity with the sequential round-robin is preserved
        by *deferring* the results: the chunk compositions are FIFO-
        stable (arrivals always append, so :meth:`_ReadyPool.pop_chunks`
        takes the same memberships :meth:`_ReadyPool.pop_group` would
        across its visits), the warps' kernel-body effects are computed
        in the batch, but their yield handling — the order-sensitive
        part, where THREAD_BRANCH arrivals and barrier parks re-shape
        downstream queues — happens one warp per round-robin visit via
        the deferred queue, exactly when the sequential former would
        have popped that chunk.

        Returns False (having consumed nothing) whenever the batched
        path cannot reproduce the sequential path exactly — tracing,
        instance-patched fault injectors, degraded widths, a cycle
        budget (whose per-warp clamp is inherently sequential), or a
        kernel with no array lowering — so the caller falls through to
        the one-warp-at-a-time loop."""
        if self.trace is not None or self._cycle_budget is not None:
            return False
        if self._batchable_kernels.get(kernel_name) is False:
            return False
        if "execute" in self.interpreter.__dict__:
            return False
        memory_dict = self.memory.__dict__
        if any(name in memory_dict for name in self._BATCH_PATCH_POINTS):
            return False
        if self.cache.degraded_widths(kernel_name):
            return False
        limit = self.config.max_warp_size
        peek = ready.head_batch(limit)
        if peek is None:
            return False
        # Nothing has been consumed yet; this lookup doubles as warp
        # 0's cache access (the loop below issues one per additional
        # warp so hit counters track the sequential path).
        executable, width = self.cache.get_or_degrade(kernel_name, limit)
        if width != limit or executable.array_blocks is None or (
            executable.entry_label not in executable.array_blocks
        ):
            if width == limit:
                self._batchable_kernels[kernel_name] = False
            return False
        self._batchable_kernels[kernel_name] = True
        chunks = ready.pop_chunks(limit)
        if not chunks:
            return False
        warps = []
        for position, chunk in enumerate(chunks):
            if position:
                self.cache.get_or_degrade(kernel_name, limit)
            warp = Warp(contexts=chunk, warp_id=self._warp_counter)
            self._warp_counter += 1
            warps.append(warp)
        # Entry points are read before execution: context writes inside
        # the kernel update resume_point in place.
        entry_points = [warp.entry_point for warp in warps]
        try:
            outcome = self.interpreter.execute_batch(
                executable,
                warps,
                param_base,
                self.interpreter.instruction_limit,
                self._deadline,
            )
        except ExecutionError:
            # A faulting batch is abandoned wholesale: the popped
            # threads go back to the head of their queue in their
            # original formation and the sequential path re-executes
            # them, so the trap carries the exact thread attribution,
            # register snapshot and partial statistics sequential
            # execution would have produced. (Stores the batch
            # committed before the fault persist — a trapped launch's
            # memory is partial either way.) Nothing was recorded for
            # the attempt, so nothing needs undoing.
            ready.restore(chunks)
            return False
        for warp, entry_point in zip(warps, entry_points):
            restored = executable.function.restore_counts.get(
                entry_point, 0
            )
            self.stats.record_entry(self.worker_id, warp.size, restored)
            self.stats.em_cycles += (
                self.machine.em_event_cost
                + self.machine.em_per_thread_cost * warp.size
            )
        self.stats.batched_warps += len(warps)
        if outcome.kind == "yield":
            items = [
                (warp, executable, None, outcome.status, outcome.stats)
                for warp in warps
            ]
        else:
            # Fallback: the batch stopped short of a yield (divergence,
            # a precise/untranslated block, or a conservative limit/
            # deadline exit). Each warp resumes on the closure path
            # exactly where the array program left it — when its
            # round-robin turn comes.
            items = [
                (warp, executable, continuation, None, None)
                for warp, continuation in zip(
                    warps, outcome.continuations
                )
            ]
        # The first item stands in for the pop this round replaced; the
        # rest drain one per later visit to this key.
        ready.defer(items[1:])
        self._finish_batch_item(
            kernel_name,
            geometry,
            items[0],
            param_base,
            entry_labels,
            ready,
            live_counts,
            barrier_pools,
            cta_of,
        )
        return True

    def _finish_batch_item(
        self,
        kernel_name: str,
        geometry: LaunchGeometry,
        item,
        param_base: int,
        entry_labels: Dict[int, str],
        ready: _ReadyPool,
        live_counts: Dict[int, int],
        barrier_pools: Dict[int, List[ThreadContext]],
        cta_of: Dict[int, int],
    ) -> None:
        """Complete one deferred batch warp at its round-robin turn:
        resume it sequentially when the batch fell back mid-kernel
        (``continuation``), or just apply its precomputed yield."""
        warp, executable, continuation, status, stats = item
        if continuation is not None:
            status = self._execute_warp(
                kernel_name,
                geometry,
                warp,
                executable,
                param_base,
                entry_labels,
                ready,
                barrier_pools,
                continuation=continuation,
            )
            stats = self._warp_state.stats
        self._absorb_execution(stats)
        self.stats.record_yield(status)
        self._handle_yield(
            status, warp, ready, live_counts, barrier_pools, cta_of
        )
        self._check_watchdog(
            kernel_name, entry_labels, ready, barrier_pools
        )

    # -- watchdog ------------------------------------------------------------

    def _check_watchdog(
        self,
        kernel_name: str,
        entry_labels: Dict[int, str],
        ready: _ReadyPool,
        barrier_pools: Dict[int, List[ThreadContext]],
    ) -> None:
        """Between-warp watchdog: terminate the launch when the modeled
        cycle budget or the wall-clock deadline has been exhausted and
        threads are still live."""
        if not ready and not any(barrier_pools.values()):
            return
        reason = None
        if (
            self._cycle_budget is not None
            and self.total_cycles >= self._cycle_budget
        ):
            reason = (
                f"modeled cycle budget of {self._cycle_budget} "
                f"cycles exceeded"
            )
        elif self._deadline is not None and (
            time.monotonic() > self._deadline
        ):
            reason = (
                f"wall-clock deadline of "
                f"{self.config.launch_timeout_s}s exceeded"
            )
        if reason is None:
            return
        self.stats.watchdog_timeouts += 1
        raise build_timeout(
            kernel_name,
            reason,
            self._program_points(entry_labels, ready, barrier_pools),
        )

    def _program_points(
        self,
        entry_labels: Dict[int, str],
        ready: _ReadyPool,
        barrier_pools: Dict[int, List[ThreadContext]],
        running: Optional[Warp] = None,
    ) -> List[ProgramPoint]:
        """Every live thread's program point, for watchdog reports."""
        points: List[ProgramPoint] = []

        def _collect(contexts, state):
            for context in contexts:
                points.append(
                    ProgramPoint(
                        ctaid=context.ctaid,
                        tid=context.tid,
                        entry_point=context.resume_point,
                        label=entry_labels.get(context.resume_point),
                        state=state,
                    )
                )

        if running is not None:
            _collect(running.contexts, "running")
        _collect(ready.contexts(), "ready")
        for waiting in barrier_pools.values():
            _collect(waiting, "barrier")
        return points

    # -- warp formation ------------------------------------------------------

    def _form_warp(self, kernel_name: str, ready: _ReadyPool) -> Warp:
        limit = self.config.max_warp_size
        degraded = self.cache.degraded_widths(kernel_name)
        if self.config.static_warps:
            members = self._form_static(ready, limit, degraded)
        else:
            group = ready.pop_group(limit)
            size = self._choose_width(len(group), degraded)
            members = group[:size]
            for extra in group[size:]:
                ready.push(extra)
        warp = Warp(contexts=members, warp_id=self._warp_counter)
        self._warp_counter += 1
        return warp

    def _choose_width(self, available: int, degraded) -> int:
        """Formation-time width query, skipping degraded widths (and
        counting the warp as degraded when that changed the answer)."""
        size = self.cache.specialization_for(available, exclude=degraded)
        if degraded and size < self.cache.specialization_for(available):
            self.stats.degraded_warps += 1
        return size

    def _form_static(
        self, ready: _ReadyPool, limit: int, degraded=frozenset()
    ) -> List[ThreadContext]:
        """Static warp formation: a run of consecutively indexed
        ``tid.x`` threads from one CTA row (§6.2)."""
        group = ready.pop_group(limit * 4)
        anchor = group[0]
        window_base = (anchor.tid[0] // limit) * limit
        rest: List[ThreadContext] = []
        by_x: Dict[int, ThreadContext] = {anchor.tid[0]: anchor}
        for candidate in group[1:]:
            same_row = (
                candidate.ctaid == anchor.ctaid
                and candidate.tid[1] == anchor.tid[1]
                and candidate.tid[2] == anchor.tid[2]
                and window_base
                <= candidate.tid[0]
                < window_base + limit
            )
            if same_row and candidate.tid[0] not in by_x:
                by_x[candidate.tid[0]] = candidate
            else:
                rest.append(candidate)
        # The pool order after divergent re-entry is arbitrary, so the
        # FIFO anchor need not be the lowest thread of its aligned
        # window: the run starts at the lowest present tid.x, not at
        # the anchor, or re-formation builds sub-maximal warps.
        run: List[ThreadContext] = []
        next_x = min(by_x)
        while next_x in by_x and len(run) < limit:
            run.append(by_x.pop(next_x))
            next_x += 1
        rest.extend(by_x.values())
        size = self._choose_width(len(run), degraded)
        members = run[:size]
        for extra in run[size:]:
            ready.push(extra)
        for extra in rest:
            ready.push(extra)
        return members

    # -- yield handling ------------------------------------------------------

    def _handle_yield(
        self,
        status: int,
        warp: Warp,
        ready: _ReadyPool,
        live_counts: Dict[int, int],
        barrier_pools: Dict[int, List[ThreadContext]],
        cta_of: Dict[int, int],
    ) -> None:
        if status == ResumeStatus.THREAD_BRANCH:
            for context in warp.contexts:
                context.status = status
                ready.push(context)
            return
        if status == ResumeStatus.THREAD_EXIT:
            released: List[int] = []
            for context in warp.contexts:
                context.status = status
                cta = cta_of[id(context)]
                live_counts[cta] -= 1
                released.append(cta)
            for cta in set(released):
                self._maybe_release_barrier(
                    cta, ready, live_counts, barrier_pools
                )
            return
        if status == ResumeStatus.THREAD_BARRIER:
            self.stats.em_cycles += (
                self.machine.em_barrier_cost * warp.size
            )
            arrived: List[int] = []
            for context in warp.contexts:
                context.status = status
                cta = cta_of[id(context)]
                barrier_pools[cta].append(context)
                arrived.append(cta)
            for cta in set(arrived):
                self._maybe_release_barrier(
                    cta, ready, live_counts, barrier_pools
                )
            return
        raise LaunchError(f"kernel yielded unknown status {status}")

    def _maybe_release_barrier(
        self,
        cta: int,
        ready: _ReadyPool,
        live_counts: Dict[int, int],
        barrier_pools: Dict[int, List[ThreadContext]],
    ) -> None:
        waiting = barrier_pools[cta]
        if waiting and len(waiting) == live_counts[cta]:
            self.stats.em_cycles += (
                self.machine.em_barrier_cost * len(waiting)
            )
            sanitizer = self.memory.sanitizer
            if sanitizer is not None:
                # bar.sync orders everything before it against
                # everything after: the race detector's epoch for this
                # CTA advances, retiring the interval's access logs.
                sanitizer.barrier_released(cta)
            if self.trace is not None:
                self.trace(
                    "barrier_release",
                    {
                        "worker": self.worker_id,
                        "cta": cta,
                        "threads": len(waiting),
                    },
                )
            for context in waiting:
                ready.push(context)
            waiting.clear()

    @property
    def total_cycles(self) -> int:
        return (
            self.stats.kernel_cycles
            + self.stats.yield_cycles
            + self.stats.em_cycles
        )


def _align(value: int, alignment: int) -> int:
    remainder = value % alignment
    if remainder:
        return value + alignment - remainder
    return value
