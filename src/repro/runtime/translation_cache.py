"""The dynamic translation cache (§5.1).

Responsible for producing executable specializations of each kernel:
PTX -> scalar IR (translation), vectorization for the requested warp
size, the traditional cleanup passes, and lowering for the machine
("JIT compilation"). Execution managers query by (kernel, warp size)
exactly as the paper describes, and translations happen lazily on
first request.

Beyond the paper's in-memory memoization the cache is:

- **Content-addressed.** Every specialization is identified by a
  SHA-256 digest over the kernel's PTX body, the arena addresses of
  the module-scope symbols it references, ``ExecutionConfig.
  cache_key()``, the warp size, and the machine descriptor. Distinct
  configs/devices can therefore share one persistent store without
  ever exchanging incompatible code.
- **Precisely invalidated.** Re-registering a kernel whose body or
  referenced global symbols changed bumps its *generation* and drops
  the stale scalar IR and specializations; re-registering identical
  content keeps everything. :meth:`invalidate` forces the same drop
  explicitly.
- **Optionally persistent.** With a :class:`~repro.runtime.cache_store.
  CacheStore` attached, misses consult the disk tier (pickled
  vectorized IR) before compiling, and fresh compilations are written
  back — cold processes skip translation entirely.
- **Observable.** :class:`CacheStatistics` counts hits, misses,
  invalidations, disk hits/misses/errors, evictions, and records
  per-specialization compile times; the launcher attaches per-launch
  deltas to :class:`~repro.runtime.statistics.LaunchStatistics`.
"""

from __future__ import annotations

import hashlib
import re
import time
from dataclasses import astuple, dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import (
    ExecutionError,
    IRVerificationError,
    TranslationCacheError,
    TranslationError,
    VectorizationError,
)
from ..frontend.translator import translate_kernel
from ..ir.function import IRFunction
from ..machine.descriptor import MachineDescription
from ..machine.interpreter import ExecutableFunction, Interpreter
from ..ptx.module import Kernel, Module
from ..transforms.pass_manager import (
    scalar_prepass_pipeline,
    standard_cleanup_pipeline,
)
from ..transforms.vectorize import (
    VectorizeOptions,
    assign_spill_slots,
    vectorize_kernel,
)
from .cache_store import SCHEMA_VERSION, CacheStore
from .config import ExecutionConfig


@dataclass
class CacheStatistics:
    """Observable cache activity (cumulative per cache; the launcher
    derives per-launch deltas with :meth:`snapshot`/:meth:`delta`)."""

    #: specializations compiled from scratch
    translations: int = 0
    #: in-memory specialization hits
    hits: int = 0
    #: in-memory specialization misses (before the disk tier is tried)
    misses: int = 0
    #: cached artifacts (scalar IR or specializations) dropped by
    #: invalidation (re-registration, symbol updates, or explicit)
    invalidations: int = 0
    #: specializations loaded from the persistent tier
    disk_hits: int = 0
    #: persistent-tier lookups that found nothing
    disk_misses: int = 0
    #: corrupt/incompatible/unwritable persistent entries encountered
    disk_errors: int = 0
    #: persistent entries evicted by the size bound
    evictions: int = 0
    #: specialization widths degraded after a failed build (the
    #: graceful-degradation ladder: a width whose vectorization or
    #: lowering fails falls back to a narrower specialization instead
    #: of failing the launch)
    degradations: int = 0
    #: wall seconds spent translating (excludes disk-hit loads)
    translation_seconds: float = 0.0
    #: per-degradation records: (kernel, failed_width, fallback_width,
    #: reason)
    degradation_events: List[Tuple[str, int, int, str]] = field(
        default_factory=list
    )
    #: per-specialization static instruction counts (for §6.2's
    #: instruction-reduction measurement)
    instruction_counts: Dict[Tuple[str, int], int] = field(
        default_factory=dict
    )
    #: per-specialization compile seconds (0.0 for disk hits)
    compile_seconds: Dict[Tuple[str, int], float] = field(
        default_factory=dict
    )
    #: per-kernel control-flow-melding outcome recorded when the scalar
    #: IR is built with ``ExecutionConfig(meld=True)``:
    #: kernel -> (melded regions, rejected candidate regions)
    meld_decisions: Dict[str, Tuple[int, int]] = field(
        default_factory=dict
    )

    _COUNTERS = (
        "translations",
        "hits",
        "misses",
        "invalidations",
        "disk_hits",
        "disk_misses",
        "disk_errors",
        "evictions",
        "degradations",
    )

    def snapshot(self) -> "CacheStatistics":
        """An independent copy (for before/after deltas)."""
        copy = CacheStatistics()
        for name in self._COUNTERS:
            setattr(copy, name, getattr(self, name))
        copy.translation_seconds = self.translation_seconds
        copy.instruction_counts = dict(self.instruction_counts)
        copy.compile_seconds = dict(self.compile_seconds)
        copy.degradation_events = list(self.degradation_events)
        copy.meld_decisions = dict(self.meld_decisions)
        return copy

    def delta(self, before: "CacheStatistics") -> "CacheStatistics":
        """Activity since ``before`` (a prior :meth:`snapshot`)."""
        diff = CacheStatistics()
        for name in self._COUNTERS:
            setattr(
                diff, name, getattr(self, name) - getattr(before, name)
            )
        diff.translation_seconds = (
            self.translation_seconds - before.translation_seconds
        )
        diff.instruction_counts = {
            key: count
            for key, count in self.instruction_counts.items()
            if before.instruction_counts.get(key) != count
        }
        diff.compile_seconds = {
            key: seconds
            for key, seconds in self.compile_seconds.items()
            if key not in before.compile_seconds
        }
        diff.degradation_events = self.degradation_events[
            len(before.degradation_events):
        ]
        diff.meld_decisions = {
            key: value
            for key, value in self.meld_decisions.items()
            if before.meld_decisions.get(key) != value
        }
        return diff

    def merge(self, other: "CacheStatistics") -> None:
        for name in self._COUNTERS:
            setattr(
                self, name, getattr(self, name) + getattr(other, name)
            )
        self.translation_seconds += other.translation_seconds
        self.instruction_counts.update(other.instruction_counts)
        self.compile_seconds.update(other.compile_seconds)
        self.degradation_events.extend(other.degradation_events)
        self.meld_decisions.update(other.meld_decisions)

    def counters(self) -> Dict[str, int]:
        return {name: getattr(self, name) for name in self._COUNTERS}


@dataclass
class _Specialization:
    """One cached executable plus the digest it was built under."""

    digest: str
    executable: ExecutableFunction


class TranslationCache:
    """Content-addressed cache of lowered kernel specializations."""

    def __init__(
        self,
        machine: MachineDescription,
        interpreter: Interpreter,
        config: ExecutionConfig,
        store: Optional[CacheStore] = None,
    ):
        self.machine = machine
        self.interpreter = interpreter
        self.config = config
        self.statistics = CacheStatistics()
        #: Persistent tier; None when disabled. Built from the config
        #: (or the REPRO_CACHE / REPRO_CACHE_DIR environment) unless an
        #: explicit store is supplied.
        self.store = store if store is not None else CacheStore.from_config(
            config
        )
        self._kernels: Dict[str, Kernel] = {}
        self._global_symbols: Dict[str, int] = {}
        #: Rendered PTX body per kernel (fingerprint + symbol-reference
        #: scanning input).
        self._kernel_text: Dict[str, str] = {}
        #: Content fingerprint per kernel: PTX body + referenced
        #: global-symbol addresses.
        self._fingerprints: Dict[str, str] = {}
        #: Monotonic generation per kernel, bumped by every
        #: invalidation (observability + staleness assertions).
        self._generations: Dict[str, int] = {}
        self._scalar_ir: Dict[str, Tuple[str, IRFunction]] = {}
        #: Meld-pass reports per kernel (populated by scalar_ir when
        #: ``config.meld``; dropped with the scalar IR on invalidation).
        self._meld_reports: Dict[str, object] = {}
        #: (fingerprint, (slots, size)) per kernel — the spill-area
        #: layout is a pure function of the scalar IR, so it is cached
        #: alongside it instead of being recomputed by every
        #: ``ExecutionManager.run`` (once per worker per launch).
        self._spill_layouts: Dict[
            str, Tuple[str, Tuple[Dict[str, int], int]]
        ] = {}
        self._specializations: Dict[Tuple[str, int], _Specialization] = {}
        self._digest_memo: Dict[Tuple[str, int], str] = {}
        #: Per-kernel widths whose build failed and was degraded away;
        #: warp formation avoids them and :meth:`get_or_degrade` never
        #: retries them until the kernel is invalidated.
        self._degraded: Dict[str, set] = {}
        #: Digest material shared by every kernel of this cache:
        #: schema + execution config + machine descriptor.
        self._environment_digest = hashlib.sha256(
            "|".join(
                [
                    f"schema={SCHEMA_VERSION}",
                    repr(config.cache_key()),
                    repr(astuple(machine)),
                ]
            ).encode()
        ).hexdigest()

    # -- registration --------------------------------------------------------

    def register_module(
        self, module: Module, global_symbols: Optional[Dict[str, int]] = None
    ) -> None:
        """Add a module's kernels. ``global_symbols`` maps module-scope
        .global/.const variable names to arena addresses (assigned by
        the device at registration).

        Re-registering a kernel whose content changed — or updating the
        address of a global symbol an already-registered kernel
        references — invalidates the affected scalar IR and
        specializations so stale code is never served.
        """
        changed_symbols = set()
        if global_symbols:
            for name, address in global_symbols.items():
                if self._global_symbols.get(name) != address:
                    changed_symbols.add(name)
            self._global_symbols.update(global_symbols)
        if changed_symbols:
            for kernel_name in list(self._kernel_text):
                if kernel_name in module.kernels:
                    continue  # refreshed below anyway
                if self._references_any(
                    self._kernel_text[kernel_name], changed_symbols
                ):
                    self._refresh_fingerprint(kernel_name)
        for kernel in module.kernels.values():
            self._register_kernel(kernel)

    def _register_kernel(self, kernel: Kernel) -> None:
        name = kernel.name
        text = str(kernel)
        fingerprint = self._fingerprint_of(text)
        previous = self._fingerprints.get(name)
        if previous is not None and previous != fingerprint:
            self.invalidate(name)
        self._kernels[name] = kernel
        self._kernel_text[name] = text
        self._fingerprints[name] = fingerprint
        self._generations.setdefault(name, 1)

    def _refresh_fingerprint(self, kernel_name: str) -> None:
        """Recompute a kernel's fingerprint after a global-symbol
        change, invalidating its cached code when it differs."""
        fingerprint = self._fingerprint_of(self._kernel_text[kernel_name])
        if self._fingerprints.get(kernel_name) != fingerprint:
            self.invalidate(kernel_name)
            self._fingerprints[kernel_name] = fingerprint

    # -- fingerprints / digests ---------------------------------------------

    @staticmethod
    def _references_any(text: str, names: Iterable[str]) -> bool:
        return any(
            re.search(rf"\b{re.escape(name)}\b", text) for name in names
        )

    def _referenced_symbols(self, text: str) -> List[Tuple[str, int]]:
        """(name, address) of the registered global symbols the kernel
        body mentions — only these make it into the fingerprint, so an
        unrelated symbol update cannot invalidate this kernel."""
        return sorted(
            (name, address)
            for name, address in self._global_symbols.items()
            if re.search(rf"\b{re.escape(name)}\b", text)
        )

    def _fingerprint_of(self, text: str) -> str:
        material = text + "|" + repr(self._referenced_symbols(text))
        return hashlib.sha256(material.encode()).hexdigest()

    def fingerprint(self, kernel_name: str) -> str:
        """Content fingerprint of a registered kernel (PTX body plus
        referenced global-symbol addresses)."""
        self.kernel(kernel_name)
        return self._fingerprints[kernel_name]

    def generation(self, kernel_name: str) -> int:
        """How many times ``kernel_name`` has been (re)validated: 1 at
        first registration, +1 per invalidation."""
        self.kernel(kernel_name)
        return self._generations[kernel_name]

    def specialization_digest(self, kernel_name: str, warp_size: int) -> str:
        """Content-addressed key of one specialization: kernel
        fingerprint x execution config x machine x warp size. This is
        the persistent tier's file name."""
        key = (kernel_name, warp_size)
        digest = self._digest_memo.get(key)
        if digest is None:
            material = "|".join(
                [
                    self.fingerprint(kernel_name),
                    self._environment_digest,
                    f"ws={warp_size}",
                ]
            )
            digest = hashlib.sha256(material.encode()).hexdigest()
            self._digest_memo[key] = digest
        return digest

    # -- invalidation --------------------------------------------------------

    def invalidate(self, kernel_name: str) -> int:
        """Drop every cached artifact of ``kernel_name`` (scalar IR and
        all specializations) and bump its generation. Returns the
        number of artifacts dropped. The persistent tier is left
        untouched: its entries are content-addressed, so stale code is
        unreachable once the fingerprint moves."""
        dropped = 0
        if self._scalar_ir.pop(kernel_name, None) is not None:
            dropped += 1
        self._spill_layouts.pop(kernel_name, None)
        self._meld_reports.pop(kernel_name, None)
        for key in [
            key for key in self._specializations if key[0] == kernel_name
        ]:
            del self._specializations[key]
            dropped += 1
        for key in [
            key for key in self._digest_memo if key[0] == kernel_name
        ]:
            del self._digest_memo[key]
        # New content may vectorize where the old content failed: give
        # degraded widths another chance.
        self._degraded.pop(kernel_name, None)
        self.statistics.invalidations += dropped
        self._generations[kernel_name] = (
            self._generations.get(kernel_name, 0) + 1
        )
        return dropped

    # -- queries -------------------------------------------------------------

    def kernel(self, name: str) -> Kernel:
        try:
            return self._kernels[name]
        except KeyError:
            raise TranslationCacheError(
                f"kernel {name!r} is not registered; "
                f"have {sorted(self._kernels)}"
            ) from None

    def scalar_ir(self, kernel_name: str) -> IRFunction:
        """The scalar IR translation (shared by all specializations),
        revalidated against the kernel's current fingerprint."""
        fingerprint = self.fingerprint(kernel_name)
        entry = self._scalar_ir.get(kernel_name)
        if entry is not None and entry[0] == fingerprint:
            return entry[1]
        kernel = self.kernel(kernel_name)
        translated = translate_kernel(
            kernel, global_symbols=self._global_symbols
        )
        # Scalar-stage transforms (if-conversion, control-flow
        # melding): must happen before entry points are assigned so
        # every specialization sees the same control structure.
        prepass = scalar_prepass_pipeline(self.config, self.machine)
        if prepass is not None:
            prepass.run(translated)
            meld_report = getattr(translated, "meld_report", None)
            if meld_report is not None:
                self._meld_reports[kernel_name] = meld_report
                self.statistics.meld_decisions[kernel_name] = (
                    meld_report.melded_regions,
                    meld_report.rejected_regions,
                )
        self._scalar_ir[kernel_name] = (fingerprint, translated)
        return translated

    def meld_report(self, kernel_name: str):
        """The melding pass's :class:`~repro.transforms.melding.
        MeldReport` for ``kernel_name``, or ``None`` when melding is
        off or the scalar IR has not been built yet."""
        return self._meld_reports.get(kernel_name)

    def spill_layout(
        self, kernel_name: str
    ) -> Tuple[Dict[str, int], int]:
        """``(slots, total_bytes)`` of the per-thread spill area,
        computed once per scalar IR and revalidated by fingerprint."""
        fingerprint = self.fingerprint(kernel_name)
        entry = self._spill_layouts.get(kernel_name)
        if entry is not None and entry[0] == fingerprint:
            return entry[1]
        layout = assign_spill_slots(self.scalar_ir(kernel_name))
        self._spill_layouts[kernel_name] = (fingerprint, layout)
        return layout

    def get(self, kernel_name: str, warp_size: int) -> ExecutableFunction:
        """Executable specialization of ``kernel_name`` for
        ``warp_size`` threads. Lookup order: in-memory entry (validated
        by digest), persistent tier, full translation."""
        if warp_size not in self.config.warp_sizes:
            raise TranslationCacheError(
                f"no warp-size-{warp_size} specialization configured "
                f"(have {self.config.warp_sizes})"
            )
        key = (kernel_name, warp_size)
        digest = self.specialization_digest(kernel_name, warp_size)
        entry = self._specializations.get(key)
        if entry is not None:
            if entry.digest == digest:
                self.statistics.hits += 1
                return entry.executable
            # Safety net: a stale entry that escaped invalidation.
            del self._specializations[key]
            self.statistics.invalidations += 1
        self.statistics.misses += 1
        executable = self._load_from_store(key, digest)
        if executable is None:
            executable = self._compile(key, digest)
        self._specializations[key] = _Specialization(digest, executable)
        return executable

    def specialization_for(
        self, available_threads: int, exclude: Iterable[int] = ()
    ) -> int:
        """Largest configured warp size not exceeding
        ``available_threads`` (§5.2's warp formation query).
        ``exclude`` skips widths known to fail (degraded); width 1 is
        never excluded — it is the guaranteed scalar fallback."""
        excluded = set(exclude)
        chosen = 1
        for size in self.config.warp_sizes:
            if size <= available_threads and (
                size == 1 or size not in excluded
            ):
                chosen = size
        return chosen

    # -- graceful degradation ------------------------------------------------

    def degraded_widths(self, kernel_name: str):
        """Widths of ``kernel_name`` whose build failed and was degraded
        away. Cleared by :meth:`invalidate`."""
        return frozenset(self._degraded.get(kernel_name, ()))

    def get_or_degrade(
        self, kernel_name: str, warp_size: int
    ) -> Tuple[ExecutableFunction, int]:
        """Like :meth:`get`, but a failing build falls back down the
        specialization ladder instead of aborting the launch: a
        vectorization / translation / verification failure at width
        ``w`` marks ``w`` degraded, records the event in
        :class:`CacheStatistics`, and retries at the next narrower
        configured width. Width 1 is the floor — a scalar build failure
        propagates (the kernel is unrunnable). Returns
        ``(executable, actual_width)``."""
        width = warp_size
        while True:
            try:
                return self.get(kernel_name, width), width
            except (
                VectorizationError,
                TranslationError,
                IRVerificationError,
                ExecutionError,
            ) as error:
                if width <= 1:
                    raise
                marks = self._degraded.setdefault(kernel_name, set())
                marks.add(width)
                narrower = self.specialization_for(width - 1, exclude=marks)
                reason = f"{type(error).__name__}: {error}"
                self.statistics.degradations += 1
                self.statistics.degradation_events.append(
                    (kernel_name, width, narrower, reason)
                )
                width = narrower

    # -- warm-up -------------------------------------------------------------

    def warm(
        self,
        kernel_name: Optional[str] = None,
        warp_sizes: Optional[Iterable[int]] = None,
    ) -> Dict[Tuple[str, int], float]:
        """Compile-ahead: materialize specializations before the first
        launch (and populate the persistent tier when attached).
        Returns per-specialization compile seconds (0.0 for entries
        served from memory or disk)."""
        names = (
            [kernel_name] if kernel_name is not None else sorted(self._kernels)
        )
        sizes = (
            tuple(warp_sizes)
            if warp_sizes is not None
            else self.config.warp_sizes
        )
        compiled: Dict[Tuple[str, int], float] = {}
        for name in names:
            for size in sizes:
                self.get(name, size)
                compiled[(name, size)] = self.statistics.compile_seconds.get(
                    (name, size), 0.0
                )
        return compiled

    # -- pipeline -----------------------------------------------------------

    def _load_from_store(
        self, key: Tuple[str, int], digest: str
    ) -> Optional[ExecutableFunction]:
        if self.store is None:
            return None
        payload = self.store.load(digest, statistics=self.statistics)
        if payload is None:
            self.statistics.disk_misses += 1
            return None
        try:
            executable = self.interpreter.load_function(payload["function"])
            instruction_count = int(payload["instruction_count"])
        except Exception:
            # Structurally valid pickle, semantically unusable payload.
            self.store.discard(digest)
            self.statistics.disk_errors += 1
            self.statistics.disk_misses += 1
            return None
        self.statistics.disk_hits += 1
        self.statistics.instruction_counts[key] = instruction_count
        self.statistics.compile_seconds.setdefault(key, 0.0)
        return executable

    def _compile(
        self, key: Tuple[str, int], digest: str
    ) -> ExecutableFunction:
        kernel_name, warp_size = key
        start = time.perf_counter()
        function = self._build_specialization(kernel_name, warp_size)
        elapsed = time.perf_counter() - start
        self.statistics.translations += 1
        self.statistics.translation_seconds += elapsed
        self.statistics.compile_seconds[key] = elapsed
        instruction_count = function.instruction_count()
        self.statistics.instruction_counts[key] = instruction_count
        if self.store is not None:
            self.store.store(
                digest,
                {
                    "kernel": kernel_name,
                    "warp_size": warp_size,
                    "function": function,
                    "instruction_count": instruction_count,
                    "compile_seconds": elapsed,
                },
                statistics=self.statistics,
            )
        return self.interpreter.load_function(function)

    def _build_specialization(
        self, kernel_name: str, warp_size: int
    ) -> IRFunction:
        """The translation pipeline proper: scalar IR -> vectorized,
        cleaned IR for one warp size (not yet lowered)."""
        scalar = self.scalar_ir(kernel_name)
        options = VectorizeOptions(
            warp_size=warp_size,
            yield_at_branches=self.config.yields_at_branches(warp_size),
            static_warps=self.config.static_warps,
            thread_invariant_elimination=(
                self.config.thread_invariant_elimination
            ),
            vector_memory=self.config.vector_memory,
        )
        function = vectorize_kernel(scalar, options)
        if self.config.optimize:
            pipeline = standard_cleanup_pipeline(verify=True)
            function = pipeline.run(function)
        return function

    # -- introspection -------------------------------------------------------

    def cached_specializations(self):
        return sorted(self._specializations)

    def instruction_count(self, kernel_name: str, warp_size: int) -> int:
        self.get(kernel_name, warp_size)
        return self.statistics.instruction_counts[(kernel_name, warp_size)]
