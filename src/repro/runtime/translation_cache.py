"""The dynamic translation cache (§5.1).

Responsible for producing executable specializations of each kernel:
PTX -> scalar IR (translation), vectorization for the requested warp
size, the traditional cleanup passes, and lowering for the machine
("JIT compilation"). Results are memoized; execution managers query by
(kernel, warp size) exactly as the paper describes, and translations
happen lazily on first request.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..errors import TranslationCacheError
from ..frontend.translator import translate_kernel
from ..ir.function import IRFunction
from ..machine.descriptor import MachineDescription
from ..machine.interpreter import ExecutableFunction, Interpreter
from ..ptx.module import Kernel, Module
from ..transforms.if_conversion import if_convert
from ..transforms.pass_manager import standard_cleanup_pipeline
from ..transforms.vectorize import VectorizeOptions, vectorize_kernel
from .config import ExecutionConfig


@dataclass
class CacheStatistics:
    translations: int = 0
    hits: int = 0
    misses: int = 0
    translation_seconds: float = 0.0
    #: per-specialization static instruction counts (for §6.2's
    #: instruction-reduction measurement)
    instruction_counts: Dict[Tuple[str, int], int] = field(
        default_factory=dict
    )


class TranslationCache:
    """Kernel-name + warp-size keyed cache of lowered functions."""

    def __init__(
        self,
        machine: MachineDescription,
        interpreter: Interpreter,
        config: ExecutionConfig,
    ):
        self.machine = machine
        self.interpreter = interpreter
        self.config = config
        self.statistics = CacheStatistics()
        self._kernels: Dict[str, Kernel] = {}
        self._global_symbols: Dict[str, int] = {}
        self._scalar_ir: Dict[str, IRFunction] = {}
        self._specializations: Dict[
            Tuple[str, int], ExecutableFunction
        ] = {}

    # -- registration --------------------------------------------------------

    def register_module(
        self, module: Module, global_symbols: Optional[Dict[str, int]] = None
    ) -> None:
        """Add a module's kernels. ``global_symbols`` maps module-scope
        .global/.const variable names to arena addresses (assigned by
        the device at registration)."""
        if global_symbols:
            self._global_symbols.update(global_symbols)
        for kernel in module.kernels.values():
            self._kernels[kernel.name] = kernel

    def kernel(self, name: str) -> Kernel:
        try:
            return self._kernels[name]
        except KeyError:
            raise TranslationCacheError(
                f"kernel {name!r} is not registered; "
                f"have {sorted(self._kernels)}"
            ) from None

    # -- queries -------------------------------------------------------------

    def scalar_ir(self, kernel_name: str) -> IRFunction:
        """The scalar IR translation (shared by all specializations)."""
        cached = self._scalar_ir.get(kernel_name)
        if cached is None:
            kernel = self.kernel(kernel_name)
            cached = translate_kernel(
                kernel, global_symbols=self._global_symbols
            )
            if self.config.if_conversion:
                # Predication-style conditional data flow (§7): must
                # happen before entry points are assigned so every
                # specialization sees the same control structure.
                if_convert(cached)
            self._scalar_ir[kernel_name] = cached
        return cached

    def get(self, kernel_name: str, warp_size: int) -> ExecutableFunction:
        """Executable specialization of ``kernel_name`` for
        ``warp_size`` threads (translating lazily on first query)."""
        if warp_size not in self.config.warp_sizes:
            raise TranslationCacheError(
                f"no warp-size-{warp_size} specialization configured "
                f"(have {self.config.warp_sizes})"
            )
        key = (kernel_name, warp_size)
        cached = self._specializations.get(key)
        if cached is not None:
            self.statistics.hits += 1
            return cached
        self.statistics.misses += 1
        start = time.perf_counter()
        executable = self._translate(kernel_name, warp_size)
        self.statistics.translation_seconds += time.perf_counter() - start
        self.statistics.translations += 1
        self._specializations[key] = executable
        return executable

    def specialization_for(self, available_threads: int) -> int:
        """Largest configured warp size not exceeding
        ``available_threads`` (§5.2's warp formation query)."""
        chosen = 1
        for size in self.config.warp_sizes:
            if size <= available_threads:
                chosen = size
        return chosen

    # -- pipeline -----------------------------------------------------------

    def _translate(
        self, kernel_name: str, warp_size: int
    ) -> ExecutableFunction:
        scalar = self.scalar_ir(kernel_name)
        options = VectorizeOptions(
            warp_size=warp_size,
            yield_at_branches=self.config.yields_at_branches(warp_size),
            static_warps=self.config.static_warps,
            thread_invariant_elimination=(
                self.config.thread_invariant_elimination
            ),
            vector_memory=self.config.vector_memory,
        )
        function = vectorize_kernel(scalar, options)
        if self.config.optimize:
            pipeline = standard_cleanup_pipeline(verify=True)
            function = pipeline.run(function)
        self.statistics.instruction_counts[(kernel_name, warp_size)] = (
            function.instruction_count()
        )
        return self.interpreter.load_function(function)

    # -- introspection -------------------------------------------------------

    def cached_specializations(self):
        return sorted(self._specializations)

    def instruction_count(self, kernel_name: str, warp_size: int) -> int:
        self.get(kernel_name, warp_size)
        return self.statistics.instruction_counts[(kernel_name, warp_size)]
