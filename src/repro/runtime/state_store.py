"""On-disk tier of the tenant durability layer.

A :class:`StateStore` persists per-tenant *checkpoints*: snapshots of
every live allocation of one :class:`~repro.runtime.pool.TenantSession`
plus the journal index the snapshot covers, so a respawned worker can
be rebuilt by loading the checkpoint and replaying only the journal
tail. The design mirrors :mod:`~repro.runtime.cache_store` (the
persistent translation cache), hardened for state that must never be
half-trusted:

- **Content-addressed blocks.** Allocation bytes are stored under
  their SHA-256 digest, one file per distinct content, scoped to the
  tenant's directory. A buffer unchanged since the previous checkpoint
  is not rewritten — the manifest just references the existing block.
- **Checksummed manifests.** Each checkpoint manifest is a pickled
  envelope ``{"schema", "checksum", "body"}`` where ``checksum`` is
  the SHA-256 of the pickled body. A torn write (truncated pickle) or
  bit corruption fails the checksum and the manifest is *discarded*,
  never loaded; restore falls back to the previous checkpoint.
- **Atomic writes.** Blocks and manifests land via tempfile +
  ``os.replace`` — a crash mid-write leaves the previous checkpoint
  intact and at worst an orphan temp file.
- **Bounded retention.** The latest ``keep`` manifests are retained
  (default 2 — current plus fallback); older manifests and blocks no
  retained manifest references are garbage-collected.
- **Never raises.** Every disk failure degrades to "no checkpoint"
  (restore replays the full journal instead); corruption and I/O
  errors are counted on the store, not surfaced to launches.

The directory defaults to ``~/.cache/repro/state`` and can be
overridden with ``DevicePool(state_dir=...)`` or ``REPRO_STATE_DIR``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import re
import tempfile
from dataclasses import dataclass, field
from typing import Dict, List, Optional

#: Bump whenever the manifest layout changes incompatibly; old
#: checkpoints are then discarded on load instead of misparsed.
SCHEMA_VERSION = 1

#: Default location of the durability tier.
DEFAULT_STATE_DIR = "~/.cache/repro/state"

_MANIFEST_SUFFIX = ".ckpt"
_BLOCK_SUFFIX = ".blk"
_MANIFEST_PREFIX = "checkpoint-"


@dataclass
class Checkpoint:
    """One loaded (and fully verified) tenant checkpoint."""

    tenant: str
    seq: int
    #: Absolute journal index the snapshot covers: restore replays the
    #: journal from this index onward.
    journal_index: int
    #: ``[{"local", "size", "label", "data"}, ...]`` in stable (local
    #: handle) order; ``data`` is the verified allocation bytes.
    allocations: List[dict] = field(default_factory=list)


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _tenant_slug(tenant: str) -> str:
    """Filesystem-safe per-tenant directory name: a readable prefix
    plus a digest so distinct tenants can never collide."""
    safe = re.sub(r"[^A-Za-z0-9._-]", "_", tenant)[:24] or "tenant"
    return f"{safe}-{_digest(tenant.encode('utf-8'))[:12]}"


class StateStore:
    """Directory of per-tenant checkpoint manifests + content blocks.

    ::

        store/
          alice-3f29.../
            checkpoint-1.ckpt     # manifest (schema + checksum + body)
            checkpoint-2.ckpt
            a1b2c3....blk         # content-addressed allocation bytes
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        schema: int = SCHEMA_VERSION,
        keep: int = 2,
    ):
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = os.path.expanduser(
            directory
            or os.environ.get("REPRO_STATE_DIR")
            or DEFAULT_STATE_DIR
        )
        self.schema = schema
        self.keep = keep
        #: Checkpoints successfully written / verified-loaded.
        self.stored = 0
        self.loaded = 0
        #: Manifests or blocks rejected (torn, corrupt, wrong schema).
        self.discarded = 0
        #: OS/pickle failures that degraded a store() to a no-op.
        self.disk_errors = 0

    # -- paths ---------------------------------------------------------------

    def tenant_directory(self, tenant: str) -> str:
        return os.path.join(self.directory, _tenant_slug(tenant))

    def manifest_path(self, tenant: str, seq: int) -> str:
        return os.path.join(
            self.tenant_directory(tenant),
            f"{_MANIFEST_PREFIX}{seq}{_MANIFEST_SUFFIX}",
        )

    def block_path(self, tenant: str, digest: str) -> str:
        return os.path.join(
            self.tenant_directory(tenant), digest + _BLOCK_SUFFIX
        )

    def sequences(self, tenant: str) -> List[int]:
        """Checkpoint sequence numbers on disk, ascending."""
        try:
            names = os.listdir(self.tenant_directory(tenant))
        except OSError:
            return []
        found = []
        for name in names:
            if not (
                name.startswith(_MANIFEST_PREFIX)
                and name.endswith(_MANIFEST_SUFFIX)
            ):
                continue
            raw = name[len(_MANIFEST_PREFIX):-len(_MANIFEST_SUFFIX)]
            try:
                found.append(int(raw))
            except ValueError:
                continue
        return sorted(found)

    # -- store ---------------------------------------------------------------

    def _write_atomic(self, path: str, data: bytes) -> None:
        directory = os.path.dirname(path)
        os.makedirs(directory, exist_ok=True)
        handle, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(handle, "wb") as stream:
                stream.write(data)
            os.replace(tmp_path, path)
        except Exception:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def store_checkpoint(
        self, tenant: str, journal_index: int, allocations: List[dict]
    ) -> Optional[int]:
        """Persist one checkpoint: write any block not already present
        (content addressing skips unchanged buffers), then the
        checksummed manifest, then prune old checkpoints. Returns the
        new sequence number, or ``None`` on any disk failure (the
        previous checkpoint stays intact either way)."""
        sequences = self.sequences(tenant)
        seq = (sequences[-1] + 1) if sequences else 1
        try:
            entries = []
            for allocation in allocations:
                data = bytes(allocation["data"])
                digest = _digest(data)
                block = self.block_path(tenant, digest)
                if not os.path.exists(block):
                    self._write_atomic(block, data)
                entries.append({
                    "local": int(allocation["local"]),
                    "size": len(data),
                    "label": allocation.get("label"),
                    "block": digest,
                })
            body = pickle.dumps(
                {
                    "tenant": tenant,
                    "seq": seq,
                    "journal_index": int(journal_index),
                    "allocations": entries,
                },
                protocol=4,
            )
            envelope = pickle.dumps(
                {
                    "schema": self.schema,
                    "checksum": _digest(body),
                    "body": body,
                },
                protocol=4,
            )
            self._write_atomic(self.manifest_path(tenant, seq), envelope)
        except Exception:
            self.disk_errors += 1
            return None
        self.stored += 1
        self._prune(tenant)
        return seq

    # -- load ----------------------------------------------------------------

    def _manifest_body(self, tenant: str, seq: int) -> Optional[dict]:
        """The verified manifest body, or ``None`` for a missing,
        torn, corrupt, or schema-incompatible manifest."""
        path = self.manifest_path(tenant, seq)
        try:
            with open(path, "rb") as handle:
                envelope = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != self.schema
        ):
            return None
        body = envelope.get("body")
        if not isinstance(body, bytes):
            return None
        if _digest(body) != envelope.get("checksum"):
            return None
        try:
            manifest = pickle.loads(body)
        except Exception:
            return None
        if not isinstance(manifest, dict):
            return None
        return manifest

    def load(self, tenant: str, seq: int) -> Optional[Checkpoint]:
        """Load + fully verify one checkpoint (manifest checksum and
        every referenced block's digest and size). Returns ``None`` —
        and counts a discard — when anything fails verification."""
        manifest = self._manifest_body(tenant, seq)
        if manifest is None:
            self.discarded += 1
            return None
        allocations = []
        for entry in manifest.get("allocations", []):
            try:
                with open(
                    self.block_path(tenant, entry["block"]), "rb"
                ) as handle:
                    data = handle.read()
            except OSError:
                self.discarded += 1
                return None
            if (
                len(data) != entry["size"]
                or _digest(data) != entry["block"]
            ):
                self.discarded += 1
                return None
            allocations.append({
                "local": entry["local"],
                "size": entry["size"],
                "label": entry.get("label"),
                "data": data,
            })
        self.loaded += 1
        return Checkpoint(
            tenant=tenant,
            seq=int(manifest.get("seq", seq)),
            journal_index=int(manifest.get("journal_index", 0)),
            allocations=allocations,
        )

    def load_latest(self, tenant: str) -> Optional[Checkpoint]:
        """The newest checkpoint that verifies end to end. Torn or
        corrupt checkpoints are deleted and skipped — restore then
        falls back to the previous one (and a longer journal replay),
        or to a full journal replay when none survives."""
        for seq in reversed(self.sequences(tenant)):
            checkpoint = self.load(tenant, seq)
            if checkpoint is not None:
                return checkpoint
            self.discard(tenant, seq)
        return None

    def journal_floor(self, tenant: str) -> int:
        """The lowest journal index any retained *valid* checkpoint
        covers: the session may truncate its journal below this index
        and every retained checkpoint can still restore. 0 when no
        valid checkpoint exists (nothing may be truncated)."""
        indices = []
        for seq in self.sequences(tenant):
            manifest = self._manifest_body(tenant, seq)
            if manifest is not None:
                indices.append(int(manifest.get("journal_index", 0)))
        return min(indices) if indices else 0

    # -- retention -----------------------------------------------------------

    def discard(self, tenant: str, seq: int) -> None:
        try:
            os.unlink(self.manifest_path(tenant, seq))
        except OSError:
            pass

    def _prune(self, tenant: str) -> None:
        """Drop manifests beyond ``keep`` (oldest first), then delete
        blocks no retained manifest references. Block GC is skipped
        when any retained manifest is unreadable — a conservative
        reader can't prove those blocks are orphans."""
        sequences = self.sequences(tenant)
        excess = sequences[:-self.keep]
        for seq in excess:
            self.discard(tenant, seq)
        retained = sequences[-self.keep:]
        referenced: Dict[str, bool] = {}
        for seq in retained:
            manifest = self._manifest_body(tenant, seq)
            if manifest is None:
                return
            for entry in manifest.get("allocations", []):
                referenced[entry["block"]] = True
        try:
            names = os.listdir(self.tenant_directory(tenant))
        except OSError:
            return
        for name in names:
            if not name.endswith(_BLOCK_SUFFIX):
                continue
            digest = name[:-len(_BLOCK_SUFFIX)]
            if digest not in referenced:
                try:
                    os.unlink(
                        os.path.join(
                            self.tenant_directory(tenant), name
                        )
                    )
                except OSError:
                    pass

    def clear(self, tenant: str) -> int:
        """Delete every checkpoint artifact of one tenant; returns the
        number of files removed."""
        removed = 0
        directory = self.tenant_directory(tenant)
        try:
            names = os.listdir(directory)
        except OSError:
            return 0
        for name in names:
            try:
                os.unlink(os.path.join(directory, name))
                removed += 1
            except OSError:
                pass
        try:
            os.rmdir(directory)
        except OSError:
            pass
        return removed

    def __repr__(self):
        return (
            f"<StateStore {self.directory!r} schema={self.schema} "
            f"keep={self.keep} stored={self.stored} "
            f"discarded={self.discarded}>"
        )
