"""On-disk tier of the translation cache.

Specializations survive the process that compiled them: the vectorized
IR (post-cleanup, pre-lowering — lowering is machine-local and cheap)
is pickled under a content-addressed file name, so repeated benchmark
runs skip translation entirely. Design points:

- **Content addressing.** The file name is the specialization digest
  computed by :class:`~repro.runtime.translation_cache.TranslationCache`
  (kernel PTX body + referenced global symbols + ``ExecutionConfig.
  cache_key()`` + warp size + machine descriptor), so stores shared by
  several devices/configs can never exchange incompatible code.
- **Versioning.** Every payload carries ``SCHEMA_VERSION``; entries
  written by an incompatible schema are discarded, not deserialized
  into the wrong shape.
- **Corruption tolerance.** A truncated, unreadable, or wrong-schema
  entry is deleted and the specialization recompiled; a launch never
  crashes because of the disk tier. All disk failures are counted,
  never raised.
- **Bounded size.** ``max_entries`` (default 4096, override with
  ``REPRO_CACHE_MAX_ENTRIES``) evicts the least recently used entries
  (by mtime) on store.

The tier is opt-in: ``ExecutionConfig(persistent_cache=True)`` or
``REPRO_CACHE=1`` in the environment; the directory defaults to
``~/.cache/repro`` and can be overridden with
``ExecutionConfig(cache_dir=...)`` or ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from typing import List, Optional

#: Bump whenever the pickled payload layout or the IR representation
#: changes incompatibly; old entries are then discarded on load.
SCHEMA_VERSION = 1

#: Default location of the persistent tier.
DEFAULT_CACHE_DIR = "~/.cache/repro"

_ENTRY_SUFFIX = ".rtc"  # "repro translation cache"


def _default_max_entries() -> int:
    raw = os.environ.get("REPRO_CACHE_MAX_ENTRIES", "")
    try:
        return max(1, int(raw))
    except ValueError:
        return 4096


class CacheStore:
    """Directory of pickled translation-cache entries.

    Counter updates land on the ``statistics`` object passed per call
    (a :class:`~repro.runtime.translation_cache.CacheStatistics`), so a
    store shared between devices attributes activity to the device that
    caused it.
    """

    def __init__(
        self,
        directory: Optional[str] = None,
        schema: int = SCHEMA_VERSION,
        max_entries: Optional[int] = None,
    ):
        self.directory = os.path.expanduser(
            directory
            or os.environ.get("REPRO_CACHE_DIR")
            or DEFAULT_CACHE_DIR
        )
        self.schema = schema
        self.max_entries = (
            max_entries if max_entries is not None else _default_max_entries()
        )

    @classmethod
    def from_config(cls, config) -> Optional["CacheStore"]:
        """Build the store an :class:`ExecutionConfig` asks for, or
        ``None`` when the persistent tier is disabled. ``REPRO_CACHE=1``
        force-enables it (the CI matrix uses this)."""
        enabled = bool(getattr(config, "persistent_cache", False))
        enabled = enabled or os.environ.get("REPRO_CACHE") == "1"
        if not enabled:
            return None
        return cls(directory=getattr(config, "cache_dir", None))

    # -- paths ---------------------------------------------------------------

    def path(self, digest: str) -> str:
        return os.path.join(self.directory, digest + _ENTRY_SUFFIX)

    def entries(self) -> List[str]:
        """Digests currently stored (unordered)."""
        try:
            names = os.listdir(self.directory)
        except OSError:
            return []
        return [
            name[: -len(_ENTRY_SUFFIX)]
            for name in names
            if name.endswith(_ENTRY_SUFFIX)
        ]

    # -- load / store --------------------------------------------------------

    def load(self, digest: str, statistics=None) -> Optional[dict]:
        """The payload stored under ``digest``, or ``None``. Corrupt or
        schema-incompatible entries are deleted (counted as
        ``disk_errors``), never raised."""
        path = self.path(digest)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return None
        except Exception:
            self.discard(digest)
            if statistics is not None:
                statistics.disk_errors += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != self.schema
        ):
            self.discard(digest)
            if statistics is not None:
                statistics.disk_errors += 1
            return None
        try:
            # Touch for LRU eviction ordering.
            os.utime(path)
        except OSError:
            pass
        return payload

    def store(self, digest: str, payload: dict, statistics=None) -> bool:
        """Atomically persist ``payload`` under ``digest``. Returns
        False (and counts a ``disk_error``) on any OS/pickle failure."""
        payload = dict(payload)
        payload["schema"] = self.schema
        tmp_path = None
        try:
            os.makedirs(self.directory, exist_ok=True)
            handle, tmp_path = tempfile.mkstemp(
                dir=self.directory, suffix=".tmp"
            )
            with os.fdopen(handle, "wb") as stream:
                pickle.dump(payload, stream, protocol=4)
            os.replace(tmp_path, self.path(digest))
            tmp_path = None
        except Exception:
            if tmp_path is not None:
                try:
                    os.unlink(tmp_path)
                except OSError:
                    pass
            if statistics is not None:
                statistics.disk_errors += 1
            return False
        self._prune(statistics)
        return True

    def discard(self, digest: str) -> None:
        try:
            os.unlink(self.path(digest))
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for digest in self.entries():
            self.discard(digest)
            removed += 1
        return removed

    # -- eviction ------------------------------------------------------------

    def _prune(self, statistics=None) -> None:
        digests = self.entries()
        excess = len(digests) - self.max_entries
        if excess <= 0:
            return
        def mtime(digest: str) -> float:
            try:
                return os.path.getmtime(self.path(digest))
            except OSError:
                return 0.0
        for digest in sorted(digests, key=mtime)[:excess]:
            self.discard(digest)
            if statistics is not None:
                statistics.evictions += 1

    def __repr__(self):
        return (
            f"<CacheStore {self.directory!r} schema={self.schema} "
            f"entries={len(self.entries())}>"
        )
