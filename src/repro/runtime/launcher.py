"""Kernel launcher: partitions the grid across worker execution
managers (§3: "Kernel launches spawn a set of hardware threads, each
running a dynamic execution manager. The kernel's grid of CTAs is
statically partitioned across the set of execution managers").

The workers model the paper's four hardware threads. They are executed
sequentially here (CPython cannot run interpreters concurrently), but
each worker accumulates its own cycle count and the launch's elapsed
time is the maximum across workers — the quantity a wall clock would
measure on real hardware.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import LaunchError
from ..machine.descriptor import MachineDescription
from ..machine.interpreter import Interpreter
from ..machine.memory import MemorySystem
from .config import ExecutionConfig
from .execution_manager import ExecutionManager, LaunchGeometry
from .statistics import LaunchStatistics
from .translation_cache import TranslationCache


@dataclass
class LaunchResult:
    """Outcome of one kernel launch."""

    kernel_name: str
    geometry: LaunchGeometry
    statistics: LaunchStatistics
    clock_hz: float
    #: True when a durable session re-dispatched this launch after a
    #: worker loss + state restore (the caller never saw DeviceLost).
    restored: bool = False

    @property
    def elapsed_seconds(self) -> float:
        return self.statistics.elapsed_seconds(self.clock_hz)

    @property
    def gflops(self) -> float:
        return self.statistics.gflops(self.clock_hz)

    def __repr__(self):
        return (
            f"<LaunchResult {self.kernel_name} "
            f"{self.elapsed_seconds * 1e3:.3f} ms modeled>"
        )


def partition_ctas(cta_count: int, workers: int) -> List[List[int]]:
    """Contiguous static partition of CTA IDs across workers."""
    if workers < 1:
        raise LaunchError(f"invalid worker count {workers}")
    base = cta_count // workers
    extra = cta_count % workers
    partitions: List[List[int]] = []
    cursor = 0
    for worker in range(workers):
        size = base + (1 if worker < extra else 0)
        partitions.append(list(range(cursor, cursor + size)))
        cursor += size
    return partitions


class KernelLauncher:
    """Owns the per-worker execution managers and dispatches launches."""

    def __init__(
        self,
        machine: MachineDescription,
        memory: MemorySystem,
        interpreter: Interpreter,
        cache: TranslationCache,
        config: ExecutionConfig,
    ):
        self.machine = machine
        self.memory = memory
        self.interpreter = interpreter
        self.cache = cache
        self.config = config
        #: Optional trace callback (event, payload) propagated to
        #: every execution manager; None disables tracing.
        self.trace = None
        self.managers = [
            ExecutionManager(
                worker_id=worker,
                machine=machine,
                memory=memory,
                interpreter=interpreter,
                cache=cache,
                config=config,
            )
            for worker in range(machine.cores)
        ]

    def _attach_meld(
        self, statistics: LaunchStatistics, kernel_name: str
    ) -> None:
        """Surface the melding pass's per-kernel decisions on the
        launch statistics (no-op when melding is off or the kernel
        never reached the scalar-IR stage)."""
        report = self.cache.meld_report(kernel_name)
        if report is None:
            return
        statistics.melded_regions = report.melded_regions
        statistics.meld_rejections = report.rejected_regions
        statistics.meld_predicted_saving = report.predicted_saving

    def launch(
        self,
        kernel_name: str,
        grid: Tuple[int, int, int],
        block: Tuple[int, int, int],
        param_base: int,
    ) -> LaunchResult:
        geometry = LaunchGeometry(grid=grid, block=block)
        if geometry.cta_count < 1 or geometry.threads_per_cta < 1:
            raise LaunchError(
                f"empty launch: grid={grid} block={block}"
            )
        partitions = partition_ctas(
            geometry.cta_count, self.machine.cores
        )
        for manager in self.managers:
            manager.trace = self.trace
        deadline = None
        if self.config.launch_timeout_s is not None:
            deadline = time.monotonic() + self.config.launch_timeout_s
        sanitizer = getattr(self.memory, "sanitizer", None)
        if sanitizer is not None:
            sanitizer.begin_launch(kernel_name)
        cache_before = self.cache.statistics.snapshot()
        total = LaunchStatistics()
        manager = None
        try:
            for manager, cta_ids in zip(self.managers, partitions):
                if not cta_ids:
                    continue
                manager.stats = LaunchStatistics()
                manager.run(
                    kernel_name,
                    geometry,
                    cta_ids,
                    param_base,
                    deadline=deadline,
                )
                worker_stats = manager.stats
                total.merge(worker_stats)
                total.worker_cycles[manager.worker_id] = (
                    worker_stats.kernel_cycles
                    + worker_stats.yield_cycles
                    + worker_stats.em_cycles
                )
        except Exception as error:
            # Containment: the faulting worker's partial statistics
            # still count (they carry the trap/watchdog tallies), every
            # manager's pooled state is restored to launch-ready, and
            # the partial launch statistics ride on the exception.
            if manager is not None:
                total.merge(manager.stats)
                total.worker_cycles[manager.worker_id] = (
                    manager.stats.kernel_cycles
                    + manager.stats.yield_cycles
                    + manager.stats.em_cycles
                )
            total.cache = self.cache.statistics.delta(cache_before)
            self._attach_meld(total, kernel_name)
            if sanitizer is not None:
                # Non-fatal findings gathered before the fault still
                # ride on the exception's statistics.
                total.sanitizer = sanitizer.take_reports()
            for survivor in self.managers:
                survivor.recover()
            try:
                error.statistics = total
            except (AttributeError, TypeError):  # pragma: no cover
                pass
            raise
        total.cache = self.cache.statistics.delta(cache_before)
        self._attach_meld(total, kernel_name)
        if sanitizer is not None:
            total.sanitizer = sanitizer.take_reports()
        return LaunchResult(
            kernel_name=kernel_name,
            geometry=geometry,
            statistics=total,
            clock_hz=self.machine.clock_hz,
        )
